#ifndef INSIGHTNOTES_SQL_DATABASE_H_
#define INSIGHTNOTES_SQL_DATABASE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "sql/statement_executor.h"
#include "stats/sketch_registry.h"
#include "summary/summary_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"
#include "wal/recovery_manager.h"
#include "wal/replica_applier.h"

namespace insight {

/// The top-level InsightNotes+ engine facade: storage, catalog, annotation
/// and summary managers, summary indexes, optimizer, and the SQL surface.
///
///   Database db;
///   db.CreateTable("Birds", schema);
///   db.DefineClassifier("ClassBird1", labels, training);
///   db.Execute("ALTER TABLE Birds ADD INDEXABLE ClassBird1");
///   db.Execute("ANNOTATE Birds TUPLE 1 WITH 'observed disease'");
///   db.Execute("SELECT * FROM Birds WHERE "
///              "$.getSummaryObject('ClassBird1')"
///              ".getLabelValue('Disease') > 0");
///
/// Statement execution itself lives in StatementExecutor; this class owns
/// *policy*: MVCC transactions (TransactionManager), the DDL gate, WAL
/// journaling, and recovery.
class Database : public ReplayTarget {
 public:
  /// When the write-ahead log is forced to disk.
  enum class WalSyncMode {
    kEveryOp,      // Commit (fsync) after every logged operation.
    kGroupCommit,  // Sync only at statement end / WalSync() / checkpoint;
                   // concurrent committers share one fsync (leader runs
                   // it, followers wait on the durable LSN).
    kNever,        // Tests/benches only: appends without forcing.
  };

  struct Options {
    StorageManager::Backend backend = StorageManager::Backend::kMemory;
    std::string directory;        // File backend and/or WAL.
    size_t buffer_pool_frames = 4096;
    WalSyncMode wal_sync = WalSyncMode::kEveryOp;
    /// >0: automatic fuzzy checkpoint after this many logged operations.
    uint64_t checkpoint_every_ops = 0;
    /// Statements longer than this are rejected with ResourceExhausted
    /// before tokenization, bounding allocation on untrusted input (the
    /// network path feeds Execute() directly).
    size_t max_statement_bytes = 1u << 20;
  };

  Database() : Database(Options{}) {}
  explicit Database(Options options);

  /// Opens (creating if needed) a durable database rooted at `directory`:
  /// recovers from `<directory>/wal.log` (replaying the tail past the
  /// last complete checkpoint; only committed transactions replay), then
  /// attaches the log so further DML is journaled. Page files are derived
  /// state rebuilt by replay — the catalog is logical — so recovery works
  /// even from the log alone.
  static Result<std::unique_ptr<Database>> Open(const std::string& directory,
                                                Options options);
  static Result<std::unique_ptr<Database>> Open(const std::string& directory);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- Schema / data ----

  /// Creates an annotatable relation (annotation store + summary manager
  /// are provisioned automatically).
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Oid> Insert(const std::string& table, Tuple tuple);

  /// Deletes a tuple, its summary-storage row, and its index entries.
  Status DeleteTuple(const std::string& table, Oid oid);

  // ---- Summary instances ----

  /// Registers an instance prototype usable in `ALTER TABLE .. ADD`.
  Status DefineInstance(SummaryInstance instance);

  /// Convenience: defines a Classifier instance with a Naive Bayes model
  /// trained on (text, label) seed pairs.
  Status DefineClassifier(
      const std::string& name, std::vector<std::string> labels,
      const std::vector<std::pair<std::string, std::string>>& training);
  Status DefineSnippet(const std::string& name,
                       SnippetSummarizer::Options options = {});
  Status DefineCluster(const std::string& name, double min_similarity = 0.3);

  /// `ALTER TABLE <table> ADD [INDEXABLE] <instance>` (Section 4).
  Status LinkInstance(const std::string& table, const std::string& instance,
                      bool indexable);
  Status UnlinkInstance(const std::string& table,
                        const std::string& instance);

  /// Builds a secondary B-Tree index on a data column (the SQL
  /// `CREATE INDEX` routes here so the DDL is journaled).
  Status CreateColumnIndex(const std::string& table,
                           const std::string& column);

  /// Builds the baseline (normalized) index too — comparison arms of the
  /// benches only; production setups use only LinkInstance(indexable).
  Status AddBaselineIndex(const std::string& table,
                          const std::string& instance);

  // ---- Annotations ----

  Result<AnnId> Annotate(const std::string& table, const std::string& text,
                         const std::vector<AnnotationTarget>& targets);
  Status RemoveAnnotation(const std::string& table, AnnId ann);

  /// Zoom-in: raw annotations of one tuple, optionally restricted to one
  /// instance's summary object, and further to one representative of it —
  /// a class label (`label`) or a Rep[] position (`rep_index`), the
  /// paper's "zoom into specific summaries of interest".
  Result<std::vector<Annotation>> ZoomIn(
      const std::string& table, Oid oid, const std::string& instance = "",
      const std::string& label = "", int rep_index = -1,
      const Snapshot& snap = Snapshot::Latest());

  // ---- Queries & transactions ----

  /// Parses, plans, optimizes, and executes one statement under MVCC
  /// snapshot isolation. Readers never block: each SELECT pins a snapshot
  /// of the latest committed state (or its transaction's snapshot) and
  /// runs with no statement gate. Mutating statements are serialized on
  /// the transaction manager's write gate and run inside a transaction —
  /// an implicit per-statement one in autocommit, or the session's
  /// explicit one between BEGIN and COMMIT/ROLLBACK.
  ///
  /// `txn_handle` carries the session's open transaction across calls:
  /// pass 0 when none is open; BEGIN stores the new transaction's id in
  /// it, COMMIT/ROLLBACK clear it. A conflicting write inside a
  /// transaction auto-aborts it (first-writer-wins) and surfaces
  /// kAborted — safe for the client to retry from BEGIN.
  Result<QueryResult> Execute(const std::string& sql, uint64_t* txn_handle);

  /// Single-session convenience: keeps the embedded caller's transaction
  /// handle internally (the CLI and embedded REPL path).
  Result<QueryResult> Execute(const std::string& sql);

  /// The optimized physical plan for a SELECT (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// EXPLAIN ANALYZE: executes the SELECT batch-at-a-time and returns the
  /// plan annotated with per-operator runtime counters (rows, batches,
  /// inclusive wall-time).
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Programmatic path: optimize and run a hand-built logical plan.
  Result<std::vector<Row>> Run(LogicalPtr plan);
  Result<OpPtr> Plan(LogicalPtr plan);

  Status Analyze(const std::string& table);

  /// MVCC policy owner: timestamps, snapshots, conflicts, version GC.
  TransactionManager* txn_manager() { return &txn_mgr_; }

  // ---- Observability ----

  /// Prometheus-style text exposition of every engine metric (buffer
  /// pool, WAL, scheduler, Summary-BTree, access paths, query layer).
  std::string DumpMetrics() const;
  /// The same snapshot as one JSON object
  /// ({"counters":{..},"gauges":{..},"histograms":{..}}).
  std::string DumpMetricsJson() const;

  /// Bounded in-memory log of the slowest SELECTs with their analyzed
  /// plans. Tune via set_threshold_ms()/set_capacity().
  SlowQueryLog* slow_query_log() { return &slow_query_log_; }

  // ---- Durability ----

  /// Fuzzy checkpoint: logs a logical snapshot of the whole database
  /// (CheckpointBegin), flushes and syncs the data pages, then seals it
  /// with CheckpointEnd. Recovery restores the latest sealed snapshot and
  /// replays only the log tail after it. Runs under the write gate so no
  /// writer is mid-statement; open transactions are fine (the snapshot
  /// holds committed state only, and their ops replay from the log if
  /// they commit). No-op error when WAL is off.
  Status Checkpoint();

  /// Re-derives stale page zone maps on every table (the widen-only write
  /// path loosens bounds; this is the tightening half). Checkpoint runs it
  /// automatically; callers may also invoke it directly after bulk
  /// deletes/aborts to restore skipping effectiveness sooner.
  Status MaintainZoneMaps();

  /// Forces the log to disk (group-commit barrier). OK when WAL is off.
  Status WalSync();

  /// The attached log, or null when this database is not journaled.
  LogManager* wal() { return wal_.get(); }

  /// What recovery did when this database was Open()ed.
  const RecoveryManager::Stats& recovery_stats() const {
    return recovery_stats_;
  }

  // ---- Replication ----

  /// A replica applies a primary's shipped WAL verbatim and serves only
  /// reads; everything else redirects (kReadOnly) to the primary.
  enum class Role { kPrimary, kReplica };

  Role role() const { return role_.load(std::memory_order_acquire); }

  /// Switches into replica mode: statements other than SELECT / EXPLAIN
  /// / ZOOM IN are rejected with kReadOnly, local journaling is
  /// suppressed (shipped records are already log records and are
  /// appended verbatim), and in-flight transaction buffers are primed
  /// from the local log so a stream resuming mid-transaction applies
  /// correctly. Requires a journaled database (Open()).
  Status EnterReplicaMode();

  /// Promotes a replica to primary: journaling resumes and DML/DDL is
  /// accepted again. Buffered ops of transactions the old primary never
  /// committed are dropped — their commit record never shipped, which is
  /// exactly the recovery contract. No-op on a primary.
  Status Promote();

  /// Applies one shipped WAL record: appends it to the local log
  /// verbatim (records must arrive dense at the local next_lsn, so the
  /// replica's log stays a byte-equal prefix of the primary's) and, when
  /// the record seals an apply unit, applies it inside a local MVCC
  /// transaction so concurrent readers observe the commit atomically.
  /// Durability and applied-LSN publication are batched by the caller
  /// (WalSync + AdvanceAppliedLsn).
  Status ApplyReplicated(const WalRecord& rec);

  /// Highest replicated LSN whose effects new snapshots observe.
  Lsn applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  void AdvanceAppliedLsn(Lsn lsn);
  /// Blocks until applied_lsn() >= lsn; false on timeout. Primaries
  /// satisfy any wait immediately (their state is the source).
  bool WaitForAppliedLsn(Lsn lsn, std::chrono::milliseconds timeout);

  // ---- ReplayTarget (crash recovery; applies without re-logging) ----

  Status ReplayAnnIdFloor(uint64_t next_ann_id) override;
  Status ReplayCreateTable(const WalCreateTable& op) override;
  Status ReplayCreateIndex(const WalCreateIndex& op) override;
  Status ReplayInsert(const WalInsert& op) override;
  Status ReplayDelete(const WalDelete& op) override;
  Status ReplayDefineInstance(const WalInstanceDef& op) override;
  Status ReplayLinkInstance(const WalLinkInstance& op) override;
  Status ReplayUnlinkInstance(const WalUnlinkInstance& op) override;
  Status ReplayAnnotate(const WalAnnotate& op) override;
  Status ReplayRemoveAnnotation(const WalRemoveAnnotation& op) override;
  Status ReplayStatsSketch(const WalStatsSketch& op) override;

  // ---- Accessors ----

  /// Morsel-worker count the optimizer plans SELECTs for (1 = serial).
  /// Parallel plans appear only above OptimizerOptions'
  /// parallel_row_threshold and never under an ordering operator.
  void SetParallelism(size_t workers) {
    context_.exec_context()->set_parallelism(workers);
  }

  Catalog* catalog() { return &catalog_; }
  QueryContext* context() { return &context_; }
  StorageManager* storage() { return &storage_; }
  BufferPool* pool() { return &pool_; }
  OptimizerOptions& optimizer_options() { return optimizer_options_; }

  Result<Table*> GetTable(const std::string& name) {
    return catalog_.GetTable(name);
  }
  /// Online statistics (HyperLogLog / Count-Min) maintained inline on
  /// the DML path; the optimizer's second estimator tier reads it via
  /// RelationInfo::sketches.
  SketchRegistry* sketch_registry() { return &stats_registry_; }

  Result<SummaryManager*> GetManager(const std::string& table);
  Result<const SummaryBTree*> GetSummaryIndex(const std::string& table,
                                              const std::string& instance);
  Result<const SnippetKeywordIndex*> GetKeywordIndex(
      const std::string& table, const std::string& instance);

 private:
  struct AnnotatedRelation {
    std::unique_ptr<AnnotationStore> store;
    std::unique_ptr<SummaryManager> mgr;
    std::map<std::string, std::unique_ptr<SummaryBTree>> indexes;
    std::map<std::string, std::unique_ptr<BaselineClassifierIndex>>
        baseline_indexes;
    std::map<std::string, std::unique_ptr<SnippetKeywordIndex>>
        keyword_indexes;
  };

  /// Installs the WAL hooks that journal transaction lifecycle records
  /// (kTxnBegin / kTxnCommit / kTxnAbort) into the transaction manager.
  void InstallWalHooks();

  /// Read path of Execute(): SELECT / EXPLAIN / ZOOM IN at one snapshot.
  Result<QueryResult> ExecuteRead(const Statement& stmt,
                                  const std::string& sql,
                                  uint64_t* txn_handle);
  /// Write path of Execute(): DML runs inside a transaction (the
  /// session's or an implicit autocommit one) under the write gate; DDL
  /// requires autocommit and takes the DDL gate exclusively.
  Result<QueryResult> ExecuteWrite(const Statement& stmt,
                                   uint64_t* txn_handle);
  Result<QueryResult> ExecuteBegin(uint64_t* txn_handle);
  Result<QueryResult> ExecuteCommit(uint64_t* txn_handle);
  Result<QueryResult> ExecuteRollback(uint64_t* txn_handle);

  /// Triggers the automatic checkpoint when the op budget is reached.
  /// Never runs while the calling thread is inside a transaction.
  Status MaybeAutoCheckpoint();

  /// ResourceExhausted when `sql` exceeds Options::max_statement_bytes.
  Status CheckStatementSize(const std::string& sql) const;

  /// WAL is live: attached and not currently replaying (replayed ops are
  /// already in the log and must not be re-journaled).
  bool WalEnabled() const { return wal_ != nullptr && !replaying_; }

  /// Appends one record and commits it per the sync mode. Inside a
  /// transaction the record is wrapped as kTxnOp (durability comes from
  /// the commit record); outside one it is a plain record.
  Status LogOp(WalRecordType type, std::string payload);

  /// Stamps the buffer pool with the LSN the next logged op will get, so
  /// pages it dirties cannot be flushed before that record is durable.
  void StampNextLsn() {
    if (WalEnabled()) pool_.SetCurrentLsn(wal_->next_lsn());
  }

  /// Serializes the full logical state as a checkpoint snapshot.
  Result<WalSnapshot> BuildSnapshot();

  Status DeleteTupleImpl(const std::string& table, Oid oid);

  /// Applies one sealed apply unit. DML units run inside a local MVCC
  /// transaction (atomic visibility flip at its commit timestamp); DDL
  /// units take the DDL gate exclusively like their primary-side
  /// originals.
  Status ApplyReplicatedUnit(const StreamingReplay::Unit& unit);

  /// Declared first: every other member may still force the log while it
  /// is torn down, so the log must be destroyed last.
  std::unique_ptr<LogManager> wal_;
  Options options_;
  bool replaying_ = false;
  std::atomic<uint64_t> ops_since_checkpoint_{0};
  bool in_checkpoint_ = false;
  RecoveryManager::Stats recovery_stats_;
  /// WalInstanceDef payloads of instances defined through the typed
  /// Define{Classifier,Snippet,Cluster} API, re-emitted into checkpoint
  /// snapshots (lower-case name -> encoded payload, definition order).
  std::vector<std::pair<std::string, std::string>> instance_def_payloads_;

  /// MVCC policy. Replaces the old coarse statement gate: readers pin
  /// snapshots and never block; writers serialize on txn_mgr_.write_mu().
  TransactionManager txn_mgr_;

  /// Catalog-shape gate: DDL statements (CREATE/ALTER/ANALYZE/CREATE
  /// INDEX) hold it exclusively — they restructure relations_, planner
  /// registrations, and index objects that statements borrow raw pointers
  /// to. Every other statement holds it shared for its duration. This is
  /// NOT the old statement gate: DML vs DML and DML vs SELECT overlap.
  mutable std::shared_mutex ddl_mu_;

  /// The embedded single-session transaction handle (two-arg Execute
  /// callers manage their own). embedded_mu_ serializes the whole
  /// load/execute/store round-trip: two concurrent one-arg Execute
  /// callers must not clobber each other's handle (e.g. two BEGINs
  /// leaving one transaction orphaned open, pinning the GC horizon).
  std::mutex embedded_mu_;
  uint64_t embedded_txn_ = 0;

  /// Replication state. role_ gates Execute; the streaming replay and
  /// the applied-LSN frontier are driven by the single replica feed
  /// thread (readers touch only applied_lsn_/the condvar).
  std::atomic<Role> role_{Role::kPrimary};
  StreamingReplay streaming_replay_;
  std::atomic<Lsn> applied_lsn_{0};
  std::mutex applied_mu_;
  std::condition_variable applied_cv_;

  StorageManager storage_;
  BufferPool pool_;
  Catalog catalog_;
  OptimizerOptions optimizer_options_;
  std::map<std::string, AnnotatedRelation> relations_;  // Lower-case keys.
  std::map<std::string, SummaryInstance> instance_defs_;  // Prototypes.
  /// Online sketches. Declared after relations_: its destructor
  /// deregisters the per-label listeners from the summary managers in
  /// relations_, so it must be destroyed first.
  SketchRegistry stats_registry_;
  SlowQueryLog slow_query_log_;
  // Declared after relations_ deliberately: the context holds live
  // statistics whose destructors deregister from the summary managers
  // inside relations_, so it must be destroyed first.
  QueryContext context_;
  StatementExecutor executor_{this};
};

}  // namespace insight

#endif  // INSIGHTNOTES_SQL_DATABASE_H_
