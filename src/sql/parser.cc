#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace insight {

namespace {

/// Non-throwing literal conversions: std::stoll/std::stod throw on
/// out-of-range input, which must never reach the network surface. These
/// map every malformed or overflowing literal to a ParseError instead.
Result<int64_t> ParseIntLiteral(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return Status::ParseError("integer literal out of range: " + text);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDoubleLiteral(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return Status::ParseError("numeric literal out of range: " + text);
  }
  return v;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<ExprPtr> ParseExpr();

  bool AtEnd() {
    return Peek().Is(TokenType::kEnd) || Peek().Is(";");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Match(const std::string& word) {
    if (Peek().Is(word)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const std::string& word) {
    if (Match(word)) return Status::OK();
    return Err("expected '" + word + "'");
  }
  Status Err(const std::string& message) const {
    return Status::ParseError(message + " near position " +
                              std::to_string(Peek().position) +
                              (Peek().type == TokenType::kEnd
                                   ? " (end of input)"
                                   : " ('" + Peek().text + "')"));
  }

  Result<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenType::kIdentifier)) return Err("expected identifier");
    return Advance().text;
  }
  Result<std::string> ExpectString() {
    if (!Peek().Is(TokenType::kString)) {
      return Err("expected string literal");
    }
    return Advance().text;
  }
  Result<int64_t> ExpectInteger() {
    if (!Peek().Is(TokenType::kNumber)) return Err("expected number");
    return ParseIntLiteral(Advance().text);
  }

  Result<Statement> ParseSelectStatement(bool explain);
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseAlter();
  Result<Statement> ParseAnnotate();
  Result<Statement> ParseZoomIn();

  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseOperand();
  Result<ExprPtr> ParseSummaryFunc(std::string qualifier);

  /// Parenthesised operands and chained NOTs recurse; untrusted input can
  /// nest them arbitrarily deep, so the descent is bounded to keep stack
  /// use finite (kMaxExprDepth levels is far beyond any sane query).
  static constexpr int kMaxExprDepth = 100;
  Status EnterExpr() {
    if (expr_depth_ >= kMaxExprDepth) {
      return Status::ParseError("expression nested deeper than " +
                                std::to_string(kMaxExprDepth) + " levels");
    }
    ++expr_depth_;
    return Status::OK();
  }
  void LeaveExpr() { --expr_depth_; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

Result<Statement> Parser::ParseStatement() {
  if (Peek().Is("SELECT")) return ParseSelectStatement(false);
  if (Match("EXPLAIN")) return ParseSelectStatement(true);
  if (Peek().Is("CREATE")) return ParseCreate();
  if (Peek().Is("INSERT")) return ParseInsert();
  if (Peek().Is("ALTER")) return ParseAlter();
  if (Peek().Is("ANNOTATE")) return ParseAnnotate();
  if (Peek().Is("ZOOM")) return ParseZoomIn();
  if (Match("ANALYZE")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kAnalyze;
    INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    return stmt;
  }
  if (Match("BEGIN") || Match("START")) {
    Match("TRANSACTION");  // Optional noise word (also START TRANSACTION).
    Statement stmt;
    stmt.kind = Statement::Kind::kBegin;
    return stmt;
  }
  if (Match("COMMIT")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCommit;
    return stmt;
  }
  if (Match("ROLLBACK") || Match("ABORT")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kRollback;
    return stmt;
  }
  return Err("expected a statement");
}

Result<Statement> Parser::ParseCreate() {
  INSIGHT_RETURN_NOT_OK(Expect("CREATE"));
  if (Match("INDEX")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    INSIGHT_RETURN_NOT_OK(Expect("ON"));
    INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    INSIGHT_RETURN_NOT_OK(Expect("("));
    INSIGHT_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    stmt.columns.push_back(std::move(column));
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    return stmt;
  }
  INSIGHT_RETURN_NOT_OK(Expect("TABLE"));
  Statement stmt;
  stmt.kind = Statement::Kind::kCreateTable;
  INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  INSIGHT_RETURN_NOT_OK(Expect("("));
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    INSIGHT_ASSIGN_OR_RETURN(std::string type, ExpectIdentifier());
    ValueType vt;
    if (EqualsIgnoreCase(type, "INT") || EqualsIgnoreCase(type, "INTEGER") ||
        EqualsIgnoreCase(type, "BIGINT")) {
      vt = ValueType::kInt64;
    } else if (EqualsIgnoreCase(type, "DOUBLE") ||
               EqualsIgnoreCase(type, "FLOAT") ||
               EqualsIgnoreCase(type, "REAL")) {
      vt = ValueType::kDouble;
    } else if (EqualsIgnoreCase(type, "TEXT") ||
               EqualsIgnoreCase(type, "STRING") ||
               EqualsIgnoreCase(type, "VARCHAR")) {
      vt = ValueType::kString;
    } else if (EqualsIgnoreCase(type, "BOOL") ||
               EqualsIgnoreCase(type, "BOOLEAN")) {
      vt = ValueType::kBool;
    } else {
      return Err("unknown type " + type);
    }
    // Optional length suffix VARCHAR(80).
    if (Match("(")) {
      INSIGHT_RETURN_NOT_OK(ExpectInteger().status());
      INSIGHT_RETURN_NOT_OK(Expect(")"));
    }
    INSIGHT_RETURN_NOT_OK(stmt.schema.AddColumn({name, vt}));
    if (Match(")")) break;
    INSIGHT_RETURN_NOT_OK(Expect(","));
  }
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  INSIGHT_RETURN_NOT_OK(Expect("INSERT"));
  INSIGHT_RETURN_NOT_OK(Expect("INTO"));
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  INSIGHT_RETURN_NOT_OK(Expect("VALUES"));
  while (true) {
    INSIGHT_RETURN_NOT_OK(Expect("("));
    std::vector<Value> row;
    while (true) {
      if (Peek().Is(TokenType::kString)) {
        row.push_back(Value::String(Advance().text));
      } else if (Peek().Is(TokenType::kNumber)) {
        const std::string number = Advance().text;
        if (number.find('.') != std::string::npos) {
          INSIGHT_ASSIGN_OR_RETURN(double d, ParseDoubleLiteral(number));
          row.push_back(Value::Double(d));
        } else {
          INSIGHT_ASSIGN_OR_RETURN(int64_t i, ParseIntLiteral(number));
          row.push_back(Value::Int(i));
        }
      } else if (Match("NULL")) {
        row.push_back(Value::Null());
      } else if (Match("TRUE")) {
        row.push_back(Value::Bool(true));
      } else if (Match("FALSE")) {
        row.push_back(Value::Bool(false));
      } else {
        return Err("expected a literal value");
      }
      if (Match(")")) break;
      INSIGHT_RETURN_NOT_OK(Expect(","));
    }
    stmt.rows.push_back(std::move(row));
    if (!Match(",")) break;
  }
  return stmt;
}

Result<Statement> Parser::ParseAlter() {
  INSIGHT_RETURN_NOT_OK(Expect("ALTER"));
  INSIGHT_RETURN_NOT_OK(Expect("TABLE"));
  Statement stmt;
  INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (Match("ADD")) {
    stmt.kind = Statement::Kind::kAlterAdd;
    stmt.indexable = Match("INDEXABLE");
    INSIGHT_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
    return stmt;
  }
  if (Match("DROP")) {
    stmt.kind = Statement::Kind::kAlterDrop;
    INSIGHT_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
    return stmt;
  }
  return Err("expected ADD or DROP");
}

Result<Statement> Parser::ParseAnnotate() {
  INSIGHT_RETURN_NOT_OK(Expect("ANNOTATE"));
  Statement stmt;
  stmt.kind = Statement::Kind::kAnnotate;
  INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  INSIGHT_RETURN_NOT_OK(Expect("TUPLE"));
  INSIGHT_ASSIGN_OR_RETURN(int64_t oid, ExpectInteger());
  stmt.tuple_oid = static_cast<uint64_t>(oid);
  if (Match("COLUMN")) {
    while (true) {
      INSIGHT_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      stmt.columns.push_back(std::move(column));
      if (!Match(",")) break;
    }
  }
  INSIGHT_RETURN_NOT_OK(Expect("WITH"));
  INSIGHT_ASSIGN_OR_RETURN(stmt.text, ExpectString());
  return stmt;
}

Result<Statement> Parser::ParseZoomIn() {
  INSIGHT_RETURN_NOT_OK(Expect("ZOOM"));
  INSIGHT_RETURN_NOT_OK(Expect("IN"));
  INSIGHT_RETURN_NOT_OK(Expect("ON"));
  Statement stmt;
  stmt.kind = Statement::Kind::kZoomIn;
  INSIGHT_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  INSIGHT_RETURN_NOT_OK(Expect("TUPLE"));
  INSIGHT_ASSIGN_OR_RETURN(int64_t oid, ExpectInteger());
  stmt.tuple_oid = static_cast<uint64_t>(oid);
  if (Match("INSTANCE")) {
    INSIGHT_ASSIGN_OR_RETURN(stmt.instance, ExpectString());
    if (Match("LABEL")) {
      INSIGHT_ASSIGN_OR_RETURN(stmt.zoom_label, ExpectString());
    } else if (Match("REP")) {
      INSIGHT_ASSIGN_OR_RETURN(int64_t index, ExpectInteger());
      stmt.zoom_rep_index = static_cast<int>(index);
    }
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Match("*")) {
    item.star = true;
    return item;
  }
  // Aggregates.
  static const struct {
    const char* keyword;
    AggregateSpec::Kind kind;
  } kAggs[] = {{"COUNT", AggregateSpec::Kind::kCount},
               {"SUM", AggregateSpec::Kind::kSum},
               {"MIN", AggregateSpec::Kind::kMin},
               {"MAX", AggregateSpec::Kind::kMax},
               {"AVG", AggregateSpec::Kind::kAvg}};
  for (const auto& agg : kAggs) {
    if (Peek().Is(agg.keyword) && Peek(1).Is("(")) {
      Advance();
      Advance();
      item.is_aggregate = true;
      item.aggregate.kind = agg.kind;
      item.name = ToLower(agg.keyword);
      if (Match("*")) {
        item.aggregate.arg = nullptr;
      } else {
        INSIGHT_ASSIGN_OR_RETURN(item.aggregate.arg, ParseExpr());
      }
      INSIGHT_RETURN_NOT_OK(Expect(")"));
      if (Match("AS")) {
        INSIGHT_ASSIGN_OR_RETURN(item.name, ExpectIdentifier());
      }
      item.aggregate.output_name = item.name;
      return item;
    }
  }
  INSIGHT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  item.name = item.expr->ToString();
  if (Match("AS")) {
    INSIGHT_ASSIGN_OR_RETURN(item.name, ExpectIdentifier());
  }
  return item;
}

Result<Statement> Parser::ParseSelectStatement(bool explain) {
  INSIGHT_RETURN_NOT_OK(Expect("SELECT"));
  Statement stmt;
  stmt.kind = explain ? Statement::Kind::kExplain : Statement::Kind::kSelect;
  stmt.select = std::make_unique<SelectStatement>();
  SelectStatement& select = *stmt.select;
  select.distinct = Match("DISTINCT");
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    select.items.push_back(std::move(item));
    if (!Match(",")) break;
  }
  INSIGHT_RETURN_NOT_OK(Expect("FROM"));
  while (true) {
    SelectStatement::FromTable from;
    INSIGHT_ASSIGN_OR_RETURN(from.table, ExpectIdentifier());
    if (Peek().Is(TokenType::kIdentifier) && !Peek().Is("WHERE") &&
        !Peek().Is("GROUP") && !Peek().Is("ORDER") && !Peek().Is("LIMIT")) {
      INSIGHT_ASSIGN_OR_RETURN(from.alias, ExpectIdentifier());
    }
    select.from.push_back(std::move(from));
    if (!Match(",")) break;
  }
  if (Match("WHERE")) {
    INSIGHT_ASSIGN_OR_RETURN(select.where, ParseExpr());
  }
  if (Match("GROUP")) {
    INSIGHT_RETURN_NOT_OK(Expect("BY"));
    while (true) {
      INSIGHT_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      // Qualified group-by columns: a.b.
      while (Match(".")) {
        INSIGHT_ASSIGN_OR_RETURN(std::string next, ExpectIdentifier());
        column += "." + next;
      }
      select.group_by.push_back(std::move(column));
      if (!Match(",")) break;
    }
  }
  if (Match("ORDER")) {
    INSIGHT_RETURN_NOT_OK(Expect("BY"));
    while (true) {
      SortKey key;
      INSIGHT_ASSIGN_OR_RETURN(key.expr, ParseExpr());
      if (Match("DESC")) {
        key.descending = true;
      } else {
        Match("ASC");
      }
      select.order_by.push_back(std::move(key));
      if (!Match(",")) break;
    }
  }
  if (Match("LIMIT")) {
    INSIGHT_ASSIGN_OR_RETURN(int64_t limit, ExpectInteger());
    select.limit = static_cast<uint64_t>(limit);
  }
  if (!AtEnd()) return Err("unexpected trailing tokens");
  return stmt;
}

// ---------- Expressions ----------

Result<ExprPtr> Parser::ParseExpr() {
  INSIGHT_RETURN_NOT_OK(EnterExpr());
  Result<ExprPtr> expr = ParseOr();
  LeaveExpr();
  return expr;
}

Result<ExprPtr> Parser::ParseOr() {
  INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Match("OR")) {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Match("AND")) {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match("NOT")) {
    INSIGHT_RETURN_NOT_OK(EnterExpr());
    Result<ExprPtr> operand = ParseNot();
    LeaveExpr();
    if (!operand.ok()) return operand.status();
    return Not(std::move(*operand));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseOperand());
  if (Match("LIKE")) {
    INSIGHT_ASSIGN_OR_RETURN(std::string pattern, ExpectString());
    return Like(std::move(left), std::move(pattern));
  }
  static const struct {
    const char* symbol;
    CompareOp op;
  } kOps[] = {{"=", CompareOp::kEq},  {"<>", CompareOp::kNe},
              {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe},
              {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
              {">", CompareOp::kGt}};
  for (const auto& entry : kOps) {
    if (Match(entry.symbol)) {
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
      return Cmp(std::move(left), entry.op, std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseOperand() {
  if (Match("(")) {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    return inner;
  }
  if (Peek().Is(TokenType::kString)) {
    return Lit(Value::String(Advance().text));
  }
  if (Peek().Is(TokenType::kNumber)) {
    const std::string number = Advance().text;
    if (number.find('.') != std::string::npos) {
      INSIGHT_ASSIGN_OR_RETURN(double d, ParseDoubleLiteral(number));
      return Lit(Value::Double(d));
    }
    INSIGHT_ASSIGN_OR_RETURN(int64_t i, ParseIntLiteral(number));
    return Lit(Value::Int(i));
  }
  if (Match("TRUE")) return Lit(Value::Bool(true));
  if (Match("FALSE")) return Lit(Value::Bool(false));
  if (Match("NULL")) return Lit(Value::Null());
  if (Match("$")) return ParseSummaryFunc("");
  if (Peek().Is(TokenType::kIdentifier)) {
    std::string name = Advance().text;
    // Qualified forms: alias.column or alias.$.func(...).
    if (Peek().Is(".")) {
      if (Peek(1).Is("$")) {
        Advance();  // '.'
        Advance();  // '$'
        return ParseSummaryFunc(name);
      }
      while (Match(".")) {
        INSIGHT_ASSIGN_OR_RETURN(std::string next, ExpectIdentifier());
        name += "." + next;
      }
    }
    return Col(std::move(name));
  }
  return Err("expected an operand");
}

Result<ExprPtr> Parser::ParseSummaryFunc(std::string qualifier) {
  INSIGHT_RETURN_NOT_OK(Expect("."));
  INSIGHT_ASSIGN_OR_RETURN(std::string func, ExpectIdentifier());
  auto finish = [&](std::unique_ptr<SummaryFuncExpr> expr) -> ExprPtr {
    expr->set_qualifier(std::move(qualifier));
    return expr;
  };
  if (EqualsIgnoreCase(func, "getSize")) {
    INSIGHT_RETURN_NOT_OK(Expect("("));
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    return finish(std::make_unique<SummaryFuncExpr>());
  }
  if (!EqualsIgnoreCase(func, "getSummaryObject")) {
    return Err("unknown summary-set function " + func);
  }
  INSIGHT_RETURN_NOT_OK(Expect("("));
  INSIGHT_ASSIGN_OR_RETURN(std::string instance, ExpectString());
  INSIGHT_RETURN_NOT_OK(Expect(")"));
  INSIGHT_RETURN_NOT_OK(Expect("."));
  INSIGHT_ASSIGN_OR_RETURN(std::string method, ExpectIdentifier());
  INSIGHT_RETURN_NOT_OK(Expect("("));
  if (EqualsIgnoreCase(method, "getSize")) {
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    return finish(std::make_unique<SummaryFuncExpr>(
        SummaryFuncKind::kObjectSize, std::move(instance)));
  }
  if (EqualsIgnoreCase(method, "getLabelValue")) {
    // Overloaded per the paper: a class-label string or a position.
    if (Peek().Is(TokenType::kNumber)) {
      INSIGHT_ASSIGN_OR_RETURN(int64_t position, ExpectInteger());
      INSIGHT_RETURN_NOT_OK(Expect(")"));
      return finish(std::make_unique<SummaryFuncExpr>(
          SummaryFuncKind::kLabelValueAt, std::move(instance),
          static_cast<size_t>(position)));
    }
    INSIGHT_ASSIGN_OR_RETURN(std::string label, ExpectString());
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    return finish(std::make_unique<SummaryFuncExpr>(std::move(instance),
                                                    std::move(label)));
  }
  // Positional accessors (Section 3.1's per-type functions).
  static const struct {
    const char* name;
    SummaryFuncKind kind;
  } kPositional[] = {
      {"getLabelName", SummaryFuncKind::kLabelName},
      {"getSnippet", SummaryFuncKind::kSnippetAt},
      {"getGroupSize", SummaryFuncKind::kGroupSizeAt},
      {"getRepresentative", SummaryFuncKind::kRepresentative},
  };
  for (const auto& entry : kPositional) {
    if (EqualsIgnoreCase(method, entry.name)) {
      INSIGHT_ASSIGN_OR_RETURN(int64_t position, ExpectInteger());
      INSIGHT_RETURN_NOT_OK(Expect(")"));
      return finish(std::make_unique<SummaryFuncExpr>(
          entry.kind, std::move(instance), static_cast<size_t>(position)));
    }
  }
  if (EqualsIgnoreCase(method, "containsSingle") ||
      EqualsIgnoreCase(method, "containsUnion")) {
    std::vector<std::string> keywords;
    while (true) {
      INSIGHT_ASSIGN_OR_RETURN(std::string keyword, ExpectString());
      keywords.push_back(std::move(keyword));
      if (!Match(",")) break;
    }
    INSIGHT_RETURN_NOT_OK(Expect(")"));
    const SummaryFuncKind kind = EqualsIgnoreCase(method, "containsSingle")
                                     ? SummaryFuncKind::kContainsSingle
                                     : SummaryFuncKind::kContainsUnion;
    return finish(std::make_unique<SummaryFuncExpr>(kind, std::move(instance),
                                                    std::move(keywords)));
  }
  return Err("unknown summary-object method " + method);
}

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  if (!parser.AtEnd()) {
    return Status::ParseError("unexpected trailing tokens");
  }
  return stmt;
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  INSIGHT_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (!parser.AtEnd()) {
    return Status::ParseError("unexpected trailing tokens in expression");
  }
  return expr;
}

}  // namespace insight
