#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace insight {

bool Token::Is(const std::string& s) const {
  if (type == TokenType::kEnd) return false;
  return EqualsIgnoreCase(text, s);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot))) {
        if (sql[j] == '.') {
          // "1.x" where x is not a digit is a number followed by '.'.
          if (j + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
            break;
          }
          seen_dot = true;
        }
        ++j;
      }
      token.type = TokenType::kNumber;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // Escaped quote.
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += sql[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
      i = j;
    } else {
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<>", "<=", ">=", "!="};
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      for (const char* op : kTwoChar) {
        if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
          token.text = op;
          break;
        }
      }
      static const std::string kSingles = "(),.;*$=<>";
      if (token.text.size() == 1 &&
          kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at position " + std::to_string(i));
      }
      i += token.text.size();
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace insight
