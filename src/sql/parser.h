#ifndef INSIGHTNOTES_SQL_PARSER_H_
#define INSIGHTNOTES_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/operators.h"
#include "sql/lexer.h"
#include "types/schema.h"

namespace insight {

/// One SELECT-list entry: `*`, an aggregate, or a scalar expression
/// (data column or summary function).
struct SelectItem {
  bool star = false;
  bool is_aggregate = false;
  AggregateSpec aggregate;  // When is_aggregate.
  ExprPtr expr;             // Otherwise.
  std::string name;         // Output column name (AS alias or derived).
};

/// Parsed SELECT statement (before binding).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  struct FromTable {
    std::string table;
    std::string alias;  // Empty when none.
  };
  std::vector<FromTable> from;
  ExprPtr where;  // Null when absent.
  std::vector<std::string> group_by;
  std::vector<SortKey> order_by;
  std::optional<uint64_t> limit;
};

/// Any statement of the InsightNotes SQL dialect.
struct Statement {
  enum class Kind {
    kSelect,
    kExplain,      // EXPLAIN SELECT ...
    kCreateTable,  // CREATE TABLE t (col TYPE, ...)
    kInsert,       // INSERT INTO t VALUES (...), (...)
    kAlterAdd,     // ALTER TABLE t ADD [INDEXABLE] instance
    kAlterDrop,    // ALTER TABLE t DROP instance
    kAnnotate,     // ANNOTATE t TUPLE n [COLUMN c [, c...]] WITH 'text'
    kZoomIn,       // ZOOM IN ON t TUPLE n [INSTANCE 'name']
    kAnalyze,      // ANALYZE t
    kCreateIndex,  // CREATE INDEX ON t (column)
    kBegin,        // BEGIN [TRANSACTION]
    kCommit,       // COMMIT
    kRollback,     // ROLLBACK
  };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStatement> select;  // kSelect / kExplain.

  // DDL / utility payloads.
  std::string table;
  Schema schema;                      // kCreateTable.
  std::vector<std::vector<Value>> rows;  // kInsert.
  std::string instance;               // kAlter* / kZoomIn.
  bool indexable = false;             // kAlterAdd.
  uint64_t tuple_oid = 0;             // kAnnotate / kZoomIn.
  std::string zoom_label;             // kZoomIn: LABEL 'x'.
  int zoom_rep_index = -1;            // kZoomIn: REP n.
  std::vector<std::string> columns;   // kAnnotate targets / kCreateIndex.
  std::string text;                   // kAnnotate.
};

/// Parses one statement (trailing ';' optional). ParseError on bad input.
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a scalar/boolean expression (exposed for tests and the
/// programmatic API). Supports the paper's summary-function syntax:
///   [alias.]$.getSize()
///   [alias.]$.getSummaryObject('I').getLabelValue('L')
///   [alias.]$.getSummaryObject('I').getSize()
///   [alias.]$.getSummaryObject('I').containsSingle('kw' [, ...])
///   [alias.]$.getSummaryObject('I').containsUnion('kw' [, ...])
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace insight

#endif  // INSIGHTNOTES_SQL_PARSER_H_
