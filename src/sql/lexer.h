#ifndef INSIGHTNOTES_SQL_LEXER_H_
#define INSIGHTNOTES_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace insight {

enum class TokenType {
  kIdentifier,  // Unquoted word (keywords are matched case-insensitively).
  kString,      // 'single-quoted'
  kNumber,      // Integer or decimal literal.
  kSymbol,      // ( ) , . ; * $ = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Identifier/symbol text or unquoted string payload.
  size_t position = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive match against a keyword or symbol.
  bool Is(const std::string& s) const;
};

/// Tokenizes a statement; ParseError on malformed literals.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace insight

#endif  // INSIGHTNOTES_SQL_LEXER_H_
