#ifndef INSIGHTNOTES_NET_CLIENT_H_
#define INSIGHTNOTES_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"

namespace insight {

/// Small blocking client for the insightd wire protocol. One connection,
/// one outstanding request at a time (callers wanting concurrency open
/// one client per thread — see bench_net and the stress tests).
///
///   auto client = InsightClient::Connect("127.0.0.1", port);
///   auto result = client->Execute("SELECT * FROM Birds");
///   std::cout << result->ToString();
class InsightClient {
 public:
  static Result<std::unique_ptr<InsightClient>> Connect(
      const std::string& host, uint16_t port);

  ~InsightClient();

  InsightClient(const InsightClient&) = delete;
  InsightClient& operator=(const InsightClient&) = delete;

  /// Runs one statement; an Error frame comes back as the decoded Status
  /// (same code the embedded API would have returned). `wait_lsn` > 0
  /// asks a replica to hold the statement until its applied LSN reaches
  /// that value (read-your-writes); primaries satisfy it trivially.
  Result<NetResult> Execute(const std::string& sql, uint64_t wait_lsn = 0);

  /// Highest commit LSN any Execute on this connection has reported
  /// (0 before the first durable write). Feed into `wait_lsn` on a
  /// replica connection to observe your own writes.
  uint64_t last_commit_lsn() const { return last_commit_lsn_; }

  /// Asks a replica to assume the primary role; returns after the ack.
  Status Promote();

  /// True when `status` is a serialization conflict (first-writer-wins
  /// abort): the server already rolled the transaction back, so the
  /// client can safely retry the whole transaction from BEGIN. Transport
  /// failures and semantic errors are not retryable.
  static bool IsRetryable(const Status& status) {
    return status.IsAborted();
  }

  /// Whether the most recent Execute failure was retryable; false after a
  /// success or before any Execute.
  bool last_error_retryable() const { return last_error_retryable_; }

  /// Round-trip liveness probe.
  Status Ping();

  /// Prometheus text exposition of the server's metrics registry.
  Result<std::string> Metrics();

  /// Asks the server to drain and exit; returns after the ack.
  Status RequestShutdown();

  /// Closes the socket; further calls fail with IOError.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit InsightClient(int fd) : fd_(fd) {}

  /// Reads exactly one frame (header, body, checksum verified).
  Result<Frame> ReadFrame();
  Status SendFrame(FrameType type, std::string_view payload);

  int fd_;
  bool last_error_retryable_ = false;
  uint64_t last_commit_lsn_ = 0;
};

/// Client-side read/write routing over a primary + replica fleet. The
/// first endpoint that accepts writes is the primary; SELECT / EXPLAIN /
/// ZOOM IN statements are load-balanced round-robin across the other
/// endpoints (falling back to the primary when no replica is healthy).
/// Reads carry the primary connection's last commit LSN as `wait_lsn`,
/// so a client always observes its own committed writes on any replica
/// (read-your-writes). A replica that drops mid-read or answers with a
/// redirect is retried on the next endpoint; writes are never retried
/// silently.
///
/// One outstanding request at a time, like InsightClient.
class RoutedClient {
 public:
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
  };

  /// Connects lazily; `endpoints` must be non-empty. The primary is
  /// discovered on the first write (endpoints answering kReadOnly are
  /// skipped).
  static Result<std::unique_ptr<RoutedClient>> Make(
      std::vector<Endpoint> endpoints);

  /// Routes `sql` by its first keyword: SELECT / EXPLAIN / ZOOM go to a
  /// replica (round-robin with failover), everything else to the primary.
  Result<NetResult> Execute(const std::string& sql);

  /// Index into the endpoint list of the current primary, or -1 while
  /// undiscovered.
  int primary_index() const { return primary_; }

  /// Highest commit LSN observed across all writes.
  uint64_t last_commit_lsn() const { return last_commit_lsn_; }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

 private:
  explicit RoutedClient(std::vector<Endpoint> endpoints)
      : endpoints_(std::move(endpoints)) {}

  /// True when the statement's first keyword marks it read-only.
  static bool IsReadStatement(const std::string& sql);

  /// Returns a live connection to endpoint `i`, dialing if needed.
  Result<InsightClient*> Conn(size_t i);

  Result<NetResult> ExecuteWrite(const std::string& sql);
  Result<NetResult> ExecuteRead(const std::string& sql);

  const std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<InsightClient>> conns_;
  int primary_ = -1;
  size_t rr_next_ = 0;  // Round-robin cursor over read endpoints.
  uint64_t last_commit_lsn_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_CLIENT_H_
