#ifndef INSIGHTNOTES_NET_CLIENT_H_
#define INSIGHTNOTES_NET_CLIENT_H_

#include <memory>
#include <string>

#include "net/wire.h"

namespace insight {

/// Small blocking client for the insightd wire protocol. One connection,
/// one outstanding request at a time (callers wanting concurrency open
/// one client per thread — see bench_net and the stress tests).
///
///   auto client = InsightClient::Connect("127.0.0.1", port);
///   auto result = client->Execute("SELECT * FROM Birds");
///   std::cout << result->ToString();
class InsightClient {
 public:
  static Result<std::unique_ptr<InsightClient>> Connect(
      const std::string& host, uint16_t port);

  ~InsightClient();

  InsightClient(const InsightClient&) = delete;
  InsightClient& operator=(const InsightClient&) = delete;

  /// Runs one statement; an Error frame comes back as the decoded Status
  /// (same code the embedded API would have returned).
  Result<NetResult> Execute(const std::string& sql);

  /// True when `status` is a serialization conflict (first-writer-wins
  /// abort): the server already rolled the transaction back, so the
  /// client can safely retry the whole transaction from BEGIN. Transport
  /// failures and semantic errors are not retryable.
  static bool IsRetryable(const Status& status) {
    return status.IsAborted();
  }

  /// Whether the most recent Execute failure was retryable; false after a
  /// success or before any Execute.
  bool last_error_retryable() const { return last_error_retryable_; }

  /// Round-trip liveness probe.
  Status Ping();

  /// Prometheus text exposition of the server's metrics registry.
  Result<std::string> Metrics();

  /// Asks the server to drain and exit; returns after the ack.
  Status RequestShutdown();

  /// Closes the socket; further calls fail with IOError.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit InsightClient(int fd) : fd_(fd) {}

  /// Reads exactly one frame (header, body, checksum verified).
  Result<Frame> ReadFrame();
  Status SendFrame(FrameType type, std::string_view payload);

  int fd_;
  bool last_error_retryable_ = false;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_CLIENT_H_
