#include "net/event_loop.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <chrono>

#include "common/logging.h"

namespace insight {

namespace {

int MustEpollCreate() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) {
    INSIGHT_FATAL() << "epoll_create1: " << std::strerror(errno);
  }
  return fd;
}

int MustEventFd() {
  const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) {
    INSIGHT_FATAL() << "eventfd: " << std::strerror(errno);
  }
  return fd;
}

}  // namespace

EventLoop::EventLoop() : epoll_fd_(MustEpollCreate()), wakeup_fd_(MustEventFd()) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    INSIGHT_FATAL() << "epoll_ctl(wakeup): " << std::strerror(errno);
  }
}

EventLoop::~EventLoop() {
  ::close(wakeup_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Loop() {
  owner_.store(std::this_thread::get_id(), std::memory_order_release);
  auto last_tick = std::chrono::steady_clock::now();
  std::vector<epoll_event> events(64);
  while (!quit_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), tick_ms_);
    if (n < 0) {
      if (errno == EINTR) continue;
      INSIGHT_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        uint64_t drained;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // The callback may remove other fds (even itself); look up fresh.
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) it->second(events[i].events);
    }
    if (static_cast<size_t>(n) == events.size()) {
      events.resize(events.size() * 2);
    }
    DrainPending();
    if (tick_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_tick >= std::chrono::milliseconds(tick_ms_)) {
        last_tick = now;
        tick_();
      }
    }
  }
  // Run functors queued during the final iteration (connection teardown).
  DrainPending();
}

void EventLoop::Quit() {
  quit_.store(true, std::memory_order_release);
  Wakeup();
}

Status EventLoop::AddFd(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") +
                           std::strerror(errno));
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::UpdateFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::RemoveFd(int fd) {
  callbacks_.erase(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Status::IOError(std::string("epoll_ctl(DEL): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::RunInLoop(Functor fn) {
  if (IsInLoopThread()) {
    fn();
    return;
  }
  QueueInLoop(std::move(fn));
}

void EventLoop::QueueInLoop(Functor fn) {
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // Best effort; EAGAIN means a wakeup is already pending.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::DrainPending() {
  std::vector<Functor> batch;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    batch.swap(pending_);
  }
  for (Functor& fn : batch) fn();
}

}  // namespace insight
