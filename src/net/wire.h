#ifndef INSIGHTNOTES_NET_WIRE_H_
#define INSIGHTNOTES_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "wal/wal_record.h"

namespace insight {

/// Binary wire protocol spoken between `insightd` and InsightClient.
///
/// Framing mirrors the WAL's on-disk record discipline:
///   [u32 body_len][u32 crc32(body)][body = u8 type | payload]
/// so a truncated or bit-flipped frame fails the length or checksum test
/// instead of being half-interpreted. All integers are little-endian.
///
/// One request maps to one of:
///   Query        -> ResultHeader, RowBatch*, ResultDone   (success)
///                -> Error                                 (failure)
///   Ping         -> Pong
///   MetricsReq   -> MetricsReply (Prometheus text exposition)
///   Shutdown     -> ShutdownAck, then the server drains and exits
/// The server may also send Goodbye before closing (admission reject,
/// idle timeout, drain notice).
///
/// Replication rides the same framing. A replica opens an ordinary
/// connection and sends ReplicateSubscribe with the LSN it wants next;
/// the primary answers with a stream of LogFrame batches (durable,
/// committed WAL records in LSN order) for as long as the session lives.
/// The replica acks applied prefixes with ReplicaAck (flow control).
/// Promote asks a replica to assume the primary role; PromoteAck
/// confirms.
enum class FrameType : uint8_t {
  kQuery = 1,
  kResultHeader = 2,
  kRowBatch = 3,
  kResultDone = 4,
  kError = 5,
  kPing = 6,
  kPong = 7,
  kMetricsRequest = 8,
  kMetricsReply = 9,
  kShutdown = 10,
  kShutdownAck = 11,
  kGoodbye = 12,
  kReplicateSubscribe = 13,
  kLogFrame = 14,
  kReplicaAck = 15,
  kPromote = 16,
  kPromoteAck = 17,
};

/// Highest FrameType value the parser accepts.
inline constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kPromoteAck);

/// Frame header bytes preceding the body.
inline constexpr size_t kFrameHeaderBytes = 8;  // len + crc.

/// Upper bound on one frame body; a peer announcing more is treated as
/// corrupt/hostile and the connection is dropped. Row batches are split
/// well below this.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Rows per RowBatch frame the server emits (keeps frames small enough
/// to interleave with other connections on the same loop).
inline constexpr size_t kWireRowsPerBatch = 256;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Appends the full encoding of one frame to `*dst`.
void EncodeFrame(FrameType type, std::string_view payload, std::string* dst);
std::string EncodeFrame(FrameType type, std::string_view payload = {});

/// Incremental frame decoder over a byte stream. Feed() raw reads, then
/// drain with Next(): returns true with `*out` filled per complete frame,
/// false when more bytes are needed, and a Status error on a corrupt or
/// oversized frame (the connection should be closed — resync is not
/// attempted on a TCP stream).
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t len) { buffer_.append(data, len); }

  Result<bool> Next(Frame* out);

  /// Bytes currently buffered but not yet consumed.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out.
};

// ---- Status over the wire ----

/// StatusCode <-> u16 wire code. Unknown codes decode to kInternal so a
/// newer server never crashes an older client.
uint16_t WireStatusCode(StatusCode code);
StatusCode StatusCodeFromWire(uint16_t wire);

std::string EncodeError(const Status& status);
/// Decodes an Error frame payload back into a Status.
Status DecodeError(std::string_view payload);

// ---- Query / result payloads ----

/// Query payload: [string sql][u64 wait_lsn]. `wait_lsn` > 0 asks a
/// replica to hold the statement until its applied LSN reaches that
/// value (read-your-writes); primaries satisfy it trivially. Decoders
/// tolerate the field's absence for older clients.
struct WireQuery {
  std::string sql;
  uint64_t wait_lsn = 0;
};

std::string EncodeQuery(std::string_view sql, uint64_t wait_lsn = 0);
Result<WireQuery> DecodeQuery(std::string_view payload);

/// Client-side materialized result of one statement: the rows plus the
/// rendered per-row summary sets and zoom-in annotations (rendered
/// server-side; the wire ships display text, not summary objects).
struct NetResult {
  Schema schema;
  std::vector<Tuple> rows;
  std::vector<std::string> summaries;    // Parallel to rows; "" when none.
  std::string message;                   // DDL/utility acknowledgement.
  std::vector<std::string> annotations;  // ZOOM IN payload, rendered.

  /// ASCII rendering in the spirit of QueryResult::ToString.
  std::string ToString(size_t max_rows = 25) const;
};

/// ResultHeader payload: schema + message + rendered annotations.
std::string EncodeResultHeader(const Schema& schema,
                               const std::string& message,
                               const std::vector<std::string>& annotations);
Status DecodeResultHeader(std::string_view payload, NetResult* out);

/// RowBatch payload: u32 n, then per row [tuple][summary string].
std::string EncodeRowBatch(const std::vector<Tuple>& rows,
                           const std::vector<std::string>& summaries,
                           size_t begin, size_t count);
/// Appends the decoded rows/summaries to `out`.
Status DecodeRowBatch(std::string_view payload, NetResult* out);

/// ResultDone payload: [u64 total_rows][u64 commit_lsn]. `commit_lsn`
/// is the WAL LSN the statement made durable (0 for reads / in-memory
/// databases); clients feed it back as `wait_lsn` for read-your-writes
/// on replicas. Decoders tolerate the field's absence.
struct WireResultDone {
  uint64_t total_rows = 0;
  uint64_t commit_lsn = 0;
};

std::string EncodeResultDone(uint64_t total_rows, uint64_t commit_lsn = 0);
Result<WireResultDone> DecodeResultDone(std::string_view payload);

// ---- Replication payloads ----

/// ReplicateSubscribe payload: [u64 start_lsn] — the first LSN the
/// subscriber wants (its local next_lsn; the stream resumes there).
std::string EncodeReplicateSubscribe(uint64_t start_lsn);
Result<uint64_t> DecodeReplicateSubscribe(std::string_view payload);

/// LogFrame payload: [u32 n] then n x [u64 lsn][u8 type][string payload]
/// — durable WAL records in dense LSN order.
std::string EncodeLogFrame(const std::vector<WalRecord>& records,
                           size_t begin, size_t count);
Status DecodeLogFrame(std::string_view payload,
                      std::vector<WalRecord>* out);

/// ReplicaAck payload: [u64 applied_lsn] — the subscriber has durably
/// applied every record up to and including this LSN.
std::string EncodeReplicaAck(uint64_t applied_lsn);
Result<uint64_t> DecodeReplicaAck(std::string_view payload);

}  // namespace insight

#endif  // INSIGHTNOTES_NET_WIRE_H_
