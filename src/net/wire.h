#ifndef INSIGHTNOTES_NET_WIRE_H_
#define INSIGHTNOTES_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace insight {

/// Binary wire protocol spoken between `insightd` and InsightClient.
///
/// Framing mirrors the WAL's on-disk record discipline:
///   [u32 body_len][u32 crc32(body)][body = u8 type | payload]
/// so a truncated or bit-flipped frame fails the length or checksum test
/// instead of being half-interpreted. All integers are little-endian.
///
/// One request maps to one of:
///   Query        -> ResultHeader, RowBatch*, ResultDone   (success)
///                -> Error                                 (failure)
///   Ping         -> Pong
///   MetricsReq   -> MetricsReply (Prometheus text exposition)
///   Shutdown     -> ShutdownAck, then the server drains and exits
/// The server may also send Goodbye before closing (admission reject,
/// idle timeout, drain notice).
enum class FrameType : uint8_t {
  kQuery = 1,
  kResultHeader = 2,
  kRowBatch = 3,
  kResultDone = 4,
  kError = 5,
  kPing = 6,
  kPong = 7,
  kMetricsRequest = 8,
  kMetricsReply = 9,
  kShutdown = 10,
  kShutdownAck = 11,
  kGoodbye = 12,
};

/// Frame header bytes preceding the body.
inline constexpr size_t kFrameHeaderBytes = 8;  // len + crc.

/// Upper bound on one frame body; a peer announcing more is treated as
/// corrupt/hostile and the connection is dropped. Row batches are split
/// well below this.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Rows per RowBatch frame the server emits (keeps frames small enough
/// to interleave with other connections on the same loop).
inline constexpr size_t kWireRowsPerBatch = 256;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Appends the full encoding of one frame to `*dst`.
void EncodeFrame(FrameType type, std::string_view payload, std::string* dst);
std::string EncodeFrame(FrameType type, std::string_view payload = {});

/// Incremental frame decoder over a byte stream. Feed() raw reads, then
/// drain with Next(): returns true with `*out` filled per complete frame,
/// false when more bytes are needed, and a Status error on a corrupt or
/// oversized frame (the connection should be closed — resync is not
/// attempted on a TCP stream).
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t len) { buffer_.append(data, len); }

  Result<bool> Next(Frame* out);

  /// Bytes currently buffered but not yet consumed.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out.
};

// ---- Status over the wire ----

/// StatusCode <-> u16 wire code. Unknown codes decode to kInternal so a
/// newer server never crashes an older client.
uint16_t WireStatusCode(StatusCode code);
StatusCode StatusCodeFromWire(uint16_t wire);

std::string EncodeError(const Status& status);
/// Decodes an Error frame payload back into a Status.
Status DecodeError(std::string_view payload);

// ---- Query / result payloads ----

std::string EncodeQuery(std::string_view sql);
Result<std::string> DecodeQuery(std::string_view payload);

/// Client-side materialized result of one statement: the rows plus the
/// rendered per-row summary sets and zoom-in annotations (rendered
/// server-side; the wire ships display text, not summary objects).
struct NetResult {
  Schema schema;
  std::vector<Tuple> rows;
  std::vector<std::string> summaries;    // Parallel to rows; "" when none.
  std::string message;                   // DDL/utility acknowledgement.
  std::vector<std::string> annotations;  // ZOOM IN payload, rendered.

  /// ASCII rendering in the spirit of QueryResult::ToString.
  std::string ToString(size_t max_rows = 25) const;
};

/// ResultHeader payload: schema + message + rendered annotations.
std::string EncodeResultHeader(const Schema& schema,
                               const std::string& message,
                               const std::vector<std::string>& annotations);
Status DecodeResultHeader(std::string_view payload, NetResult* out);

/// RowBatch payload: u32 n, then per row [tuple][summary string].
std::string EncodeRowBatch(const std::vector<Tuple>& rows,
                           const std::vector<std::string>& summaries,
                           size_t begin, size_t count);
/// Appends the decoded rows/summaries to `out`.
Status DecodeRowBatch(std::string_view payload, NetResult* out);

std::string EncodeResultDone(uint64_t total_rows);
Result<uint64_t> DecodeResultDone(std::string_view payload);

}  // namespace insight

#endif  // INSIGHTNOTES_NET_WIRE_H_
