#ifndef INSIGHTNOTES_NET_REPLICATION_H_
#define INSIGHTNOTES_NET_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "net/session.h"
#include "sql/database.h"

namespace insight {

/// Primary-side WAL shipping. Replicas subscribe over ordinary sessions
/// (ReplicateSubscribe names the first LSN they want); one shipper
/// thread tails the durable log with a byte-offset cursor per
/// subscriber and streams LogFrame batches through the subscriber's own
/// event loop. ReplicaAck frames advance a per-subscriber window so a
/// stalled replica cannot buffer the whole log into its socket.
///
/// Thread safety: the registry mutex orders the shipper against
/// Unsubscribe, which the server calls synchronously from
/// OnSessionClosed on the session's loop thread *before* queueing the
/// deferred session erase. Loop functors run FIFO, so any send functor
/// the shipper queued before Unsubscribe runs — and no-ops on the
/// closed session — before the erase destroys it.
class ReplicationManager {
 public:
  struct Options {
    int poll_interval_ms = 20;        // Shipper tail-poll cadence.
    size_t max_batch_records = 256;   // Records per LogFrame.
    size_t max_batch_bytes = 1u << 20;
    /// Shipped-but-unacked cap per subscriber; shipping pauses past it.
    uint64_t max_window_records = 8192;
  };

  explicit ReplicationManager(Database* db) : ReplicationManager(db, {}) {}
  ReplicationManager(Database* db, Options options);
  ~ReplicationManager();

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Spawns the shipper thread.
  Status Start();
  /// Stops and joins it. Idempotent.
  void Stop();

  /// Registers `session` to receive the log from `start_lsn` on. Fails
  /// with OutOfRange when the LSN is past the durable end + 1 (the
  /// subscriber's log is not a prefix of ours — it is not our replica).
  Status Subscribe(Session* session, uint64_t start_lsn);

  /// Drops the subscriber; must complete before the session is
  /// destroyed (see the class comment's ordering contract).
  void Unsubscribe(Session* session);

  /// Flow control: the subscriber has durably applied through `lsn`.
  void OnAck(Session* session, uint64_t applied_lsn);

  size_t subscriber_count() const;
  /// Smallest acked LSN across subscribers (0 when none) — what a
  /// client that wants N-replica durability would wait on.
  uint64_t min_acked_lsn() const;

 private:
  struct Subscriber {
    LogManager::TailCursor cursor;
    uint64_t acked = 0;
  };

  void ShipLoop();

  Database* const db_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::map<Session*, Subscriber> subs_;
  std::thread thread_;
};

/// Replica-side feed: one thread that dials the primary, subscribes
/// from the local log's next LSN, applies every shipped record through
/// Database::ApplyReplicated, makes batches durable, and acks. Lost
/// connections reconnect with capped backoff — the subscription resumes
/// wherever the local log ends, so no record is lost or doubled.
class ReplicaFeed {
 public:
  struct Options {
    int reconnect_initial_ms = 100;
    int reconnect_max_ms = 2000;
  };

  ReplicaFeed(Database* db, std::string host, uint16_t port)
      : ReplicaFeed(db, std::move(host), port, {}) {}
  ReplicaFeed(Database* db, std::string host, uint16_t port, Options options);
  ~ReplicaFeed();

  ReplicaFeed(const ReplicaFeed&) = delete;
  ReplicaFeed& operator=(const ReplicaFeed&) = delete;

  /// Switches `db` into replica mode and spawns the feed thread.
  Status Start();

  /// Stops the feed (shutting the socket to unblock reads) and joins.
  /// Idempotent; the database stays a replica.
  void Stop();

  /// Failover: stops the feed and promotes the database to primary.
  Status Promote();

  uint64_t applied_lsn() const { return db_->applied_lsn(); }
  /// Last transport/apply error, for logs and tests ("" when none).
  std::string last_error() const;

 private:
  void FeedLoop();
  /// One connect + subscribe + stream cycle; returns why it ended.
  Status RunOnce();
  Status ReadFrame(int fd, Frame* out);

  Database* const db_;
  const std::string host_;
  const uint16_t port_;
  const Options options_;

  std::atomic<bool> stop_{false};
  std::atomic<int> fd_{-1};
  std::thread thread_;
  bool started_ = false;
  mutable std::mutex err_mu_;
  std::string last_error_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_REPLICATION_H_
