#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"
#include "wal/wal_record.h"  // Crc32.

namespace insight {

void EncodeFrame(FrameType type, std::string_view payload, std::string* dst) {
  std::string body;
  body.reserve(1 + payload.size());
  PutU8(&body, static_cast<uint8_t>(type));
  body.append(payload.data(), payload.size());
  PutU32(dst, static_cast<uint32_t>(body.size()));
  PutU32(dst, Crc32(body));
  dst->append(body);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  EncodeFrame(type, payload, &out);
  return out;
}

Result<bool> FrameParser::Next(Frame* out) {
  // Reclaim consumed prefix lazily so steady-state parsing is O(bytes).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return false;
  uint32_t body_len, crc;
  std::memcpy(&body_len, buffer_.data() + consumed_, 4);
  std::memcpy(&crc, buffer_.data() + consumed_ + 4, 4);
  if (body_len == 0 || body_len > max_frame_bytes_) {
    return Status::ResourceExhausted(
        "wire frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte limit");
  }
  if (avail < kFrameHeaderBytes + body_len) return false;
  const std::string_view body(buffer_.data() + consumed_ + kFrameHeaderBytes,
                              body_len);
  if (Crc32(body) != crc) {
    return Status::Corruption("wire frame checksum mismatch");
  }
  const uint8_t type = static_cast<uint8_t>(body[0]);
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > kMaxFrameType) {
    return Status::Corruption("unknown wire frame type " +
                              std::to_string(type));
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(body.data() + 1, body.size() - 1);
  consumed_ += kFrameHeaderBytes + body_len;
  return true;
}

// ---- Status over the wire ----

uint16_t WireStatusCode(StatusCode code) {
  return static_cast<uint16_t>(code);
}

StatusCode StatusCodeFromWire(uint16_t wire) {
  if (wire > static_cast<uint16_t>(StatusCode::kReadOnly)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(wire);
}

std::string EncodeError(const Status& status) {
  std::string out;
  PutU32(&out, WireStatusCode(status.code()));
  PutString(&out, status.message());
  return out;
}

Status DecodeError(std::string_view payload) {
  SerdeReader reader(payload);
  uint32_t code;
  std::string message;
  if (!reader.ReadU32(&code) || !reader.ReadString(&message)) {
    return Status::Corruption("malformed Error frame");
  }
  StatusCode decoded = StatusCodeFromWire(static_cast<uint16_t>(code));
  if (decoded == StatusCode::kOk) decoded = StatusCode::kInternal;
  return Status(decoded, std::move(message));
}

// ---- Query / result payloads ----

std::string EncodeQuery(std::string_view sql, uint64_t wait_lsn) {
  std::string out;
  PutString(&out, sql);
  PutU64(&out, wait_lsn);
  return out;
}

Result<WireQuery> DecodeQuery(std::string_view payload) {
  SerdeReader reader(payload);
  WireQuery out;
  if (!reader.ReadString(&out.sql)) {
    return Status::Corruption("malformed Query frame");
  }
  // wait_lsn is optional (older clients omit it).
  if (!reader.AtEnd() && !reader.ReadU64(&out.wait_lsn)) {
    return Status::Corruption("malformed Query frame");
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in Query frame");
  }
  return out;
}

std::string EncodeResultHeader(const Schema& schema,
                               const std::string& message,
                               const std::vector<std::string>& annotations) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    PutString(&out, col.name);
    PutU8(&out, static_cast<uint8_t>(col.type));
  }
  PutString(&out, message);
  PutU32(&out, static_cast<uint32_t>(annotations.size()));
  for (const std::string& ann : annotations) PutString(&out, ann);
  return out;
}

Status DecodeResultHeader(std::string_view payload, NetResult* out) {
  SerdeReader reader(payload);
  uint32_t ncols;
  if (!reader.ReadU32(&ncols)) {
    return Status::Corruption("malformed ResultHeader frame");
  }
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    uint8_t type;
    if (!reader.ReadString(&name) || !reader.ReadU8(&type) ||
        type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("malformed ResultHeader column");
    }
    // AddColumn rejects duplicates; wire schemas may legitimately carry
    // qualified duplicates from joins, so append directly.
    Status added =
        out->schema.AddColumn({std::move(name), static_cast<ValueType>(type)});
    if (!added.ok() && !added.IsInvalidArgument() &&
        added.code() != StatusCode::kAlreadyExists) {
      return added;
    }
  }
  uint32_t nanns;
  if (!reader.ReadString(&out->message) || !reader.ReadU32(&nanns)) {
    return Status::Corruption("malformed ResultHeader frame");
  }
  for (uint32_t i = 0; i < nanns; ++i) {
    std::string ann;
    if (!reader.ReadString(&ann)) {
      return Status::Corruption("malformed ResultHeader annotation");
    }
    out->annotations.push_back(std::move(ann));
  }
  return Status::OK();
}

std::string EncodeRowBatch(const std::vector<Tuple>& rows,
                           const std::vector<std::string>& summaries,
                           size_t begin, size_t count) {
  std::string out;
  const size_t end = std::min(begin + count, rows.size());
  PutU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) {
    rows[i].Serialize(&out);
    PutString(&out, i < summaries.size() ? summaries[i] : std::string());
  }
  return out;
}

Status DecodeRowBatch(std::string_view payload, NetResult* out) {
  SerdeReader reader(payload);
  uint32_t nrows;
  if (!reader.ReadU32(&nrows)) {
    return Status::Corruption("malformed RowBatch frame");
  }
  for (uint32_t i = 0; i < nrows; ++i) {
    INSIGHT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(&reader));
    std::string summary;
    if (!reader.ReadString(&summary)) {
      return Status::Corruption("malformed RowBatch summary");
    }
    out->rows.push_back(std::move(tuple));
    out->summaries.push_back(std::move(summary));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in RowBatch frame");
  }
  return Status::OK();
}

std::string EncodeResultDone(uint64_t total_rows, uint64_t commit_lsn) {
  std::string out;
  PutU64(&out, total_rows);
  PutU64(&out, commit_lsn);
  return out;
}

Result<WireResultDone> DecodeResultDone(std::string_view payload) {
  SerdeReader reader(payload);
  WireResultDone out;
  if (!reader.ReadU64(&out.total_rows)) {
    return Status::Corruption("malformed ResultDone frame");
  }
  // commit_lsn is optional (older servers omit it).
  if (!reader.AtEnd() && !reader.ReadU64(&out.commit_lsn)) {
    return Status::Corruption("malformed ResultDone frame");
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in ResultDone frame");
  }
  return out;
}

// ---- Replication payloads ----

std::string EncodeReplicateSubscribe(uint64_t start_lsn) {
  std::string out;
  PutU64(&out, start_lsn);
  return out;
}

Result<uint64_t> DecodeReplicateSubscribe(std::string_view payload) {
  SerdeReader reader(payload);
  uint64_t start_lsn;
  if (!reader.ReadU64(&start_lsn) || !reader.AtEnd() || start_lsn == 0) {
    return Status::Corruption("malformed ReplicateSubscribe frame");
  }
  return start_lsn;
}

std::string EncodeLogFrame(const std::vector<WalRecord>& records,
                           size_t begin, size_t count) {
  std::string out;
  const size_t end = std::min(begin + count, records.size());
  PutU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) {
    PutU64(&out, records[i].lsn);
    PutU8(&out, static_cast<uint8_t>(records[i].type));
    PutString(&out, records[i].payload);
  }
  return out;
}

Status DecodeLogFrame(std::string_view payload,
                      std::vector<WalRecord>* out) {
  SerdeReader reader(payload);
  uint32_t n;
  if (!reader.ReadU32(&n)) {
    return Status::Corruption("malformed LogFrame frame");
  }
  uint64_t prev_lsn = 0;
  for (uint32_t i = 0; i < n; ++i) {
    WalRecord rec;
    uint8_t type;
    if (!reader.ReadU64(&rec.lsn) || !reader.ReadU8(&type) ||
        !reader.ReadString(&rec.payload)) {
      return Status::Corruption("malformed LogFrame record");
    }
    if (rec.lsn == 0 || (prev_lsn != 0 && rec.lsn != prev_lsn + 1)) {
      return Status::Corruption("LogFrame records not in dense LSN order");
    }
    if (type > static_cast<uint8_t>(WalRecordType::kTxnBegin)) {
      return Status::Corruption("LogFrame record has unknown type " +
                                std::to_string(type));
    }
    prev_lsn = rec.lsn;
    rec.type = static_cast<WalRecordType>(type);
    out->push_back(std::move(rec));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in LogFrame frame");
  }
  return Status::OK();
}

std::string EncodeReplicaAck(uint64_t applied_lsn) {
  std::string out;
  PutU64(&out, applied_lsn);
  return out;
}

Result<uint64_t> DecodeReplicaAck(std::string_view payload) {
  SerdeReader reader(payload);
  uint64_t applied_lsn;
  if (!reader.ReadU64(&applied_lsn) || !reader.AtEnd()) {
    return Status::Corruption("malformed ReplicaAck frame");
  }
  return applied_lsn;
}

std::string NetResult::ToString(size_t max_rows) const {
  std::string out;
  if (!message.empty()) out += message + "\n";
  for (const std::string& ann : annotations) out += "  " + ann + "\n";
  if (schema.num_columns() == 0 && rows.empty()) return out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema.column(c).name;
  }
  out += "\n";
  const size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r].at(c).ToString();
    }
    if (r < summaries.size() && !summaries[r].empty()) {
      out += "  " + summaries[r];
    }
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

}  // namespace insight
