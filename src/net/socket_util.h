#ifndef INSIGHTNOTES_NET_SOCKET_UTIL_H_
#define INSIGHTNOTES_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace insight {

/// Thin POSIX socket helpers shared by the reactor and the blocking
/// client. All functions return Status/Result instead of errno codes so
/// call sites compose with the rest of the engine.

/// Creates a non-blocking listening TCP socket bound to 127.0.0.1:`port`
/// (port 0 = kernel-assigned ephemeral port). SO_REUSEADDR is set so
/// restart-on-same-directory tests do not trip TIME_WAIT.
Result<int> CreateListener(uint16_t port, int backlog = 128);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to host:port; returns a connected blocking fd.
Result<int> ConnectTo(const std::string& host, uint16_t port);

/// O_NONBLOCK on/off.
Status SetNonBlocking(int fd, bool enabled);

/// Disables Nagle: the protocol is request/response with small frames,
/// so coalescing delays round-trips without saving anything.
Status SetNoDelay(int fd);

/// Reads exactly `len` bytes from a *blocking* fd (client side). Fails
/// with IOError on EOF or error before `len` bytes arrive.
Status ReadFully(int fd, void* buf, size_t len);

/// Writes all of `data` to a *blocking* fd, retrying short writes.
Status WriteFully(int fd, const void* buf, size_t len);

}  // namespace insight

#endif  // INSIGHTNOTES_NET_SOCKET_UTIL_H_
