#include "net/server.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

InsightServer::InsightServer(Database* db, Options options)
    : db_(db),
      options_(std::move(options)),
      manager_(SessionManager::Limits{options_.max_connections,
                                      options_.idle_timeout_ms,
                                      options_.max_statement_bytes}) {}

InsightServer::~InsightServer() { Shutdown(); }

Status InsightServer::Start() {
  INSIGHT_CHECK(!started_);
  INSIGHT_ASSIGN_OR_RETURN(listen_fd_, CreateListener(options_.port));
  INSIGHT_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  if (!options_.port_file.empty()) {
    FILE* f = std::fopen(options_.port_file.c_str(), "w");
    if (f == nullptr) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("cannot write port file " + options_.port_file);
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(port_));
    std::fclose(f);
  }

  // Every journaled node can serve subscribers: a replica's log is a
  // byte-equal prefix of its primary's, so chained replication and
  // promote-then-serve both come for free. Started before any I/O
  // thread can accept a connection, since sessions read repl_ unlocked.
  if (db_->wal() != nullptr) {
    repl_ = std::make_unique<ReplicationManager>(db_);
    Status st = repl_->Start();
    if (!st.ok()) {
      repl_.reset();
      INSIGHT_LOG(Error) << "replication shipper failed to start: "
                         << st.ToString();
    }
  }

  const size_t n_shards = options_.io_threads == 0 ? 1 : options_.io_threads;
  for (size_t i = 0; i < n_shards; ++i) {
    auto shard = std::make_unique<LoopShard>();
    LoopShard* raw = shard.get();
    raw->loop.SetTickCallback([this, raw] {
      if (options_.idle_timeout_ms <= 0) return;
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, session] : raw->sessions) {
        if (!session->closed() && session->IdleExpired(now)) {
          EngineMetrics::Get().net_idle_disconnects->Add(1);
          session->SendFrame(FrameType::kGoodbye, "idle timeout");
          session->Close("idle timeout");  // Defer-erased via the host.
        }
      }
    });
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([loop = &shard->loop] { loop->Loop(); });
  }

  accept_loop_.QueueInLoop([this] {
    Status st = accept_loop_.AddFd(listen_fd_, EPOLLIN,
                                   [this](uint32_t) { AcceptReady(); });
    if (!st.ok()) {
      INSIGHT_LOG(Error) << "acceptor registration failed: " << st.ToString();
    }
  });
  accept_thread_ = std::thread([this] { accept_loop_.Loop(); });

  started_ = true;
  INSIGHT_LOG(Info) << "insightd listening on 127.0.0.1:" << port_ << " with "
                    << shards_.size() << " I/O threads";
  return Status::OK();
}

void InsightServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      INSIGHT_LOG(Error) << "accept: " << std::strerror(errno);
      return;
    }
    AdoptConnection(fd);
  }
}

void InsightServer::AdoptConnection(int fd) {
  EngineMetrics& m = EngineMetrics::Get();
  SetNoDelay(fd).ok();
  if (!manager_.TryAdmit()) {
    // Over max_connections: a best-effort Goodbye so the client sees an
    // admission rejection instead of a bare RST.
    m.net_connections_rejected->Add(1);
    const std::string frame =
        EncodeFrame(FrameType::kGoodbye, "server at max_connections");
    [[maybe_unused]] ssize_t n =
        ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
    return;
  }
  m.net_connections_opened->Add(1);
  m.net_active_connections->Set(static_cast<int64_t>(manager_.active()));

  LoopShard* shard = shards_[next_shard_].get();
  next_shard_ = (next_shard_ + 1) % shards_.size();
  Session* session =
      new Session(manager_.NextSessionId(), fd, &shard->loop, this,
                  manager_.limits());
  shard->loop.QueueInLoop([this, shard, session] {
    std::unique_ptr<Session> owned(session);
    Status st = owned->Register();
    if (!st.ok()) {
      INSIGHT_LOG(Error) << "session register failed: " << st.ToString();
      manager_.Release();
      return;  // ~Session closes the fd.
    }
    shard->sessions.emplace(owned->id(), std::move(owned));
  });
}

namespace {

/// First-keyword read detection, mirroring RoutedClient: statements that
/// never journal (and so never move the durable frontier) do not get a
/// commit LSN stamped on their ResultDone.
bool IsReadOnlySql(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && !std::isalpha(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() && std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i++]))));
  }
  return word == "SELECT" || word == "EXPLAIN" || word == "ZOOM";
}

}  // namespace

void InsightServer::HandleQuery(Session* session, const std::string& sql,
                                uint64_t wait_lsn) {
  EngineMetrics& m = EngineMetrics::Get();
  Stopwatch timer;
  session->CountStatement();
  if (wait_lsn > 0) {
    // Read-your-writes: hold the statement until replication has applied
    // the client's last acknowledged commit. Blocks this loop thread —
    // the same trade every synchronous statement already makes.
    m.repl_wait_lsn_waits->Add(1);
    if (!db_->WaitForAppliedLsn(
            wait_lsn,
            std::chrono::milliseconds(options_.wait_lsn_timeout_ms))) {
      m.net_request_errors->Add(1);
      session->SendFrame(
          FrameType::kError,
          EncodeError(Status::ResourceExhausted(
              "timed out waiting for LSN " + std::to_string(wait_lsn) +
              " to replicate (applied frontier is " +
              std::to_string(db_->applied_lsn()) + ")")));
      return;
    }
  }
  Result<QueryResult> executed = db_->Execute(sql, session->txn_handle());
  m.net_request_millis->Observe(timer.ElapsedMillis());
  if (!executed.ok()) {
    m.net_request_errors->Add(1);
    session->SendFrame(FrameType::kError, EncodeError(executed.status()));
    return;
  }
  // Serving-path kill point: the statement (and its WAL commit) is done
  // but the client has not been told. A crash here must recover to a
  // state containing every previously-acknowledged statement.
  INSIGHT_CRASH_POINT("net_before_reply");

  const QueryResult& result = *executed;
  std::vector<std::string> annotations;
  annotations.reserve(result.annotations.size());
  for (const Annotation& ann : result.annotations) {
    annotations.push_back("[" + std::to_string(ann.id) + "] " + ann.text);
  }
  std::vector<std::string> summaries;
  if (!result.summaries.empty()) {
    summaries.reserve(result.rows.size());
    for (size_t r = 0; r < result.rows.size(); ++r) {
      summaries.push_back(r < result.summaries.size() &&
                                  !result.summaries[r].empty()
                              ? result.summaries[r].ToString()
                              : std::string());
    }
  }
  session->SendFrame(
      FrameType::kResultHeader,
      EncodeResultHeader(result.schema, result.message, annotations));
  for (size_t begin = 0; begin < result.rows.size();
       begin += kWireRowsPerBatch) {
    session->SendFrame(
        FrameType::kRowBatch,
        EncodeRowBatch(result.rows, summaries, begin, kWireRowsPerBatch));
    if (session->closed()) return;
  }
  // Stamp writes with the durable frontier: the statement's commit hook
  // forced the log, so durable >= this statement's last LSN here, and a
  // replica that has applied through it has applied this write.
  uint64_t commit_lsn = 0;
  if (db_->wal() != nullptr && !IsReadOnlySql(sql)) {
    commit_lsn = db_->wal()->durable_lsn();
  }
  session->SendFrame(FrameType::kResultDone,
                     EncodeResultDone(result.rows.size(), commit_lsn));
}

void InsightServer::OnReplicateSubscribe(Session* session,
                                         uint64_t start_lsn) {
  if (repl_ == nullptr) {
    session->SendFrame(FrameType::kError,
                       EncodeError(Status::InvalidArgument(
                           "replication needs a journaled database")));
    return;
  }
  Status st = repl_->Subscribe(session, start_lsn);
  if (!st.ok()) {
    session->SendFrame(FrameType::kError, EncodeError(st));
  }
}

void InsightServer::OnReplicaAck(Session* session, uint64_t applied_lsn) {
  if (repl_ != nullptr) repl_->OnAck(session, applied_lsn);
}

void InsightServer::OnPromote(Session* session) {
  if (db_->role() == Database::Role::kPrimary) {
    session->SendFrame(FrameType::kPromoteAck, {});  // Idempotent.
    return;
  }
  if (feed_ == nullptr) {
    session->SendFrame(FrameType::kError,
                       EncodeError(Status::InvalidArgument(
                           "this replica has no feed to promote from")));
    return;
  }
  Status st = feed_->Promote();
  if (!st.ok()) {
    session->SendFrame(FrameType::kError, EncodeError(st));
    return;
  }
  INSIGHT_LOG(Info) << "promoted to primary at LSN "
                    << db_->wal()->durable_lsn();
  session->SendFrame(FrameType::kPromoteAck, {});
}

std::string InsightServer::MetricsText() { return db_->DumpMetrics(); }

void InsightServer::OnShutdownRequest() { NudgeShutdown(); }

void InsightServer::NudgeShutdown() {
  {
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void InsightServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lk(shutdown_mu_);
  shutdown_cv_.wait(lk, [this] { return shutdown_requested_; });
}

void InsightServer::OnSessionClosed(Session* session) {
  // Drop any replication subscription BEFORE queueing the deferred
  // erase: loop functors run FIFO, so a send the shipper queued earlier
  // no-ops on the closed session before the erase destroys it, and after
  // this line the shipper can never queue another.
  if (repl_ != nullptr) repl_->Unsubscribe(session);
  // A connection that drops mid-transaction must not leave its writes
  // pinned forever: roll the transaction back. The handle may already be
  // stale (conflict auto-abort), so a failure here is expected.
  if (session->open_txn() != 0) {
    db_->txn_manager()->Abort(session->open_txn()).ok();
    *session->txn_handle() = 0;
  }
  manager_.Release();
  EngineMetrics& m = EngineMetrics::Get();
  m.net_connections_closed->Add(1);
  m.net_active_connections->Set(static_cast<int64_t>(manager_.active()));
  // The close always happens on the session's own loop thread, possibly
  // inside its own event callback, so destruction is deferred to the next
  // loop iteration. Match the shard by loop pointer — other shards' maps
  // belong to other threads and must not be touched here.
  for (auto& shard : shards_) {
    if (&shard->loop != session->loop()) continue;
    LoopShard* raw = shard.get();
    const uint64_t id = session->id();
    raw->loop.QueueInLoop([raw, id] { raw->sessions.erase(id); });
    return;
  }
}

void InsightServer::Shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // 0. Stop the shipper first so it stops queueing sends onto loops
  // that are about to drain and quit.
  if (repl_ != nullptr) repl_->Stop();

  // 1. Stop accepting.
  accept_loop_.QueueInLoop([this] {
    accept_loop_.RemoveFd(listen_fd_).ok();
    ::close(listen_fd_);
    listen_fd_ = -1;
  });
  accept_loop_.Quit();
  accept_thread_.join();

  // 2. Drain each shard: any in-flight statement finishes before the
  // queued close runs (statements execute synchronously on the loop
  // thread), then lingering clients get a Goodbye and the loop exits.
  for (auto& shard : shards_) {
    LoopShard* raw = shard.get();
    raw->loop.QueueInLoop([raw] {
      for (auto& [id, session] : raw->sessions) {
        if (session->closed()) continue;
        session->SendFrame(FrameType::kGoodbye, "server shutting down");
        session->Close("drain");
      }
    });
    raw->loop.Quit();
  }
  for (auto& shard : shards_) {
    shard->thread.join();
    shard->sessions.clear();
  }
  INSIGHT_LOG(Info) << "insightd drained and stopped";
}

}  // namespace insight
