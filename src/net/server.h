#ifndef INSIGHTNOTES_NET_SERVER_H_
#define INSIGHTNOTES_NET_SERVER_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/replication.h"
#include "net/session.h"
#include "sql/database.h"

namespace insight {

/// `insightd`'s serving core: a flamingo-style multi-reactor. One
/// acceptor EventLoop owns the listening socket; `io_threads` I/O loops
/// each own a share of the connections (round-robin assignment at accept
/// time). Statements execute on the connection's loop thread — readers
/// overlap across loops through the database's shared statement gate,
/// writers serialize on its exclusive side and batch into the WAL
/// group-commit path.
///
/// Lifecycle:
///   InsightServer server(db, options);
///   server.Start();               // binds, spawns threads, returns
///   server.WaitForShutdownRequest();  // Shutdown frame or Quit-like nudge
///   server.Shutdown();            // drain: stop accepting, finish
///                                 // in-flight statements, close, join
class InsightServer : public SessionHost {
 public:
  struct Options {
    uint16_t port = 8471;      // 0 = kernel-assigned ephemeral port.
    size_t io_threads = 4;     // Reactor loops serving connections.
    size_t max_connections = 256;
    int64_t idle_timeout_ms = 300'000;  // <=0 disables idle disconnect.
    size_t max_statement_bytes = 1u << 20;
    /// When set, the bound port is written here after Start() (the
    /// `--port 0` + `--port-file` contract used by parallel CI jobs).
    std::string port_file;
    /// Cap on how long a Query with wait_lsn may block for the replica's
    /// applied frontier to catch up before it fails.
    int64_t wait_lsn_timeout_ms = 10'000;
  };

  InsightServer(Database* db, Options options);
  ~InsightServer() override;

  InsightServer(const InsightServer&) = delete;
  InsightServer& operator=(const InsightServer&) = delete;

  /// Binds the listener and spawns the acceptor + I/O threads.
  Status Start();

  /// The bound port (resolves port 0). Valid after Start().
  uint16_t port() const { return port_; }

  /// Blocks until a client sends Shutdown or NudgeShutdown() is called
  /// (e.g. from a signal-watcher). Returns immediately if already asked.
  void WaitForShutdownRequest();

  /// Marks shutdown as requested; safe from any thread (not from signal
  /// handlers — those should set a flag and poll-nudge from a thread).
  void NudgeShutdown();

  /// Graceful drain: stops accepting, lets in-flight statements finish,
  /// sends Goodbye to lingering clients, closes every session, joins all
  /// threads. Idempotent.
  void Shutdown();

  size_t active_sessions() const { return manager_.active(); }

  /// Hands the server the replica feed that keeps `db` in sync, enabling
  /// the Promote frame. Call before Start(); the feed outlives the
  /// server. nullptr (the default) makes Promote an error.
  void SetReplicaFeed(ReplicaFeed* feed) { feed_ = feed; }

  /// The primary-side shipper (nullptr for in-memory databases). Every
  /// journaled node ships — a replica's log is a prefix of its
  /// primary's, so chaining works unmodified.
  ReplicationManager* replication() { return repl_.get(); }

  // SessionHost:
  void HandleQuery(Session* session, const std::string& sql,
                   uint64_t wait_lsn) override;
  std::string MetricsText() override;
  void OnShutdownRequest() override;
  void OnSessionClosed(Session* session) override;
  void OnReplicateSubscribe(Session* session, uint64_t start_lsn) override;
  void OnReplicaAck(Session* session, uint64_t applied_lsn) override;
  void OnPromote(Session* session) override;

 private:
  /// One reactor thread plus the sessions it owns. Sessions are touched
  /// only on the shard's loop thread.
  struct LoopShard {
    EventLoop loop;
    std::thread thread;
    std::map<uint64_t, std::unique_ptr<Session>> sessions;
  };

  void AcceptReady();
  void AdoptConnection(int fd);

  Database* const db_;
  const Options options_;
  SessionManager manager_;
  std::unique_ptr<ReplicationManager> repl_;
  ReplicaFeed* feed_ = nullptr;

  uint16_t port_ = 0;
  int listen_fd_ = -1;
  EventLoop accept_loop_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<LoopShard>> shards_;
  size_t next_shard_ = 0;  // Accept-loop thread only (round robin).

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_SERVER_H_
