#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace insight {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<int> CreateListener(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind(port " + std::to_string(port) + ")");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  Status nb = SetNonBlocking(fd, true);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTo(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status st = Errno("connect(" + host + ":" + std::to_string(port) + ")");
    ::close(fd);
    return st;
  }
  SetNoDelay(fd).ok();
  return fd;
}

Status SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status ReadFully(int fd, void* buf, size_t len) {
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, dst + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by peer");
    if (errno == EINTR) continue;
    return Errno("read");
  }
  return Status::OK();
}

Status WriteFully(int fd, const void* buf, size_t len) {
  const char* src = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as the
    // EPIPE status below, not a process-killing SIGPIPE — test binaries
    // (unlike insightd) install no handler.
    const ssize_t n = ::send(fd, src + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE and friends: the peer went away mid-reply.
    return Errno("write");
  }
  return Status::OK();
}

}  // namespace insight
