#ifndef INSIGHTNOTES_NET_EVENT_LOOP_H_
#define INSIGHTNOTES_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace insight {

/// One epoll reactor, at most one per thread (the flamingo/muduo shape):
/// non-blocking fds register a callback keyed by fd, the owning thread
/// spins in Loop(), and other threads hand work over with RunInLoop(),
/// which wakes the epoll_wait through an eventfd. Everything that touches
/// a registered fd happens on the loop thread, so per-connection state
/// needs no locking.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;
  using Functor = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the reactor until Quit(). Must be called on the owning thread
  /// (the first thread to call it becomes the owner).
  void Loop();

  /// Signals Loop() to return after the current iteration; safe from any
  /// thread.
  void Quit();

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); the callback
  /// runs on the loop thread with the ready event mask. Loop thread only.
  Status AddFd(int fd, uint32_t events, FdCallback callback);
  /// Changes the interest set of a registered fd. Loop thread only.
  Status UpdateFd(int fd, uint32_t events);
  /// Deregisters; the callback is dropped. Does not close the fd.
  Status RemoveFd(int fd);

  /// Runs `fn` on the loop thread: immediately when already there,
  /// otherwise enqueues and wakes the loop. Safe from any thread.
  void RunInLoop(Functor fn);
  /// Always enqueues for the next iteration, even from the loop thread.
  void QueueInLoop(Functor fn);

  /// Callback invoked roughly every `tick_ms()` on the loop thread
  /// (idle-timeout sweeps). One slot; set before Loop().
  void SetTickCallback(Functor fn, int tick_ms = 500) {
    tick_ = std::move(fn);
    tick_ms_ = tick_ms;
  }

  bool IsInLoopThread() const {
    return owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  void Wakeup();
  void DrainPending();

  const int epoll_fd_;
  const int wakeup_fd_;  // eventfd; written by RunInLoop from other threads.
  std::atomic<bool> quit_{false};
  std::atomic<std::thread::id> owner_{};

  std::map<int, FdCallback> callbacks_;  // Loop thread only.

  std::mutex pending_mu_;
  std::vector<Functor> pending_;

  Functor tick_;
  int tick_ms_ = 500;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_EVENT_LOOP_H_
