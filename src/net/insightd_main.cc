// insightd: the InsightNotes network server. Serves the SQL dialect over
// the length-prefixed binary wire protocol (see src/net/wire.h) from an
// epoll reactor; pair it with examples/insight_cli or InsightClient.
//
//   insightd --port 0 --port-file /tmp/insightd.port --dir /data/insight
//
// SIGTERM/SIGINT trigger a graceful drain: accepting stops, in-flight
// statements finish, connections close, and the process exits 0.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "net/server.h"
#include "sql/database.h"
#include "stats/sketch.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N              listen port (0 = ephemeral; default 8471)\n"
      "  --port-file PATH      write the bound port here after startup\n"
      "  --dir PATH            durable database directory (WAL + pages);\n"
      "                        omitted = in-memory, nothing persists\n"
      "  --io-threads N        reactor I/O threads (default 4)\n"
      "  --max-connections N   admission limit (default 256)\n"
      "  --idle-timeout-ms N   disconnect idle sessions (<=0 disables)\n"
      "  --max-statement-bytes N  reject larger statements (default 1MiB)\n"
      "  --wal-sync MODE       every-op | group | never (default group)\n"
      "  --parallelism N       morsel workers per query (default 1)\n"
      "  --replica-of HOST:PORT  start as a read replica of that primary\n"
      "                        (requires --dir; writes are rejected until\n"
      "                        a client sends the Promote frame)\n"
      "  --stats MODE          on | off: online statistics sketches\n"
      "                        maintained inline on DML (default on)\n"
      "  --verbose             log at Info instead of Warn\n",
      argv0);
}

bool ParseSize(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using insight::Database;
  using insight::InsightServer;

  InsightServer::Options options;
  Database::Options db_options;
  db_options.wal_sync = Database::WalSyncMode::kGroupCommit;
  std::string dir;
  std::string replica_of;
  long long parallelism = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long long v = 0;
    if (arg == "--port" && next() != nullptr && ParseSize(argv[i], &v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (arg == "--port-file" && next() != nullptr) {
      options.port_file = argv[i];
    } else if (arg == "--dir" && next() != nullptr) {
      dir = argv[i];
    } else if (arg == "--io-threads" && next() != nullptr &&
               ParseSize(argv[i], &v) && v > 0) {
      options.io_threads = static_cast<size_t>(v);
    } else if (arg == "--max-connections" && next() != nullptr &&
               ParseSize(argv[i], &v) && v > 0) {
      options.max_connections = static_cast<size_t>(v);
    } else if (arg == "--idle-timeout-ms" && next() != nullptr &&
               ParseSize(argv[i], &v)) {
      options.idle_timeout_ms = v;
    } else if (arg == "--max-statement-bytes" && next() != nullptr &&
               ParseSize(argv[i], &v) && v > 0) {
      options.max_statement_bytes = static_cast<size_t>(v);
    } else if (arg == "--wal-sync" && next() != nullptr) {
      const std::string mode = argv[i];
      if (mode == "every-op") {
        db_options.wal_sync = Database::WalSyncMode::kEveryOp;
      } else if (mode == "group") {
        db_options.wal_sync = Database::WalSyncMode::kGroupCommit;
      } else if (mode == "never") {
        db_options.wal_sync = Database::WalSyncMode::kNever;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--parallelism" && next() != nullptr &&
               ParseSize(argv[i], &v) && v > 0) {
      parallelism = v;
    } else if (arg == "--replica-of" && next() != nullptr) {
      replica_of = argv[i];
    } else if (arg == "--stats" && next() != nullptr) {
      const std::string mode = argv[i];
      if (mode == "on") {
        insight::SetStatsEnabled(true);
      } else if (mode == "off") {
        insight::SetStatsEnabled(false);
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--verbose") {
      insight::SetLogLevel(insight::LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  db_options.max_statement_bytes = options.max_statement_bytes;

  std::unique_ptr<Database> db;
  if (dir.empty()) {
    db = std::make_unique<Database>(db_options);
    std::fprintf(stderr, "insightd: in-memory database (no --dir)\n");
  } else {
    db_options.backend = insight::StorageManager::Backend::kFile;
    db_options.directory = dir;
    auto opened = Database::Open(dir, db_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "insightd: open %s failed: %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(*opened);
    std::fprintf(stderr,
                 "insightd: opened %s (recovery replayed %llu records)\n",
                 dir.c_str(),
                 static_cast<unsigned long long>(
                     db->recovery_stats().records_applied));
  }
  db->SetParallelism(static_cast<size_t>(parallelism));

  std::unique_ptr<insight::ReplicaFeed> feed;
  if (!replica_of.empty()) {
    const size_t colon = replica_of.rfind(':');
    long long pport = 0;
    if (dir.empty() || colon == std::string::npos ||
        !ParseSize(replica_of.c_str() + colon + 1, &pport) || pport <= 0 ||
        pport > 65535) {
      std::fprintf(stderr,
                   "insightd: --replica-of needs HOST:PORT and --dir\n");
      return 2;
    }
    feed = std::make_unique<insight::ReplicaFeed>(
        db.get(), replica_of.substr(0, colon),
        static_cast<uint16_t>(pport));
    insight::Status fed = feed->Start();
    if (!fed.ok()) {
      std::fprintf(stderr, "insightd: replica mode failed: %s\n",
                   fed.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "insightd: replica of %s, applying from LSN %llu\n",
                 replica_of.c_str(),
                 static_cast<unsigned long long>(db->applied_lsn() + 1));
  }

  InsightServer server(db.get(), options);
  if (feed != nullptr) server.SetReplicaFeed(feed.get());
  insight::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "insightd: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "insightd: listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));

  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // Signal handlers may only set a flag; this watcher turns the flag into
  // a shutdown nudge the server's condition variable can see.
  std::thread signal_watcher([&server] {
    while (!g_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.NudgeShutdown();
  });

  server.WaitForShutdownRequest();
  g_stop.store(true, std::memory_order_release);  // Stop the watcher too.
  signal_watcher.join();

  std::fprintf(stderr, "insightd: draining...\n");
  if (feed != nullptr) feed->Stop();
  server.Shutdown();
  if (db->wal() != nullptr) db->WalSync().ok();
  std::fprintf(stderr, "insightd: clean exit\n");
  return 0;
}
