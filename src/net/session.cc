#include "net/session.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace insight {

void SessionHost::OnReplicateSubscribe(Session* session, uint64_t) {
  session->SendFrame(FrameType::kError,
                     EncodeError(Status::InvalidArgument(
                         "this host does not serve replication")));
}

void SessionHost::OnReplicaAck(Session*, uint64_t) {}

void SessionHost::OnPromote(Session* session) {
  session->SendFrame(FrameType::kError,
                     EncodeError(Status::InvalidArgument(
                         "this host cannot be promoted")));
}

Session::Session(uint64_t id, int fd, EventLoop* loop, SessionHost* host,
                 const SessionManager::Limits& limits)
    : id_(id),
      fd_(fd),
      loop_(loop),
      host_(host),
      idle_timeout_ms_(limits.idle_timeout_ms),
      // Statements up to the configured limit must fit one Query frame;
      // anything larger is rejected before it is buffered whole.
      parser_(static_cast<uint32_t>(limits.max_statement_bytes + 1024)),
      last_active_(std::chrono::steady_clock::now()) {}

Session::~Session() {
  if (!closed_) {
    loop_->RemoveFd(fd_).ok();
    ::close(fd_);
    closed_ = true;
  }
}

Status Session::Register() {
  return loop_->AddFd(fd_, EPOLLIN,
                      [this](uint32_t events) { OnEvents(events); });
}

void Session::OnEvents(uint32_t events) {
  if (closed_) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    Close("peer hung up");
    return;
  }
  if (events & EPOLLOUT) {
    Flush();
    if (closed_) return;
  }
  if (events & EPOLLIN) OnReadable();
}

void Session::OnReadable() {
  char buf[64 * 1024];
  bool saw_eof = false;
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      EngineMetrics::Get().net_bytes_received->Add(static_cast<uint64_t>(n));
      parser_.Feed(buf, static_cast<size_t>(n));
      last_active_ = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close(std::string("read error: ") + std::strerror(errno));
    return;
  }
  Frame frame;
  for (;;) {
    Result<bool> next = parser_.Next(&frame);
    if (!next.ok()) {
      // Corrupt or oversized input: tell the peer why, then drop the
      // connection — a TCP stream cannot resynchronize past bad framing.
      EngineMetrics::Get().net_frames_corrupt->Add(1);
      SendFrame(FrameType::kError, EncodeError(next.status()));
      Close(next.status().message());
      return;
    }
    if (!*next) break;
    DispatchFrame(frame);
    if (closed_) return;
  }
  if (saw_eof) Close("client closed connection");
}

void Session::DispatchFrame(const Frame& frame) {
  EngineMetrics& m = EngineMetrics::Get();
  m.net_requests_total->Add(1);
  switch (frame.type) {
    case FrameType::kQuery: {
      Result<WireQuery> query = DecodeQuery(frame.payload);
      if (!query.ok()) {
        SendFrame(FrameType::kError, EncodeError(query.status()));
        return;
      }
      host_->HandleQuery(this, query->sql, query->wait_lsn);
      return;
    }
    case FrameType::kReplicateSubscribe: {
      Result<uint64_t> start = DecodeReplicateSubscribe(frame.payload);
      if (!start.ok()) {
        SendFrame(FrameType::kError, EncodeError(start.status()));
        return;
      }
      host_->OnReplicateSubscribe(this, *start);
      return;
    }
    case FrameType::kReplicaAck: {
      Result<uint64_t> acked = DecodeReplicaAck(frame.payload);
      if (!acked.ok()) {
        SendFrame(FrameType::kError, EncodeError(acked.status()));
        return;
      }
      host_->OnReplicaAck(this, *acked);
      return;
    }
    case FrameType::kPromote:
      host_->OnPromote(this);
      return;
    case FrameType::kPing:
      SendFrame(FrameType::kPong, {});
      return;
    case FrameType::kMetricsRequest: {
      std::string text = host_->MetricsText();
      SendFrame(FrameType::kMetricsReply, EncodeQuery(text));
      return;
    }
    case FrameType::kShutdown:
      SendFrame(FrameType::kShutdownAck, {});
      Flush();
      host_->OnShutdownRequest();
      return;
    default:
      SendFrame(FrameType::kError,
                EncodeError(Status::InvalidArgument(
                    "unexpected client frame type " +
                    std::to_string(static_cast<int>(frame.type)))));
      return;
  }
}

void Session::SendFrame(FrameType type, std::string_view payload) {
  if (closed_) return;
  EncodeFrame(type, payload, &outbuf_);
  Flush();
}

void Session::Flush() {
  if (closed_) return;
  while (out_sent_ < outbuf_.size()) {
    // MSG_NOSIGNAL: a disconnect mid-flush must land in the write-error
    // branch below, not raise SIGPIPE in handler-less host processes.
    const ssize_t n = ::send(fd_, outbuf_.data() + out_sent_,
                             outbuf_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      EngineMetrics::Get().net_bytes_sent->Add(static_cast<uint64_t>(n));
      out_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Close(std::string("write error: ") + std::strerror(errno));
    return;
  }
  if (out_sent_ == outbuf_.size()) {
    outbuf_.clear();
    out_sent_ = 0;
  } else if (out_sent_ > (1u << 20)) {
    outbuf_.erase(0, out_sent_);
    out_sent_ = 0;
  }
  UpdateInterest();
}

void Session::UpdateInterest() {
  const bool want = out_sent_ < outbuf_.size();
  if (want == want_write_) return;
  want_write_ = want;
  loop_->UpdateFd(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN).ok();
}

void Session::Close(const std::string& reason) {
  if (closed_) return;
  closed_ = true;
  INSIGHT_LOG(Debug) << "session " << id_ << " closed: " << reason;
  loop_->RemoveFd(fd_).ok();
  ::close(fd_);
  host_->OnSessionClosed(this);
}

bool Session::IdleExpired(std::chrono::steady_clock::time_point now) const {
  if (idle_timeout_ms_ <= 0) return false;
  return now - last_active_ > std::chrono::milliseconds(idle_timeout_ms_);
}

}  // namespace insight
