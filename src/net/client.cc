#include "net/client.h"

#include <unistd.h>

#include <cctype>
#include <cstring>
#include <utility>

#include "common/serde.h"
#include "net/socket_util.h"
#include "wal/wal_record.h"  // Crc32.

namespace insight {

Result<std::unique_ptr<InsightClient>> InsightClient::Connect(
    const std::string& host, uint16_t port) {
  INSIGHT_ASSIGN_OR_RETURN(int fd, ConnectTo(host, port));
  return std::unique_ptr<InsightClient>(new InsightClient(fd));
}

InsightClient::~InsightClient() { Close(); }

void InsightClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status InsightClient::SendFrame(FrameType type, std::string_view payload) {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  const std::string frame = EncodeFrame(type, payload);
  Status st = WriteFully(fd_, frame.data(), frame.size());
  if (!st.ok()) Close();
  return st;
}

Result<Frame> InsightClient::ReadFrame() {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  char header[kFrameHeaderBytes];
  Status st = ReadFully(fd_, header, sizeof(header));
  if (!st.ok()) {
    Close();
    return st;
  }
  uint32_t body_len, crc;
  std::memcpy(&body_len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (body_len == 0 || body_len > kMaxFrameBytes) {
    Close();
    return Status::Corruption("oversized frame from server (" +
                              std::to_string(body_len) + " bytes)");
  }
  std::string body(body_len, '\0');
  st = ReadFully(fd_, body.data(), body.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  if (Crc32(body) != crc) {
    Close();
    return Status::Corruption("frame checksum mismatch from server");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  frame.payload.assign(body.data() + 1, body.size() - 1);
  return frame;
}

Result<NetResult> InsightClient::Execute(const std::string& sql,
                                         uint64_t wait_lsn) {
  last_error_retryable_ = false;
  INSIGHT_RETURN_NOT_OK(
      SendFrame(FrameType::kQuery, EncodeQuery(sql, wait_lsn)));
  NetResult result;
  bool saw_header = false;
  for (;;) {
    INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case FrameType::kResultHeader:
        INSIGHT_RETURN_NOT_OK(DecodeResultHeader(frame.payload, &result));
        saw_header = true;
        break;
      case FrameType::kRowBatch:
        if (!saw_header) {
          Close();
          return Status::Corruption("RowBatch before ResultHeader");
        }
        INSIGHT_RETURN_NOT_OK(DecodeRowBatch(frame.payload, &result));
        break;
      case FrameType::kResultDone: {
        INSIGHT_ASSIGN_OR_RETURN(WireResultDone done,
                                 DecodeResultDone(frame.payload));
        if (!saw_header || done.total_rows != result.rows.size()) {
          Close();
          return Status::Corruption("result stream row-count mismatch");
        }
        if (done.commit_lsn > last_commit_lsn_) {
          last_commit_lsn_ = done.commit_lsn;
        }
        return result;
      }
      case FrameType::kError: {
        Status err = DecodeError(frame.payload);
        last_error_retryable_ = IsRetryable(err);
        return err;
      }
      case FrameType::kGoodbye: {
        Close();
        std::string reason = frame.payload;
        return Status::ResourceExhausted(
            "server closed connection: " +
            (reason.empty() ? std::string("goodbye") : reason));
      }
      default:
        Close();
        return Status::Corruption("unexpected frame type " +
                                  std::to_string(static_cast<int>(frame.type)) +
                                  " in result stream");
    }
  }
}

Status InsightClient::Ping() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kPing, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kPong) {
    return Status::Corruption("expected Pong, got frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
  return Status::OK();
}

Result<std::string> InsightClient::Metrics() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kMetricsRequest, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type == FrameType::kError) return DecodeError(frame.payload);
  if (frame.type != FrameType::kMetricsReply) {
    return Status::Corruption("expected MetricsReply");
  }
  // The payload is a length-prefixed string (same shape as Query).
  INSIGHT_ASSIGN_OR_RETURN(WireQuery decoded, DecodeQuery(frame.payload));
  return std::move(decoded.sql);
}

Status InsightClient::RequestShutdown() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kShutdown, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kShutdownAck) {
    return Status::Corruption("expected ShutdownAck");
  }
  return Status::OK();
}

Status InsightClient::Promote() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kPromote, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type == FrameType::kError) return DecodeError(frame.payload);
  if (frame.type != FrameType::kPromoteAck) {
    return Status::Corruption("expected PromoteAck");
  }
  return Status::OK();
}

// ---- RoutedClient ----

Result<std::unique_ptr<RoutedClient>> RoutedClient::Make(
    std::vector<Endpoint> endpoints) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("routed client needs >= 1 endpoint");
  }
  auto client =
      std::unique_ptr<RoutedClient>(new RoutedClient(std::move(endpoints)));
  client->conns_.resize(client->endpoints_.size());
  return client;
}

bool RoutedClient::IsReadStatement(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string word;
  while (i < sql.size() && std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  return word == "SELECT" || word == "EXPLAIN" || word == "ZOOM";
}

Result<InsightClient*> RoutedClient::Conn(size_t i) {
  if (conns_[i] == nullptr || !conns_[i]->connected()) {
    INSIGHT_ASSIGN_OR_RETURN(
        conns_[i],
        InsightClient::Connect(endpoints_[i].host, endpoints_[i].port));
  }
  return conns_[i].get();
}

Result<NetResult> RoutedClient::Execute(const std::string& sql) {
  return IsReadStatement(sql) ? ExecuteRead(sql) : ExecuteWrite(sql);
}

Result<NetResult> RoutedClient::ExecuteWrite(const std::string& sql) {
  // Probe endpoints until one accepts writes; a kReadOnly answer names a
  // replica, so move on. The discovered primary sticks until it fails.
  const size_t n = endpoints_.size();
  const size_t first = primary_ >= 0 ? static_cast<size_t>(primary_) : 0;
  Status last_err = Status::Internal("no endpoint reachable");
  for (size_t probe = 0; probe < n; ++probe) {
    const size_t i = (first + probe) % n;
    Result<InsightClient*> conn = Conn(i);
    if (!conn.ok()) {
      last_err = conn.status();
      continue;
    }
    Result<NetResult> result = conn.ValueOrDie()->Execute(sql);
    if (result.ok()) {
      primary_ = static_cast<int>(i);
      const uint64_t lsn = conn.ValueOrDie()->last_commit_lsn();
      if (lsn > last_commit_lsn_) last_commit_lsn_ = lsn;
      return result;
    }
    if (result.status().IsReadOnly()) {
      last_err = result.status();
      if (primary_ == static_cast<int>(i)) primary_ = -1;
      continue;  // A replica: keep probing for the primary.
    }
    if (!conn.ValueOrDie()->connected() &&
        primary_ != static_cast<int>(i)) {
      // Endpoint died before this statement did any work: try the next.
      last_err = result.status();
      continue;
    }
    // The primary saw the statement — surface its verdict (semantic
    // errors and conflicts must not be retried on another node).
    primary_ = static_cast<int>(i);
    return result;
  }
  return last_err;
}

Result<NetResult> RoutedClient::ExecuteRead(const std::string& sql) {
  const size_t n = endpoints_.size();
  Status last_err = Status::Internal("no endpoint reachable");
  // One lap over the fleet starting at the round-robin cursor, skipping
  // the known primary so replicas absorb reads; a second chance on the
  // primary closes the loop when every replica is down.
  for (size_t probe = 0; probe <= n; ++probe) {
    size_t i;
    if (probe == n) {
      if (primary_ < 0 || n == 1) break;
      i = static_cast<size_t>(primary_);  // Fallback: primary serves reads.
    } else {
      i = (rr_next_ + probe) % n;
      if (n > 1 && primary_ == static_cast<int>(i)) continue;
    }
    Result<InsightClient*> conn = Conn(i);
    if (!conn.ok()) {
      last_err = conn.status();
      continue;
    }
    Result<NetResult> result =
        conn.ValueOrDie()->Execute(sql, last_commit_lsn_);
    if (result.ok()) {
      if (probe < n) rr_next_ = (i + 1) % n;
      return result;
    }
    if (!conn.ValueOrDie()->connected()) {
      // Replica dropped mid-query. Reads are side-effect free, so retry
      // on the next endpoint.
      last_err = result.status();
      continue;
    }
    return result;  // Semantic error: same answer everywhere.
  }
  return last_err;
}

}  // namespace insight
