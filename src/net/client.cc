#include "net/client.h"

#include <unistd.h>

#include <cstring>

#include "common/serde.h"
#include "net/socket_util.h"
#include "wal/wal_record.h"  // Crc32.

namespace insight {

Result<std::unique_ptr<InsightClient>> InsightClient::Connect(
    const std::string& host, uint16_t port) {
  INSIGHT_ASSIGN_OR_RETURN(int fd, ConnectTo(host, port));
  return std::unique_ptr<InsightClient>(new InsightClient(fd));
}

InsightClient::~InsightClient() { Close(); }

void InsightClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status InsightClient::SendFrame(FrameType type, std::string_view payload) {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  const std::string frame = EncodeFrame(type, payload);
  Status st = WriteFully(fd_, frame.data(), frame.size());
  if (!st.ok()) Close();
  return st;
}

Result<Frame> InsightClient::ReadFrame() {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  char header[kFrameHeaderBytes];
  Status st = ReadFully(fd_, header, sizeof(header));
  if (!st.ok()) {
    Close();
    return st;
  }
  uint32_t body_len, crc;
  std::memcpy(&body_len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (body_len == 0 || body_len > kMaxFrameBytes) {
    Close();
    return Status::Corruption("oversized frame from server (" +
                              std::to_string(body_len) + " bytes)");
  }
  std::string body(body_len, '\0');
  st = ReadFully(fd_, body.data(), body.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  if (Crc32(body) != crc) {
    Close();
    return Status::Corruption("frame checksum mismatch from server");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  frame.payload.assign(body.data() + 1, body.size() - 1);
  return frame;
}

Result<NetResult> InsightClient::Execute(const std::string& sql) {
  last_error_retryable_ = false;
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kQuery, EncodeQuery(sql)));
  NetResult result;
  bool saw_header = false;
  for (;;) {
    INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case FrameType::kResultHeader:
        INSIGHT_RETURN_NOT_OK(DecodeResultHeader(frame.payload, &result));
        saw_header = true;
        break;
      case FrameType::kRowBatch:
        if (!saw_header) {
          Close();
          return Status::Corruption("RowBatch before ResultHeader");
        }
        INSIGHT_RETURN_NOT_OK(DecodeRowBatch(frame.payload, &result));
        break;
      case FrameType::kResultDone: {
        INSIGHT_ASSIGN_OR_RETURN(uint64_t total,
                                 DecodeResultDone(frame.payload));
        if (!saw_header || total != result.rows.size()) {
          Close();
          return Status::Corruption("result stream row-count mismatch");
        }
        return result;
      }
      case FrameType::kError: {
        Status err = DecodeError(frame.payload);
        last_error_retryable_ = IsRetryable(err);
        return err;
      }
      case FrameType::kGoodbye: {
        Close();
        std::string reason = frame.payload;
        return Status::ResourceExhausted(
            "server closed connection: " +
            (reason.empty() ? std::string("goodbye") : reason));
      }
      default:
        Close();
        return Status::Corruption("unexpected frame type " +
                                  std::to_string(static_cast<int>(frame.type)) +
                                  " in result stream");
    }
  }
}

Status InsightClient::Ping() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kPing, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kPong) {
    return Status::Corruption("expected Pong, got frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
  return Status::OK();
}

Result<std::string> InsightClient::Metrics() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kMetricsRequest, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type == FrameType::kError) return DecodeError(frame.payload);
  if (frame.type != FrameType::kMetricsReply) {
    return Status::Corruption("expected MetricsReply");
  }
  // The payload is a length-prefixed string (same shape as Query).
  return DecodeQuery(frame.payload);
}

Status InsightClient::RequestShutdown() {
  INSIGHT_RETURN_NOT_OK(SendFrame(FrameType::kShutdown, {}));
  INSIGHT_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kShutdownAck) {
    return Status::Corruption("expected ShutdownAck");
  }
  return Status::OK();
}

}  // namespace insight
