#include "net/replication.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

// ---- ReplicationManager (primary side) ----

ReplicationManager::ReplicationManager(Database* db, Options options)
    : db_(db), options_(options) {}

ReplicationManager::~ReplicationManager() { Stop(); }

Status ReplicationManager::Start() {
  if (db_->wal() == nullptr) {
    return Status::InvalidArgument(
        "replication needs a journaled database (Open a directory)");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return Status::OK();
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { ShipLoop(); });
  return Status::OK();
}

void ReplicationManager::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    started_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Status ReplicationManager::Subscribe(Session* session, uint64_t start_lsn) {
  INSIGHT_ASSIGN_OR_RETURN(LogManager::TailCursor cursor,
                           db_->wal()->SeekTo(start_lsn));
  std::lock_guard<std::mutex> lk(mu_);
  Subscriber& sub = subs_[session];
  sub.cursor = cursor;
  sub.acked = start_lsn - 1;  // Everything below its start is its own.
  EngineMetrics::Get().repl_subscribers->Set(
      static_cast<int64_t>(subs_.size()));
  INSIGHT_LOG(Info) << "replica subscribed from LSN " << start_lsn;
  return Status::OK();
}

void ReplicationManager::Unsubscribe(Session* session) {
  std::lock_guard<std::mutex> lk(mu_);
  if (subs_.erase(session) > 0) {
    EngineMetrics::Get().repl_subscribers->Set(
        static_cast<int64_t>(subs_.size()));
  }
}

void ReplicationManager::OnAck(Session* session, uint64_t applied_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = subs_.find(session);
  if (it == subs_.end()) return;
  if (applied_lsn > it->second.acked) it->second.acked = applied_lsn;
  INSIGHT_CRASH_POINT("repl_after_ack_read");
}

size_t ReplicationManager::subscriber_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return subs_.size();
}

uint64_t ReplicationManager::min_acked_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t min_acked = 0;
  bool first = true;
  for (const auto& [session, sub] : subs_) {
    if (first || sub.acked < min_acked) min_acked = sub.acked;
    first = false;
  }
  return min_acked;
}

void ReplicationManager::ShipLoop() {
  EngineMetrics& m = EngineMetrics::Get();
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(options_.poll_interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    const Lsn durable = db_->wal()->durable_lsn();
    uint64_t min_acked = 0;
    bool first = true;
    for (auto& [session, sub] : subs_) {
      if (first || sub.acked < min_acked) min_acked = sub.acked;
      first = false;
      const uint64_t shipped = sub.cursor.next_lsn - 1;
      if (shipped >= durable) continue;  // Caught up.
      if (shipped - std::min(shipped, sub.acked) >=
          options_.max_window_records) {
        continue;  // Backpressure: wait for acks.
      }
      Result<std::vector<WalRecord>> batch = db_->wal()->ReadDurableFrom(
          &sub.cursor, options_.max_batch_records, options_.max_batch_bytes);
      if (!batch.ok()) {
        // A cursor that cannot read the durable prefix will never
        // recover; drop the subscriber (its reconnect re-subscribes).
        INSIGHT_LOG(Error) << "replication tail read failed: "
                           << batch.status().ToString();
        Session* s = session;
        s->loop()->QueueInLoop([s] {
          if (!s->closed()) s->Close("replication tail read failed");
        });
        continue;
      }
      if (batch->empty()) continue;
      INSIGHT_CRASH_POINT("repl_before_ship");
      std::string payload = EncodeLogFrame(*batch, 0, batch->size());
      m.repl_records_shipped->Add(batch->size());
      Session* s = session;
      s->loop()->QueueInLoop([s, payload = std::move(payload)] {
        if (!s->closed()) s->SendFrame(FrameType::kLogFrame, payload);
      });
      INSIGHT_CRASH_POINT("repl_after_ship");
    }
    if (!first) {
      m.repl_ship_lag->Set(
          static_cast<int64_t>(durable - std::min<Lsn>(durable, min_acked)));
    }
  }
}

// ---- ReplicaFeed (replica side) ----

ReplicaFeed::ReplicaFeed(Database* db, std::string host, uint16_t port,
                         Options options)
    : db_(db), host_(std::move(host)), port_(port), options_(options) {}

ReplicaFeed::~ReplicaFeed() { Stop(); }

Status ReplicaFeed::Start() {
  INSIGHT_RETURN_NOT_OK(db_->EnterReplicaMode());
  if (started_) return Status::OK();
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { FeedLoop(); });
  return Status::OK();
}

void ReplicaFeed::Stop() {
  if (!started_) return;
  started_ = false;
  stop_.store(true, std::memory_order_release);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // Unblocks the feed's read.
  thread_.join();
  if (fd >= 0) ::close(fd);
}

Status ReplicaFeed::Promote() {
  Stop();
  return db_->Promote();
}

std::string ReplicaFeed::last_error() const {
  std::lock_guard<std::mutex> lk(err_mu_);
  return last_error_;
}

void ReplicaFeed::FeedLoop() {
  int backoff_ms = options_.reconnect_initial_ms;
  while (!stop_.load(std::memory_order_acquire)) {
    Status st = RunOnce();
    if (stop_.load(std::memory_order_acquire)) break;
    if (!st.ok()) {
      std::lock_guard<std::mutex> lk(err_mu_);
      last_error_ = st.ToString();
    }
    EngineMetrics::Get().repl_reconnects->Add(1);
    INSIGHT_LOG(Info) << "replica feed disconnected (" << st.ToString()
                      << "); retrying in " << backoff_ms << "ms";
    // Sleep in small slices so Stop() stays responsive.
    for (int waited = 0;
         waited < backoff_ms && !stop_.load(std::memory_order_acquire);
         waited += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    backoff_ms = std::min(backoff_ms * 2, options_.reconnect_max_ms);
  }
}

Status ReplicaFeed::ReadFrame(int fd, Frame* out) {
  char header[kFrameHeaderBytes];
  INSIGHT_RETURN_NOT_OK(ReadFully(fd, header, sizeof(header)));
  uint32_t body_len, crc;
  std::memcpy(&body_len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (body_len == 0 || body_len > kMaxFrameBytes) {
    return Status::Corruption("oversized frame from primary");
  }
  std::string body(body_len, '\0');
  INSIGHT_RETURN_NOT_OK(ReadFully(fd, body.data(), body.size()));
  if (Crc32(body) != crc) {
    return Status::Corruption("frame checksum mismatch from primary");
  }
  out->type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  out->payload.assign(body.data() + 1, body.size() - 1);
  return Status::OK();
}

Status ReplicaFeed::RunOnce() {
  INSIGHT_ASSIGN_OR_RETURN(int fd, ConnectTo(host_, port_));
  fd_.store(fd, std::memory_order_release);
  // fd ownership: Stop() may exchange fd_ to -1 and close it; every
  // return path below re-checks the slot before closing.
  auto release_fd = [this] {
    const int cur = fd_.exchange(-1, std::memory_order_acq_rel);
    if (cur >= 0) ::close(cur);
  };
  const std::string subscribe = EncodeFrame(
      FrameType::kReplicateSubscribe,
      EncodeReplicateSubscribe(db_->wal()->next_lsn()));
  Status st = WriteFully(fd, subscribe.data(), subscribe.size());
  if (!st.ok()) {
    release_fd();
    return st;
  }
  EngineMetrics& m = EngineMetrics::Get();
  for (;;) {
    Frame frame;
    st = ReadFrame(fd, &frame);
    if (!st.ok()) break;
    if (frame.type == FrameType::kError) {
      st = DecodeError(frame.payload);
      break;
    }
    if (frame.type == FrameType::kGoodbye) {
      st = Status::IOError("primary said goodbye: " + frame.payload);
      break;
    }
    if (frame.type != FrameType::kLogFrame) {
      st = Status::Corruption("unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)) +
                              " on the replication stream");
      break;
    }
    std::vector<WalRecord> records;
    st = DecodeLogFrame(frame.payload, &records);
    if (!st.ok()) break;
    Lsn last = kInvalidLsn;
    for (const WalRecord& rec : records) {
      st = db_->ApplyReplicated(rec);
      if (!st.ok()) break;
      last = rec.lsn;
      m.repl_records_applied->Add(1);
    }
    if (!st.ok()) break;
    if (last == kInvalidLsn) continue;
    // Batch durability point: the verbatim copies are on disk before the
    // ack claims them, and before wait-for-lsn readers see the frontier.
    st = db_->WalSync();
    if (!st.ok()) break;
    db_->AdvanceAppliedLsn(last);
    m.repl_applied_lsn->Set(static_cast<int64_t>(last));
    const std::string ack =
        EncodeFrame(FrameType::kReplicaAck, EncodeReplicaAck(last));
    st = WriteFully(fd, ack.data(), ack.size());
    if (!st.ok()) break;
  }
  release_fd();
  return st;
}

}  // namespace insight
