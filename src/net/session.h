#ifndef INSIGHTNOTES_NET_SESSION_H_
#define INSIGHTNOTES_NET_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "net/event_loop.h"
#include "net/wire.h"

namespace insight {

class Session;

/// What a Session needs from its server. An interface so the session
/// layer does not depend on InsightServer (and tests can fake it).
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Executes one statement and queues the reply frames on `session`.
  /// `wait_lsn` > 0 asks the host to delay execution until its applied
  /// LSN reaches it (read-your-writes on replicas). Runs on the
  /// session's loop thread.
  virtual void HandleQuery(Session* session, const std::string& sql,
                           uint64_t wait_lsn) = 0;

  /// Prometheus text exposition for the Metrics frame.
  virtual std::string MetricsText() = 0;

  /// A client sent Shutdown (after the ack was queued): begin drain.
  virtual void OnShutdownRequest() = 0;

  /// The session closed its fd; the host must defer-destroy it (the call
  /// may originate inside the session's own event callback).
  virtual void OnSessionClosed(Session* session) = 0;

  /// Replication hooks, defaulted to an Error reply so hosts that do
  /// not replicate (and test fakes) need not implement them.
  virtual void OnReplicateSubscribe(Session* session, uint64_t start_lsn);
  virtual void OnReplicaAck(Session* session, uint64_t applied_lsn);
  virtual void OnPromote(Session* session);
};

/// Admission control and session accounting shared by every I/O loop.
/// Sessions are owned by their loop shard; this tracks only counts, so
/// one atomic is enough and no loop ever blocks on another.
class SessionManager {
 public:
  struct Limits {
    size_t max_connections = 256;
    int64_t idle_timeout_ms = 300'000;  // 5 min; <=0 disables the sweep.
    size_t max_statement_bytes = 1u << 20;
  };

  explicit SessionManager(Limits limits) : limits_(limits) {}

  /// Reserves one connection slot; false when the server is full (the
  /// caller sends Goodbye and closes).
  bool TryAdmit() {
    size_t cur = active_.load(std::memory_order_relaxed);
    while (cur < limits_.max_connections) {
      if (active_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  void Release() { active_.fetch_sub(1, std::memory_order_acq_rel); }

  uint64_t NextSessionId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t active() const { return active_.load(std::memory_order_relaxed); }
  const Limits& limits() const { return limits_; }

 private:
  const Limits limits_;
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> next_id_{1};
};

/// One client connection, owned by exactly one EventLoop thread: all
/// methods except the constructor run on that thread, so the buffers and
/// parser need no locks. Frames are decoded incrementally; each Query is
/// executed synchronously via the host (readers run against their own
/// MVCC snapshot and overlap freely across loops, writers serialize on
/// the transaction manager's write gate) and the reply is streamed back
/// as ResultHeader / RowBatch* / ResultDone.
///
/// The session carries its client's open explicit transaction between
/// statements: BEGIN stores the handle here, COMMIT/ROLLBACK clear it,
/// and a connection that drops mid-transaction gets rolled back by the
/// host.
class Session {
 public:
  Session(uint64_t id, int fd, EventLoop* loop, SessionHost* host,
          const SessionManager::Limits& limits);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Registers the fd with the loop. Loop thread.
  Status Register();

  /// Queues one frame and flushes as far as the socket allows.
  void SendFrame(FrameType type, std::string_view payload);

  /// Sends Goodbye (best effort) and closes. Loop thread.
  void Close(const std::string& reason);

  /// True when idle longer than the configured timeout.
  bool IdleExpired(std::chrono::steady_clock::time_point now) const;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  EventLoop* loop() const { return loop_; }
  bool closed() const { return closed_; }
  uint64_t statements() const { return statements_; }

  /// Statement counter hook for the host.
  void CountStatement() { ++statements_; }

  /// The open explicit transaction (0 = none), threaded through
  /// Database::Execute so BEGIN/COMMIT/ROLLBACK span statements.
  uint64_t* txn_handle() { return &txn_handle_; }
  uint64_t open_txn() const { return txn_handle_; }

 private:
  void OnEvents(uint32_t events);
  void OnReadable();
  void DispatchFrame(const Frame& frame);
  /// Writes as much buffered output as the socket accepts; toggles
  /// EPOLLOUT interest accordingly.
  void Flush();
  void UpdateInterest();

  const uint64_t id_;
  const int fd_;
  EventLoop* const loop_;
  SessionHost* const host_;
  const int64_t idle_timeout_ms_;

  FrameParser parser_;
  std::string outbuf_;
  size_t out_sent_ = 0;
  bool want_write_ = false;
  bool closed_ = false;
  uint64_t statements_ = 0;
  uint64_t txn_handle_ = 0;
  std::chrono::steady_clock::time_point last_active_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_NET_SESSION_H_
