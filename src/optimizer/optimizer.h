#ifndef INSIGHTNOTES_OPTIMIZER_OPTIMIZER_H_
#define INSIGHTNOTES_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/logical_plan.h"
#include "optimizer/query_context.h"

namespace insight {

/// Optimizer knobs. The benches toggle these to reproduce the paper's
/// "Optimization-Disabled" vs "Optimization-Enabled" arms (Figs. 14, 15)
/// and the index on/off comparisons (Figs. 10-13).
struct OptimizerOptions {
  /// Apply the Section 5.1 transformation rules before lowering.
  bool enable_rewrite_rules = true;
  /// Consider Summary-BTree access paths (Rules 3-6 sort elimination
  /// included).
  bool use_summary_indexes = true;
  /// Consider baseline-scheme access paths when no Summary-BTree exists.
  bool use_baseline_indexes = true;
  /// Consider data-column B-Tree access paths and index joins.
  bool use_data_indexes = true;
  /// Consider hash joins for data equi-joins (an implementation choice
  /// beyond the paper's nested-loop/index pair; disable to reproduce the
  /// paper's engine exactly).
  bool enable_hash_join = true;
  /// Sort implementation for Sort/O operators.
  SortOp::Mode sort_mode = SortOp::Mode::kMemory;
  size_t sort_memory_budget = 4 << 20;
  /// Minimum estimated table cardinality before a sequential scan is
  /// worth parallelizing (morsel dispatch has fixed overhead). Parallel
  /// plans additionally require ExecutionContext::parallelism() > 1.
  double parallel_row_threshold = 10000;
  /// Heap pages per morsel handed to each parallel-scan worker.
  PageId morsel_pages = 16;
  /// Cardinality-feedback trigger: when an executed access path's q-error
  /// (max(est, actual) / min(est, actual)) reaches this value, the table
  /// is flagged for a statistics refresh, which the next RefreshStats()
  /// upgrades to a full ANALYZE. 0 disables the feedback loop (default:
  /// plan choices stay deterministic for tests/benches unless opted in).
  double feedback_qerror_threshold = 0;
  /// Consult the online sketch statistics (src/stats) as a second
  /// estimator tier: sketch answers override the ANALYZE histograms once
  /// they go stale, and cover relations never analyzed at all.
  bool use_sketch_statistics = true;
  /// Write churn since the last ANALYZE (as a fraction of the analyzed
  /// row count) past which the histograms count as stale.
  double sketch_staleness_threshold = 0.10;
};

/// Per-operator cardinality and cost estimate. Costs are abstract units:
/// 1.0 per page I/O + 0.01 per tuple of CPU, the classical textbook
/// weighting.
struct PlanEstimate {
  double rows = 0;
  double cost = 0;
};

/// The extended query optimizer (Section 5): rewrites logical plans with
/// Rules 1-11, estimates cardinalities from the Fig. 6 statistics, and
/// lowers to physical operators choosing access paths, join algorithms,
/// and sort eliminations.
class Optimizer {
 public:
  Optimizer(QueryContext* ctx, OptimizerOptions options)
      : ctx_(ctx), options_(options) {}

  /// Full pipeline: rewrite (if enabled) then lower.
  Result<OpPtr> Optimize(LogicalPtr plan);

  /// Rule application only (exposed for tests / EXPLAIN).
  Result<LogicalPtr> Rewrite(LogicalPtr plan);

  /// Physical lowering only.
  Result<OpPtr> Lower(const LogicalNode& plan);

  /// Cardinality/cost estimation for a logical subtree.
  Result<PlanEstimate> Estimate(const LogicalNode& node);

  /// Output schema of a logical subtree (binder-style resolution).
  Result<Schema> OutputSchema(const LogicalNode& node);

 private:
  /// Interesting order carried by a physical subplan (Rules 3-6): rows
  /// arrive ordered by `instance.label` ascending.
  struct PhysOrder {
    std::string instance;
    std::string label;
  };
  struct Lowered {
    OpPtr op;
    std::optional<PhysOrder> order;
  };

  // Rewrite helpers (one pass; PushDowns runs to fixpoint).
  Result<bool> PushDownOnce(LogicalNode* node);
  Result<bool> InstancesOnlyOn(const std::vector<std::string>& instances,
                               const LogicalNode& subtree, bool* any_linked);
  Result<bool> ColumnsResolve(const std::vector<std::string>& columns,
                              const LogicalNode& subtree);

  /// Lowers one logical node (recursing through LowerRec) and stamps the
  /// node's cardinality estimate onto the resulting operator.
  Result<Lowered> LowerRec(const LogicalNode& node);
  Result<Lowered> LowerRecImpl(const LogicalNode& node);

  /// Leaf access-path selection over a chain of selections ending at a
  /// scan: picks SeqScan / IndexScan / SummaryIndexScan / BaselineIndexScan
  /// by estimated cost and wraps residual predicates.
  Result<Lowered> LowerAccessPath(const LogicalNode& node);

  /// The sketch-tier consultation policy derived from the options.
  SketchPolicy sketch_policy() const {
    return SketchPolicy{options_.use_sketch_statistics,
                        options_.sketch_staleness_threshold};
  }
  /// The statistics tier behind a subtree's estimate: sketch if any
  /// referenced table answers from sketches, else feedback-rebuilt, else
  /// histogram (kNone when no table has statistics at all).
  EstimateSource EstimateSourceFor(const LogicalNode& node) const;

  QueryContext* ctx_;
  OptimizerOptions options_;
  /// Cleared while lowering under a Sort: a Gather's cross-partition row
  /// order is nondeterministic, so parallel scans never appear below an
  /// order-sensitive operator (the "never under O" rule).
  bool allow_parallel_ = true;
};

/// Splits a conjunctive predicate into its AND-ed conjuncts (each cloned).
std::vector<ExprPtr> SplitConjuncts(const Expression* expr);
/// Re-joins conjuncts with AND (nullptr for an empty list).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// Detects an equi-join conjunct "left_col = right_col" where left_col
/// resolves in `left` and right_col in `right` schemas.
struct EquiJoinKeys {
  std::string left_column;
  std::string right_column;
};
std::optional<EquiJoinKeys> MatchEquiJoin(const Expression* expr,
                                          const Schema& left,
                                          const Schema& right);

}  // namespace insight

#endif  // INSIGHTNOTES_OPTIMIZER_OPTIMIZER_H_
