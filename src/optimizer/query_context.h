#ifndef INSIGHTNOTES_OPTIMIZER_QUERY_CONTEXT_H_
#define INSIGHTNOTES_OPTIMIZER_QUERY_CONTEXT_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "engine/execution_context.h"
#include "engine/operators.h"
#include "optimizer/statistics.h"
#include "sindex/baseline_index.h"
#include "sindex/keyword_index.h"
#include "sindex/summary_btree.h"
#include "stats/sketch_registry.h"

namespace insight {

/// How the planner consults the online sketch tier. Built from the
/// OptimizerOptions knobs at planning time so every estimate within one
/// optimization run sees the same policy.
struct SketchPolicy {
  /// Consider sketch-derived estimates at all.
  bool enabled = true;
  /// Churn fraction (ops since ANALYZE / analyzed rows) past which the
  /// histograms are considered stale and the sketch tier takes over.
  double staleness_threshold = 0.10;
};

/// Everything the optimizer knows about one relation: its table, summary
/// manager, registered summary indexes, and collected statistics.
struct RelationInfo {
  Table* table = nullptr;
  SummaryManager* mgr = nullptr;  // Null when the relation is plain.
  std::map<std::string, const SummaryBTree*> summary_indexes;  // By instance.
  std::map<std::string, const BaselineClassifierIndex*> baseline_indexes;
  std::map<std::string, const SnippetKeywordIndex*> keyword_indexes;
  std::optional<TableStats> stats;
  /// Online sketches maintained on the DML path (null when the stats
  /// subsystem never registered this table). Owned by the SketchRegistry.
  TableSketches* sketches = nullptr;
  /// Maintained-on-update label statistics (Section 5.2); created on the
  /// first Analyze() of an annotated relation.
  std::shared_ptr<LiveLabelStatistics> live_stats;
  /// Set by the cardinality-feedback loop when an executed plan's q-error
  /// against this relation crossed the configured threshold; the next
  /// RefreshStats() upgrades to a full Analyze() and clears it.
  bool needs_analyze = false;
  /// Worst q-error ever reported against this relation (diagnostics).
  double worst_qerror = 1;

  const SummaryBTree* SummaryIndexFor(const std::string& instance) const;
  const BaselineClassifierIndex* BaselineIndexFor(
      const std::string& instance) const;
  const SnippetKeywordIndex* KeywordIndexFor(
      const std::string& instance) const;
  /// True when `instance` is linked to this relation — the predicate of
  /// Rules 2, 5-7, 10, 11 ("L is not defined on S").
  bool HasInstance(const std::string& instance) const;

  // ---- Tiered estimation (histograms vs online sketches) ----
  //
  // Each helper answers from the freshest tier: ANALYZE-built histograms
  // while they are current, the online sketches once enough DML churned
  // past them (or when the relation was never analyzed at all). Callers
  // pass the fallback they would have used without any statistics so
  // behavior is unchanged when both tiers are empty.

  /// True when estimates should come from the sketches: the tier is
  /// enabled, sketches exist and carry data, and the histograms are
  /// either absent or stale under `policy.staleness_threshold`.
  bool SketchTierActive(const SketchPolicy& policy) const;

  /// The tier the next estimate will come from (EXPLAIN ANALYZE's `src=`).
  EstimateSource Source(const SketchPolicy& policy) const;

  /// Current row-count estimate (sketch row counter when active, else
  /// histogram snapshot, else the table's live row count).
  double EstimatedRows(const SketchPolicy& policy) const;

  /// Heap-page estimate; the sketch tier scales the analyzed page count
  /// by the row-count drift. `fallback_pages` is used when the relation
  /// was never analyzed.
  double EstimatedPages(const SketchPolicy& policy,
                        double fallback_pages) const;

  /// Fraction of rows carrying summaries (propagation costing).
  double AnnotatedFraction(const SketchPolicy& policy,
                           double fallback) const;

  /// Selectivity of "instance.label <op> constant". The sketch tier keeps
  /// the histogram's matching-row numerator (live-maintained) but divides
  /// by the fresh sketch row count — the stale-denominator fix.
  double LabelSelectivity(const SketchPolicy& policy,
                          const std::string& instance,
                          const std::string& label, CompareOp op,
                          int64_t constant, double fallback) const;

  /// Selectivity of "column <op> constant"; the sketch tier answers
  /// equality from the Count-Min sketch.
  double ColumnSelectivity(const SketchPolicy& policy,
                           const std::string& column, CompareOp op,
                           const Value& constant, double fallback) const;

  /// Distinct label-count values (join estimation); HLL when stale.
  uint64_t LabelDistinctEst(const SketchPolicy& policy,
                            const std::string& instance,
                            const std::string& label) const;

  /// Distinct column values (join estimation); HLL when stale.
  uint64_t ColumnDistinctEst(const SketchPolicy& policy,
                             const std::string& column) const;
};

/// Planner-facing registry of relations and shared storage handles.
class QueryContext {
 public:
  QueryContext(Catalog* catalog, StorageManager* storage, BufferPool* pool)
      : catalog_(catalog),
        storage_(storage),
        pool_(pool),
        exec_ctx_(storage, pool) {}

  /// Registers a relation (summary manager optional).
  Status RegisterRelation(Table* table, SummaryManager* mgr);

  /// Registers a Summary-BTree over (relation, instance).
  Status RegisterSummaryIndex(const std::string& table,
                              const std::string& instance,
                              const SummaryBTree* index);
  Status RegisterBaselineIndex(const std::string& table,
                               const std::string& instance,
                               const BaselineClassifierIndex* index);
  Status RegisterKeywordIndex(const std::string& table,
                              const std::string& instance,
                              const SnippetKeywordIndex* index);

  /// Drops every index registration for (table, instance) — called when
  /// the instance is unlinked so the planner never sees stale pointers.
  Status UnregisterInstanceIndexes(const std::string& table,
                                   const std::string& instance);

  /// Collects statistics for one relation (ANALYZE). The first Analyze of
  /// an annotated relation also attaches LiveLabelStatistics, seeded from
  /// the same summary scan ANALYZE already performs (one pass, not two),
  /// after which the summary-side statistics stay fresh on every
  /// annotation update. Also resets the relation's sketch staleness
  /// clock.
  Status Analyze(const std::string& table);

  /// Folds the live summary statistics into the cached TableStats (no
  /// scan). No-op for relations without stats or live maintenance. When
  /// cardinality feedback has flagged the relation (needs_analyze), this
  /// runs a full Analyze() instead — unless the sketches report the
  /// histograms are still fresh under `policy`, in which case the sketch
  /// tier already covers the misestimate and the rescan is skipped.
  Status RefreshStats(const std::string& table,
                      const SketchPolicy& policy = SketchPolicy{});

  /// Cardinality-feedback entry point: records that an executed access
  /// path over `table` observed `qerror` (max(est,actual)/min(est,actual))
  /// and flags the relation for re-analysis when `qerror >= threshold`
  /// (threshold <= 0 records without flagging). Unknown tables are
  /// ignored.
  void ReportCardinalityFeedback(const std::string& table, double qerror,
                                 double threshold);

  Result<const RelationInfo*> Get(const std::string& table) const;
  Result<RelationInfo*> GetMutable(const std::string& table);

  /// Resolver that looks a raw annotation up across every registered
  /// relation's store (annotation ids are globally unique).
  AnnotationResolver MakeResolver() const;

  Catalog* catalog() const { return catalog_; }
  StorageManager* storage() const { return storage_; }
  BufferPool* pool() const { return pool_; }

  /// Runtime context handed to lowered physical plans. Tracks the same
  /// summary managers as the relation registry, plus the batch-size knob.
  ExecutionContext* exec_context() { return &exec_ctx_; }

 private:
  Catalog* catalog_;
  StorageManager* storage_;
  BufferPool* pool_;
  ExecutionContext exec_ctx_;
  std::map<std::string, RelationInfo> relations_;  // Lower-cased keys.
  /// Guards the cardinality-feedback fields (needs_analyze, worst_qerror):
  /// feedback arrives from concurrent read statements that otherwise only
  /// hold the Database statement gate in shared mode.
  mutable std::mutex feedback_mu_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_OPTIMIZER_QUERY_CONTEXT_H_
