#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/parallel_ops.h"
#include "obs/metrics.h"

namespace insight {

namespace {

// Abstract cost weights: 1.0 per page I/O, 0.01 per tuple of CPU.
constexpr double kTupleCpu = 0.01;
constexpr double kIndexDescent = 3.0;       // B-Tree root-to-leaf pages.
constexpr double kBackwardHitIo = 1.1;      // Heap page per hit.
constexpr double kConventionalHitIo = 2.6;  // Storage row + OID probe + heap.
constexpr double kBaselineHitIo = 3.2;      // Normalized row + OID probe + heap.
constexpr double kDataIndexHitIo = 2.1;     // OID probe + heap page.
constexpr double kPropagationIo = 1.2;      // Summary-storage row per tuple.

// Clears `*flag` for the current scope and restores it on exit (the
// optimizer's parallelism gate while lowering under a Sort).
class ScopedClear {
 public:
  explicit ScopedClear(bool* flag) : flag_(flag), saved_(*flag) {
    *flag = false;
  }
  ~ScopedClear() { *flag_ = saved_; }
  ScopedClear(const ScopedClear&) = delete;
  ScopedClear& operator=(const ScopedClear&) = delete;

 private:
  bool* flag_;
  bool saved_;
};

// True when `label` is one of the instance's actual (leaf) class labels.
// Hierarchical inner labels ("Disease" over "Disease/Viral") are valid in
// predicates but resolve by subtree summation, which neither the
// Summary-BTree nor the per-leaf statistics cover.
bool IsLeafLabel(const RelationInfo& info, const std::string& instance,
                 const std::string& label) {
  if (info.mgr == nullptr) return false;
  auto inst = info.mgr->FindInstance(instance);
  if (!inst.ok()) return false;
  for (const std::string& leaf : (*inst)->labels()) {
    if (EqualsIgnoreCase(leaf, label)) return true;
  }
  return false;
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const Expression* expr) {
  std::vector<ExprPtr> out;
  const auto* logical = dynamic_cast<const LogicalExpr*>(expr);
  if (logical != nullptr && logical->kind() == LogicalExpr::Kind::kAnd) {
    auto left = SplitConjuncts(logical->left());
    auto right = SplitConjuncts(logical->right());
    for (auto& e : left) out.push_back(std::move(e));
    for (auto& e : right) out.push_back(std::move(e));
    return out;
  }
  out.push_back(expr->Clone());
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr out = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = And(std::move(out), std::move(conjuncts[i]));
  }
  return out;
}

std::optional<EquiJoinKeys> MatchEquiJoin(const Expression* expr,
                                          const Schema& left,
                                          const Schema& right) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(expr);
  if (cmp == nullptr || cmp->op() != CompareOp::kEq) return std::nullopt;
  const auto* a = dynamic_cast<const ColumnExpr*>(cmp->left());
  const auto* b = dynamic_cast<const ColumnExpr*>(cmp->right());
  if (a == nullptr || b == nullptr) return std::nullopt;
  if (left.IndexOf(a->name()).ok() && right.IndexOf(b->name()).ok()) {
    return EquiJoinKeys{a->name(), b->name()};
  }
  if (left.IndexOf(b->name()).ok() && right.IndexOf(a->name()).ok()) {
    return EquiJoinKeys{b->name(), a->name()};
  }
  return std::nullopt;
}

// ---------- Schema resolution ----------

Result<Schema> Optimizer::OutputSchema(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalKind::kScan: {
      INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                               ctx_->Get(node.table));
      if (node.alias.empty()) return info->table->schema();
      Schema renamed;
      for (const Column& col : info->table->schema().columns()) {
        renamed.AddColumn({node.alias + "." + col.name, col.type}).ok();
      }
      return renamed;
    }
    case LogicalKind::kSelect:
    case LogicalKind::kSummarySelect:
    case LogicalKind::kSummaryFilter:
    case LogicalKind::kSort:
    case LogicalKind::kDistinct:
    case LogicalKind::kLimit:
      return OutputSchema(*node.children[0]);
    case LogicalKind::kProject: {
      INSIGHT_ASSIGN_OR_RETURN(Schema child,
                               OutputSchema(*node.children[0]));
      std::vector<size_t> indices;
      for (const std::string& name : node.columns) {
        INSIGHT_ASSIGN_OR_RETURN(size_t idx, child.IndexOf(name));
        indices.push_back(idx);
      }
      return child.Project(indices);
    }
    case LogicalKind::kJoin:
    case LogicalKind::kSummaryJoin: {
      INSIGHT_ASSIGN_OR_RETURN(Schema left, OutputSchema(*node.children[0]));
      INSIGHT_ASSIGN_OR_RETURN(Schema right,
                               OutputSchema(*node.children[1]));
      return Schema::Concat(left, right);
    }
    case LogicalKind::kAggregate: {
      INSIGHT_ASSIGN_OR_RETURN(Schema child,
                               OutputSchema(*node.children[0]));
      Schema out;
      for (const std::string& name : node.group_columns) {
        INSIGHT_ASSIGN_OR_RETURN(size_t idx, child.IndexOf(name));
        out.AddColumn(child.column(idx)).ok();
      }
      for (const AggregateSpec& agg : node.aggregates) {
        out.AddColumn({agg.output_name,
                       agg.kind == AggregateSpec::Kind::kAvg
                           ? ValueType::kDouble
                           : ValueType::kInt64})
            .ok();
      }
      return out;
    }
  }
  return Status::Internal("unreachable");
}

// ---------- Rewrite rules ----------

// True when every instance is linked to some table in `subtree`;
// *any_linked reports whether at least one is.
Result<bool> Optimizer::InstancesOnlyOn(
    const std::vector<std::string>& instances, const LogicalNode& subtree,
    bool* any_linked) {
  std::vector<std::string> tables;
  subtree.CollectTables(&tables);
  bool all = true;
  bool any = false;
  for (const std::string& instance : instances) {
    bool found = false;
    for (const std::string& table : tables) {
      INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info, ctx_->Get(table));
      if (info->HasInstance(instance)) {
        found = true;
        break;
      }
    }
    all = all && found;
    any = any || found;
  }
  if (any_linked != nullptr) *any_linked = any;
  return all && !instances.empty();
}

Result<bool> Optimizer::ColumnsResolve(
    const std::vector<std::string>& columns, const LogicalNode& subtree) {
  INSIGHT_ASSIGN_OR_RETURN(Schema schema, OutputSchema(subtree));
  for (const std::string& column : columns) {
    if (!schema.IndexOf(column).ok()) return false;
  }
  return true;
}

Result<bool> Optimizer::PushDownOnce(LogicalNode* node) {
  bool changed = false;

  // Recurse first so inner opportunities surface before outer ones.
  for (LogicalPtr& child : node->children) {
    INSIGHT_ASSIGN_OR_RETURN(bool c, PushDownOnce(child.get()));
    changed = changed || c;
  }

  // Rule 1 canonicalization: sigma commutes below S so data predicates sit
  // closest to the scan (either order is equivalent; this one exposes
  // data-index access paths uniformly).
  if (node->kind == LogicalKind::kSummarySelect &&
      node->children[0]->kind == LogicalKind::kSelect) {
    // Already canonical (S above sigma): nothing to do.
  } else if (node->kind == LogicalKind::kSelect &&
             node->children[0]->kind == LogicalKind::kSummarySelect) {
    std::swap(node->kind, node->children[0]->kind);
    std::swap(node->predicate, node->children[0]->predicate);
    changed = true;
  }

  // Standard sigma pushdown + Rule 9 (sigma below J) + Rule 2/10
  // (S below joins).
  const bool is_select = node->kind == LogicalKind::kSelect;
  const bool is_ssel = node->kind == LogicalKind::kSummarySelect;
  if ((is_select || is_ssel) && node->children.size() == 1 &&
      (node->children[0]->kind == LogicalKind::kJoin ||
       node->children[0]->kind == LogicalKind::kSummaryJoin)) {
    LogicalNode* join = node->children[0].get();
    std::vector<ExprPtr> conjuncts = SplitConjuncts(node->predicate.get());
    std::vector<ExprPtr> kept;
    for (ExprPtr& conjunct : conjuncts) {
      int side = -1;  // 0 = left, 1 = right.
      if (is_select) {
        // sigma: pushable when its columns resolve on one side (standard
        // pushdown; Rule 9 for J).
        std::vector<std::string> columns;
        conjunct->CollectColumns(&columns);
        // Predicates that also touch summaries are S-shaped; treat below.
        if (!conjunct->IsSummaryBased() && !columns.empty()) {
          INSIGHT_ASSIGN_OR_RETURN(bool on_left,
                                   ColumnsResolve(columns,
                                                  *join->children[0]));
          INSIGHT_ASSIGN_OR_RETURN(bool on_right,
                                   ColumnsResolve(columns,
                                                  *join->children[1]));
          if (on_left && !on_right) side = 0;
          if (on_right && !on_left) side = 1;
        }
      } else {
        // S: pushable iff its instances live on exactly one side
        // (Rule 2 for data joins, Rule 10 for J).
        std::vector<std::string> instances;
        conjunct->CollectInstances(&instances);
        std::vector<std::string> columns;
        conjunct->CollectColumns(&columns);
        if (!instances.empty()) {
          bool left_any = false;
          bool right_any = false;
          INSIGHT_ASSIGN_OR_RETURN(
              bool left_all,
              InstancesOnlyOn(instances, *join->children[0], &left_any));
          INSIGHT_ASSIGN_OR_RETURN(
              bool right_all,
              InstancesOnlyOn(instances, *join->children[1], &right_any));
          bool cols_left = true;
          bool cols_right = true;
          if (!columns.empty()) {
            INSIGHT_ASSIGN_OR_RETURN(cols_left,
                                     ColumnsResolve(columns,
                                                    *join->children[0]));
            INSIGHT_ASSIGN_OR_RETURN(cols_right,
                                     ColumnsResolve(columns,
                                                    *join->children[1]));
          }
          if (left_all && !right_any && cols_left) side = 0;
          if (right_all && !left_any && cols_right) side = 1;
        }
      }
      if (side < 0) {
        kept.push_back(std::move(conjunct));
        continue;
      }
      LogicalPtr& target = join->children[static_cast<size_t>(side)];
      LogicalPtr wrapped =
          is_select ? LSelect(std::move(target), std::move(conjunct))
                    : LSummarySelect(std::move(target), std::move(conjunct));
      target = std::move(wrapped);
      changed = true;
    }
    if (kept.empty()) {
      // Node dissolves: splice the join up.
      LogicalPtr join_ptr = std::move(node->children[0]);
      *node = std::move(*join_ptr);
      return true;
    }
    node->predicate = CombineConjuncts(std::move(kept));
  }

  // Rules 7 + 8: push the summary filter F below a join.
  if (node->kind == LogicalKind::kSummaryFilter &&
      node->children.size() == 1 &&
      (node->children[0]->kind == LogicalKind::kJoin ||
       node->children[0]->kind == LogicalKind::kSummaryJoin)) {
    const ObjectPredicate& pred = node->object_predicate;
    LogicalNode* join = node->children[0].get();
    if (pred.structural()) {
      bool pushed = false;
      if (pred.instance_name.has_value()) {
        std::vector<std::string> instances = {*pred.instance_name};
        bool left_any = false;
        bool right_any = false;
        INSIGHT_RETURN_NOT_OK(
            InstancesOnlyOn(instances, *join->children[0], &left_any)
                .status());
        INSIGHT_RETURN_NOT_OK(
            InstancesOnlyOn(instances, *join->children[1], &right_any)
                .status());
        if (left_any && !right_any) {
          // Rule 7: instance only on the left side.
          join->children[0] =
              LSummaryFilter(std::move(join->children[0]), pred);
          pushed = true;
        } else if (right_any && !left_any) {
          join->children[1] =
              LSummaryFilter(std::move(join->children[1]), pred);
          pushed = true;
        } else {
          // Rule 8: structural predicates push to both sides.
          join->children[0] =
              LSummaryFilter(std::move(join->children[0]), pred);
          join->children[1] =
              LSummaryFilter(std::move(join->children[1]), pred);
          pushed = true;
        }
      } else {
        // Type-only structural predicate: Rule 8, both sides.
        join->children[0] =
            LSummaryFilter(std::move(join->children[0]), pred);
        join->children[1] =
            LSummaryFilter(std::move(join->children[1]), pred);
        pushed = true;
      }
      if (pushed) {
        LogicalPtr join_ptr = std::move(node->children[0]);
        *node = std::move(*join_ptr);
        return true;
      }
    }
  }

  // Rule 11: switch the order of a data join and a summary join.
  //   Join_c(T, J_p(R, S)) == J_p(Join_c(T, R), S)
  // (and the mirrored Join_c(J_p(R, S), T)), iff p's instances are not on
  // T and c does not involve S's attributes.
  if (node->kind == LogicalKind::kJoin) {
    for (int sj_side = 0; sj_side < 2; ++sj_side) {
      LogicalNode* sjoin = node->children[static_cast<size_t>(sj_side)].get();
      if (sjoin->kind != LogicalKind::kSummaryJoin) continue;
      LogicalNode* t_node =
          node->children[static_cast<size_t>(1 - sj_side)].get();
      // Legality: c's columns resolve without S.
      std::vector<std::string> c_columns;
      node->predicate->CollectColumns(&c_columns);
      // Build a temporary R+T "schema view" by checking resolution against
      // R and T subtrees.
      bool c_ok = true;
      for (const std::string& column : c_columns) {
        INSIGHT_ASSIGN_OR_RETURN(bool in_r,
                                 ColumnsResolve({column},
                                                *sjoin->children[0]));
        INSIGHT_ASSIGN_OR_RETURN(bool in_t, ColumnsResolve({column}, *t_node));
        if (!in_r && !in_t) {
          c_ok = false;
          break;
        }
      }
      if (!c_ok) continue;
      // Legality: p's instances not linked on T.
      std::vector<std::string> p_instances;
      sjoin->summary_join_predicate.CollectInstances(&p_instances);
      bool t_any = false;
      INSIGHT_RETURN_NOT_OK(
          InstancesOnlyOn(p_instances, *t_node, &t_any).status());
      if (t_any) continue;
      // Rewrite: inner data join of (R, T), outer summary join with S.
      LogicalPtr sjoin_ptr =
          std::move(node->children[static_cast<size_t>(sj_side)]);
      LogicalPtr t_ptr =
          std::move(node->children[static_cast<size_t>(1 - sj_side)]);
      LogicalPtr r_ptr = std::move(sjoin_ptr->children[0]);
      LogicalPtr s_ptr = std::move(sjoin_ptr->children[1]);
      LogicalPtr inner_join =
          LJoin(std::move(r_ptr), std::move(t_ptr),
                std::move(node->predicate));
      LogicalPtr new_top =
          LSummaryJoin(std::move(inner_join), std::move(s_ptr),
                       sjoin_ptr->summary_join_predicate.Clone());
      *node = std::move(*new_top);
      return true;
    }
  }

  return changed;
}

Result<LogicalPtr> Optimizer::Rewrite(LogicalPtr plan) {
  if (!options_.enable_rewrite_rules) return plan;
  for (int pass = 0; pass < 20; ++pass) {
    INSIGHT_ASSIGN_OR_RETURN(bool changed, PushDownOnce(plan.get()));
    if (!changed) break;
  }
  return plan;
}

// ---------- Estimation ----------

namespace {

double FallbackSelectivity(const Expression* conjunct) {
  if (dynamic_cast<const LikeExpr*>(conjunct) != nullptr) return 0.1;
  return 1.0 / 3;
}

}  // namespace

Result<PlanEstimate> Optimizer::Estimate(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalKind::kScan: {
      INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                               ctx_->Get(node.table));
      const SketchPolicy policy = sketch_policy();
      PlanEstimate est;
      est.rows = info->EstimatedRows(policy);
      const double pages =
          info->EstimatedPages(policy, est.rows * kTupleCpu);
      est.cost = std::max(1.0, pages) + est.rows * kTupleCpu;
      if (node.propagate_summaries && info->mgr != nullptr) {
        est.cost +=
            est.rows * kPropagationIo * info->AnnotatedFraction(policy, 1.0);
      }
      return est;
    }
    case LogicalKind::kSelect:
    case LogicalKind::kSummarySelect: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      // Selectivity: product over conjuncts, consulting the statistics of
      // the first scan table that owns the referenced column/instance.
      std::vector<std::string> tables;
      node.children[0]->CollectTables(&tables);
      const SketchPolicy policy = sketch_policy();
      double selectivity = 1.0;
      for (const ExprPtr& conjunct :
           SplitConjuncts(node.predicate.get())) {
        double s = FallbackSelectivity(conjunct.get());
        auto indexable = MatchIndexablePredicate(conjunct.get());
        if (indexable.has_value()) {
          for (const std::string& table : tables) {
            INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                                     ctx_->Get(table));
            if ((info->stats.has_value() ||
                 info->SketchTierActive(policy)) &&
                info->HasInstance(indexable->instance) &&
                IsLeafLabel(*info, indexable->instance, indexable->label)) {
              s = info->LabelSelectivity(policy, indexable->instance,
                                         indexable->label, indexable->op,
                                         indexable->constant, s);
              break;
            }
          }
        } else if (const auto* cmp =
                       dynamic_cast<const CompareExpr*>(conjunct.get())) {
          const auto* col = dynamic_cast<const ColumnExpr*>(cmp->left());
          const auto* lit = dynamic_cast<const LiteralExpr*>(cmp->right());
          if (col != nullptr && lit != nullptr) {
            for (const std::string& table : tables) {
              INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                                       ctx_->Get(table));
              if ((info->stats.has_value() ||
                   info->SketchTierActive(policy)) &&
                  info->table->schema().IndexOf(col->name()).ok()) {
                s = info->ColumnSelectivity(policy, col->name(), cmp->op(),
                                            lit->value(), s);
                break;
              }
            }
          }
        }
        selectivity *= s;
      }
      PlanEstimate est;
      est.rows = child.rows * selectivity;
      est.cost = child.cost + child.rows * kTupleCpu;
      return est;
    }
    case LogicalKind::kSummaryFilter:
    case LogicalKind::kDistinct: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      child.cost += child.rows * kTupleCpu;
      return child;
    }
    case LogicalKind::kProject: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      child.cost += child.rows * kTupleCpu;
      return child;
    }
    case LogicalKind::kJoin:
    case LogicalKind::kSummaryJoin: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate left,
                               Estimate(*node.children[0]));
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate right,
                               Estimate(*node.children[1]));
      PlanEstimate est;
      double denominator = 3.0;
      if (node.kind == LogicalKind::kJoin) {
        INSIGHT_ASSIGN_OR_RETURN(Schema ls, OutputSchema(*node.children[0]));
        INSIGHT_ASSIGN_OR_RETURN(Schema rs, OutputSchema(*node.children[1]));
        for (const ExprPtr& conjunct :
             SplitConjuncts(node.predicate.get())) {
          auto keys = MatchEquiJoin(conjunct.get(), ls, rs);
          if (!keys.has_value()) continue;
          // NDV from whichever side's base tables know the column.
          const SketchPolicy policy = sketch_policy();
          uint64_t ndv = 1;
          for (size_t side = 0; side < 2; ++side) {
            std::vector<std::string> tables;
            node.children[side]->CollectTables(&tables);
            const std::string& column =
                side == 0 ? keys->left_column : keys->right_column;
            for (const std::string& table : tables) {
              INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                                       ctx_->Get(table));
              if (info->table->schema().IndexOf(column).ok()) {
                ndv = std::max(ndv, info->ColumnDistinctEst(policy, column));
              }
            }
          }
          denominator = std::max(denominator, static_cast<double>(ndv));
        }
      } else if (!node.summary_join_predicate.merged_form()) {
        // Equality of classifier label counts: ndv of the count fields.
        std::vector<std::string> instances;
        node.summary_join_predicate.CollectInstances(&instances);
        // Coarse: use fallback 3.0 unless stats say otherwise; refined by
        // per-side label ndv when available.
        for (size_t side = 0; side < 2; ++side) {
          std::vector<std::string> tables;
          node.children[side]->CollectTables(&tables);
          for (const std::string& table : tables) {
            INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                                     ctx_->Get(table));
            if (!info->stats.has_value()) continue;
            for (const std::string& instance : instances) {
              for (const auto& [label, stats] :
                   info->stats->instances.count(ToLower(instance)) > 0
                       ? info->stats->instances.at(ToLower(instance)).labels
                       : std::map<std::string, LabelStats>{}) {
                denominator = std::max(
                    denominator, static_cast<double>(stats.num_distinct));
              }
            }
          }
        }
      }
      est.rows = left.rows * right.rows / denominator;
      est.cost = left.cost + right.cost +
                 left.rows * right.rows * kTupleCpu;
      return est;
    }
    case LogicalKind::kSort: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      const double n = std::max(2.0, child.rows);
      child.cost += n * std::log2(n) * kTupleCpu;
      if (options_.sort_mode == SortOp::Mode::kExternal) {
        child.cost += 2.0 * n * kTupleCpu * 10;  // Spill + merge I/O.
      }
      return child;
    }
    case LogicalKind::kAggregate: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      PlanEstimate est;
      est.rows = std::max(1.0, child.rows / 10);
      est.cost = child.cost + child.rows * 2 * kTupleCpu;
      return est;
    }
    case LogicalKind::kLimit: {
      INSIGHT_ASSIGN_OR_RETURN(PlanEstimate child,
                               Estimate(*node.children[0]));
      child.rows = std::min(child.rows, static_cast<double>(node.limit));
      return child;
    }
  }
  return Status::Internal("unreachable");
}

// ---------- Lowering ----------

namespace {

// "column <op> literal" data conjunct, for index-scan candidacy.
struct ColumnPredicate {
  std::string column;
  CompareOp op;
  Value constant;
};

std::optional<ColumnPredicate> MatchColumnPredicate(const Expression* expr) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(expr);
  if (cmp == nullptr || cmp->op() == CompareOp::kNe) return std::nullopt;
  const auto* col = dynamic_cast<const ColumnExpr*>(cmp->left());
  const auto* lit = dynamic_cast<const LiteralExpr*>(cmp->right());
  CompareOp op = cmp->op();
  if (col == nullptr || lit == nullptr) {
    col = dynamic_cast<const ColumnExpr*>(cmp->right());
    lit = dynamic_cast<const LiteralExpr*>(cmp->left());
    switch (op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  if (col == nullptr || lit == nullptr) return std::nullopt;
  return ColumnPredicate{col->name(), op, lit->value()};
}

ClassifierProbe ProbeFor(const IndexablePredicate& pred) {
  switch (pred.op) {
    case CompareOp::kEq:
      return ClassifierProbe::Equal(pred.label, pred.constant);
    case CompareOp::kLt:
      return ClassifierProbe::LessThan(pred.label, pred.constant);
    case CompareOp::kLe: {
      ClassifierProbe probe;
      probe.label = pred.label;
      probe.upper = pred.constant;
      return probe;
    }
    case CompareOp::kGt:
      return ClassifierProbe::GreaterThan(pred.label, pred.constant);
    case CompareOp::kGe: {
      ClassifierProbe probe;
      probe.label = pred.label;
      probe.lower = pred.constant;
      return probe;
    }
    default:
      break;
  }
  ClassifierProbe probe;
  probe.label = pred.label;
  return probe;
}

ZoneOp ZoneOpFor(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return ZoneOp::kLt;
    case CompareOp::kLe:
      return ZoneOp::kLe;
    case CompareOp::kGt:
      return ZoneOp::kGt;
    case CompareOp::kGe:
      return ZoneOp::kGe;
    default:
      return ZoneOp::kEq;
  }
}

// Collects every conjunct the page zone maps can refute: column-vs-literal
// data conjuncts (kNe never prunes; NULL literals stay with the row
// filter), plus labelValue conjuncts gated on classifier instances so a
// skipped page cannot mask the type error a non-classifier probe raises.
ZonePredicate BuildZonePredicate(const RelationInfo& info,
                                 const std::vector<ExprPtr>& data_conjuncts,
                                 const std::vector<ExprPtr>& summary_conjuncts) {
  ZonePredicate pred;
  const Schema& schema = info.table->schema();
  for (const ExprPtr& conjunct : data_conjuncts) {
    auto cp = MatchColumnPredicate(conjunct.get());
    if (!cp.has_value() || cp->constant.is_null()) continue;
    auto idx = schema.IndexOf(cp->column);
    if (!idx.ok()) continue;
    ZoneProbe probe;
    probe.kind = ZoneProbe::Kind::kColumn;
    probe.column = *idx;
    probe.op = ZoneOpFor(cp->op);
    probe.constant = cp->constant;
    pred.probes.push_back(std::move(probe));
  }
  if (info.mgr != nullptr) {
    for (const ExprPtr& conjunct : summary_conjuncts) {
      auto ip = MatchIndexablePredicate(conjunct.get());
      if (!ip.has_value()) continue;
      auto inst = info.mgr->FindInstance(ip->instance);
      if (!inst.ok() || (*inst)->type() != SummaryType::kClassifier) continue;
      ZoneProbe probe;
      probe.kind = ZoneProbe::Kind::kLabel;
      probe.label_key = ToLower((*inst)->name()) + "." + ToLower(ip->label);
      probe.op = ZoneOpFor(ip->op);
      probe.constant = Value::Int(ip->constant);
      pred.probes.push_back(std::move(probe));
    }
  }
  return pred;
}

}  // namespace

Result<Optimizer::Lowered> Optimizer::LowerAccessPath(
    const LogicalNode& node) {
  // Walk the selection chain down to the scan.
  std::vector<ExprPtr> data_conjuncts;
  std::vector<ExprPtr> summary_conjuncts;
  const LogicalNode* cur = &node;
  while (cur->kind == LogicalKind::kSelect ||
         cur->kind == LogicalKind::kSummarySelect) {
    for (ExprPtr& conjunct : SplitConjuncts(cur->predicate.get())) {
      if (conjunct->IsSummaryBased()) {
        summary_conjuncts.push_back(std::move(conjunct));
      } else {
        data_conjuncts.push_back(std::move(conjunct));
      }
    }
    cur = cur->children[0].get();
  }
  INSIGHT_CHECK(cur->kind == LogicalKind::kScan);
  INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info, ctx_->Get(cur->table));
  const bool propagate = cur->propagate_summaries && info->mgr != nullptr;
  const SketchPolicy policy = sketch_policy();
  const double table_rows = info->EstimatedRows(policy);
  const double table_pages =
      info->EstimatedPages(policy, table_rows * kTupleCpu);

  struct Candidate {
    enum class Kind {
      kSeq,
      kDataIndex,
      kSummaryIndex,
      kBaselineIndex,
      kKeywordIndex,
    };
    Kind kind;
    double cost;
    size_t conjunct;  // Consumed conjunct position (in its list).
    std::optional<PhysOrder> order;
  };
  // Zone-map pruning cheapens the sequential path: scale its cost by the
  // fraction of pages the current bounds would actually let us read.
  ZonePredicate zone_pred =
      BuildZonePredicate(*info, data_conjuncts, summary_conjuncts);
  double seq_keep_fraction = 1.0;
  if (!zone_pred.empty() && info->table->zone_maps() != nullptr) {
    seq_keep_fraction -= info->table->zone_maps()->EstimateSkipFraction(
        zone_pred, static_cast<size_t>(info->table->heap_pages()));
  }

  std::vector<Candidate> candidates;
  candidates.push_back(
      Candidate{Candidate::Kind::kSeq,
                seq_keep_fraction *
                    (table_pages + table_rows * kTupleCpu +
                     (propagate ? table_rows * kPropagationIo : 0.0)),
                0, std::nullopt});

  if (options_.use_data_indexes) {
    for (size_t i = 0; i < data_conjuncts.size(); ++i) {
      auto pred = MatchColumnPredicate(data_conjuncts[i].get());
      if (!pred.has_value()) continue;
      if (info->table->GetColumnIndex(pred->column) == nullptr) continue;
      const double selectivity = info->ColumnSelectivity(
          policy, pred->column, pred->op, pred->constant, 0.1);
      const double hits = table_rows * selectivity;
      candidates.push_back(Candidate{
          Candidate::Kind::kDataIndex,
          kIndexDescent + hits * kDataIndexHitIo +
              (propagate ? hits * kPropagationIo : 0.0),
          i, std::nullopt});
    }
  }
  for (size_t i = 0; i < summary_conjuncts.size(); ++i) {
    auto pred = MatchIndexablePredicate(summary_conjuncts[i].get());
    if (!pred.has_value()) continue;
    if (!IsLeafLabel(*info, pred->instance, pred->label)) continue;
    const double selectivity = info->LabelSelectivity(
        policy, pred->instance, pred->label, pred->op, pred->constant, 0.05);
    const double hits = table_rows * selectivity;
    const SummaryBTree* sbt =
        options_.use_summary_indexes ? info->SummaryIndexFor(pred->instance)
                                     : nullptr;
    if (sbt != nullptr) {
      const double hit_io =
          sbt->pointer_mode() == SummaryBTree::PointerMode::kBackward
              ? kBackwardHitIo
              : kConventionalHitIo;
      candidates.push_back(Candidate{
          Candidate::Kind::kSummaryIndex,
          kIndexDescent + hits * hit_io +
              (propagate ? hits * kPropagationIo : 0.0),
          i, PhysOrder{pred->instance, pred->label}});
    }
    const BaselineClassifierIndex* baseline =
        options_.use_baseline_indexes ? info->BaselineIndexFor(pred->instance)
                                      : nullptr;
    if (baseline != nullptr) {
      candidates.push_back(Candidate{
          Candidate::Kind::kBaselineIndex,
          kIndexDescent + hits * kBaselineHitIo +
              (propagate ? hits * kPropagationIo : 0.0),
          i, PhysOrder{pred->instance, pred->label}});
    }
  }

  if (options_.use_summary_indexes) {
    // Keyword-index candidates for bare containsSingle/containsUnion
    // conjuncts over an inverted-indexed Snippet instance.
    for (size_t i = 0; i < summary_conjuncts.size(); ++i) {
      const auto* func =
          dynamic_cast<const SummaryFuncExpr*>(summary_conjuncts[i].get());
      if (func == nullptr ||
          (func->kind() != SummaryFuncKind::kContainsSingle &&
           func->kind() != SummaryFuncKind::kContainsUnion)) {
        continue;
      }
      if (info->KeywordIndexFor(func->instance()) == nullptr) continue;
      const double hits = table_rows * 0.02;  // Keyword-match heuristic.
      candidates.push_back(Candidate{
          Candidate::Kind::kKeywordIndex,
          kIndexDescent * static_cast<double>(func->keywords().size()) +
              hits * kDataIndexHitIo +
              (propagate ? hits * kPropagationIo : 0.0),
          i, std::nullopt});
    }
  }

  const Candidate* best = &candidates[0];
  for (const Candidate& candidate : candidates) {
    if (candidate.cost < best->cost) best = &candidate;
  }

  OpPtr op;
  std::optional<PhysOrder> order = best->order;
  switch (best->kind) {
    case Candidate::Kind::kSeq: {
      ExecutionContext* exec = ctx_->exec_context();
      const size_t workers = exec != nullptr ? exec->parallelism() : 1;
      if (allow_parallel_ && workers > 1 &&
          table_rows >= options_.parallel_row_threshold) {
        // Morsel-parallel scan: N partitions share one morsel dispenser,
        // residual selections are cloned into every partition so the
        // filtering runs on the workers, and the Gather merges the
        // partition streams at its barrier.
        auto morsels = std::make_shared<MorselSource>(
            info->table->heap_pages(), options_.morsel_pages);
        std::vector<OpPtr> partitions;
        partitions.reserve(workers);
        for (size_t w = 0; w < workers; ++w) {
          auto scan = std::make_unique<ParallelScanOp>(exec, info->table,
                                                       propagate, morsels);
          scan->SetZonePredicate(zone_pred);  // Copy: one per partition.
          OpPtr part = std::move(scan);
          if (!data_conjuncts.empty()) {
            std::vector<ExprPtr> cloned;
            cloned.reserve(data_conjuncts.size());
            for (const ExprPtr& conjunct : data_conjuncts) {
              cloned.push_back(conjunct->Clone());
            }
            part = std::make_unique<SelectOp>(
                std::move(part), CombineConjuncts(std::move(cloned)));
          }
          if (!summary_conjuncts.empty()) {
            std::vector<ExprPtr> cloned;
            cloned.reserve(summary_conjuncts.size());
            for (const ExprPtr& conjunct : summary_conjuncts) {
              cloned.push_back(conjunct->Clone());
            }
            part = std::make_unique<SummarySelectOp>(
                std::move(part), CombineConjuncts(std::move(cloned)));
          }
          partitions.push_back(
              std::make_unique<ExchangeOp>(std::move(part), w));
        }
        op = std::make_unique<GatherOp>(std::move(partitions), morsels);
        if (!cur->alias.empty()) {
          op = std::make_unique<RenameOp>(std::move(op), cur->alias);
        }
        // Cross-partition order is nondeterministic: no interesting order.
        return Lowered{std::move(op), std::nullopt};
      }
      auto scan = std::make_unique<SeqScanOp>(exec, info->table, propagate);
      scan->SetZonePredicate(std::move(zone_pred));
      op = std::move(scan);
      break;
    }
    case Candidate::Kind::kDataIndex: {
      auto pred = *MatchColumnPredicate(data_conjuncts[best->conjunct].get());
      std::optional<Value> lower;
      std::optional<Value> upper;
      bool lower_inc = true;
      bool upper_inc = true;
      switch (pred.op) {
        case CompareOp::kEq:
          lower = pred.constant;
          upper = pred.constant;
          break;
        case CompareOp::kLt:
          upper = pred.constant;
          upper_inc = false;
          break;
        case CompareOp::kLe:
          upper = pred.constant;
          break;
        case CompareOp::kGt:
          lower = pred.constant;
          lower_inc = false;
          break;
        case CompareOp::kGe:
          lower = pred.constant;
          break;
        default:
          break;
      }
      op = std::make_unique<IndexScanOp>(ctx_->exec_context(), info->table,
                                         pred.column, lower, lower_inc, upper,
                                         upper_inc, propagate);
      data_conjuncts.erase(data_conjuncts.begin() +
                           static_cast<long>(best->conjunct));
      break;
    }
    case Candidate::Kind::kSummaryIndex: {
      auto pred =
          *MatchIndexablePredicate(summary_conjuncts[best->conjunct].get());
      op = std::make_unique<SummaryIndexScanOp>(
          ctx_->exec_context(), info->SummaryIndexFor(pred.instance),
          ProbeFor(pred), info->table->name(), propagate);
      summary_conjuncts.erase(summary_conjuncts.begin() +
                              static_cast<long>(best->conjunct));
      break;
    }
    case Candidate::Kind::kBaselineIndex: {
      auto pred =
          *MatchIndexablePredicate(summary_conjuncts[best->conjunct].get());
      op = std::make_unique<BaselineIndexScanOp>(
          info->BaselineIndexFor(pred.instance), ProbeFor(pred), info->mgr,
          propagate, /*reconstruct_summaries=*/false);
      summary_conjuncts.erase(summary_conjuncts.begin() +
                              static_cast<long>(best->conjunct));
      break;
    }
    case Candidate::Kind::kKeywordIndex: {
      const auto* func = dynamic_cast<const SummaryFuncExpr*>(
          summary_conjuncts[best->conjunct].get());
      const bool exact = func->kind() == SummaryFuncKind::kContainsUnion;
      op = std::make_unique<KeywordIndexScanOp>(
          ctx_->exec_context(), info->KeywordIndexFor(func->instance()),
          func->keywords(), info->table->name(), propagate || !exact);
      if (exact) {
        // containsUnion == posting-list intersection: no residual.
        summary_conjuncts.erase(summary_conjuncts.begin() +
                                static_cast<long>(best->conjunct));
      }
      // containsSingle keeps its conjunct as a residual re-check (the
      // scan over-approximates), so it stays in summary_conjuncts.
      break;
    }
  }

  // Residuals: data selection first (Rule 1 lets us order freely), then
  // the summary selection. Both preserve the interesting order (Rules
  // 3-4).
  if (!data_conjuncts.empty()) {
    op = std::make_unique<SelectOp>(std::move(op),
                                    CombineConjuncts(std::move(data_conjuncts)));
  }
  if (!summary_conjuncts.empty()) {
    op = std::make_unique<SummarySelectOp>(
        std::move(op), CombineConjuncts(std::move(summary_conjuncts)));
  }
  if (!cur->alias.empty()) {
    op = std::make_unique<RenameOp>(std::move(op), cur->alias);
  }
  // The access-path root is where table statistics turned into an
  // estimate; misestimates observed at runtime feed back to this table.
  op->set_feedback_table(cur->table);
  return Lowered{std::move(op), order};
}

EstimateSource Optimizer::EstimateSourceFor(const LogicalNode& node) const {
  std::vector<std::string> tables;
  node.CollectTables(&tables);
  const SketchPolicy policy = sketch_policy();
  EstimateSource source = EstimateSource::kNone;
  for (const std::string& table : tables) {
    Result<const RelationInfo*> info = ctx_->Get(table);
    if (!info.ok()) continue;
    switch ((*info)->Source(policy)) {
      case EstimateSource::kSketch:
        return EstimateSource::kSketch;  // Any sketch answer dominates.
      case EstimateSource::kFeedback:
        source = EstimateSource::kFeedback;
        break;
      case EstimateSource::kHistogram:
        if (source == EstimateSource::kNone) {
          source = EstimateSource::kHistogram;
        }
        break;
      case EstimateSource::kNone:
        break;
    }
  }
  return source;
}

Result<Optimizer::Lowered> Optimizer::LowerRec(const LogicalNode& node) {
  INSIGHT_ASSIGN_OR_RETURN(Lowered out, LowerRecImpl(node));
  // Stamp the plan-time cardinality estimate onto the physical operator;
  // EXPLAIN ANALYZE diffs it against the runtime row count (q-error) and
  // the feedback loop judges the statistics by it. An estimation failure
  // only leaves the operator unstamped — it never fails the lowering.
  if (out.op != nullptr && !out.op->has_estimate()) {
    Result<PlanEstimate> est = Estimate(node);
    if (est.ok()) {
      out.op->set_estimated_rows(est->rows);
      const EstimateSource source = EstimateSourceFor(node);
      out.op->set_estimate_source(source);
      if (source == EstimateSource::kSketch) {
        EngineMetrics::Get().stats_sketch_estimates->Add(1);
      } else if (source != EstimateSource::kNone) {
        EngineMetrics::Get().stats_histogram_estimates->Add(1);
      }
    }
  }
  return out;
}

Result<Optimizer::Lowered> Optimizer::LowerRecImpl(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalKind::kScan:
    case LogicalKind::kSelect:
    case LogicalKind::kSummarySelect: {
      // Selection chains over a scan go through access-path selection;
      // anything else lowers generically.
      const LogicalNode* cur = &node;
      while (cur->kind == LogicalKind::kSelect ||
             cur->kind == LogicalKind::kSummarySelect) {
        cur = cur->children[0].get();
      }
      if (cur->kind == LogicalKind::kScan) return LowerAccessPath(node);
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      Lowered out;
      out.order = child.order;  // Rules 3-4: selections preserve order.
      if (node.kind == LogicalKind::kSelect) {
        out.op = std::make_unique<SelectOp>(std::move(child.op),
                                            node.predicate->Clone());
      } else {
        out.op = std::make_unique<SummarySelectOp>(std::move(child.op),
                                                   node.predicate->Clone());
      }
      return out;
    }
    case LogicalKind::kSummaryFilter: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      Lowered out;
      out.order = child.order;
      out.op = std::make_unique<SummaryFilterOp>(std::move(child.op),
                                                 node.object_predicate);
      return out;
    }
    case LogicalKind::kProject: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      Lowered out;
      // Projection may eliminate annotation effects, perturbing label
      // counts: conservatively drop the interesting order.
      out.op = std::make_unique<ProjectOp>(std::move(child.op), node.columns,
                                           ctx_->MakeResolver());
      return out;
    }
    case LogicalKind::kJoin: {
      INSIGHT_ASSIGN_OR_RETURN(Schema left_schema,
                               OutputSchema(*node.children[0]));
      INSIGHT_ASSIGN_OR_RETURN(Schema right_schema,
                               OutputSchema(*node.children[1]));
      INSIGHT_ASSIGN_OR_RETURN(Lowered left, LowerRec(*node.children[0]));

      // Index join candidacy: right side is a bare scan whose equi-join
      // column is indexed.
      std::optional<EquiJoinKeys> keys;
      for (const ExprPtr& conjunct : SplitConjuncts(node.predicate.get())) {
        keys = MatchEquiJoin(conjunct.get(), left_schema, right_schema);
        if (keys.has_value()) break;
      }
      const LogicalNode* right_node = node.children[1].get();
      bool index_join = false;
      const RelationInfo* right_info = nullptr;
      // Index joins materialize the inner table's own schema, so an
      // aliased inner would lose its qualification: require a bare scan.
      if (options_.use_data_indexes && keys.has_value() &&
          right_node->kind == LogicalKind::kScan &&
          right_node->alias.empty()) {
        INSIGHT_ASSIGN_OR_RETURN(right_info, ctx_->Get(right_node->table));
        index_join =
            right_info->table->GetColumnIndex(keys->right_column) != nullptr;
        if (index_join) {
          // Cost guard: index join wins unless the outer is huge relative
          // to the inner (probe per outer row vs one materialization).
          INSIGHT_ASSIGN_OR_RETURN(PlanEstimate lest,
                                   Estimate(*node.children[0]));
          INSIGHT_ASSIGN_OR_RETURN(PlanEstimate rest,
                                   Estimate(*node.children[1]));
          const double nl_cost = lest.rows * rest.rows * kTupleCpu;
          const double inl_cost = lest.rows * (kIndexDescent * kTupleCpu +
                                               kDataIndexHitIo * kTupleCpu);
          index_join = inl_cost < nl_cost;
        }
      }

      // Order preservation (Rule 5): both join strategies iterate the
      // outer side; the order survives when its instance is not linked on
      // the inner side.
      std::optional<PhysOrder> order = left.order;
      if (order.has_value()) {
        bool inner_any = false;
        INSIGHT_RETURN_NOT_OK(InstancesOnlyOn({order->instance},
                                              *node.children[1], &inner_any)
                                  .status());
        if (inner_any) order.reset();
      }

      Lowered out;
      out.order = order;
      if (index_join) {
        // Residual conjuncts beyond the equi key become a post-select.
        std::vector<ExprPtr> residual;
        for (ExprPtr& conjunct : SplitConjuncts(node.predicate.get())) {
          auto k = MatchEquiJoin(conjunct.get(), left_schema, right_schema);
          if (k.has_value() && k->left_column == keys->left_column &&
              k->right_column == keys->right_column) {
            continue;
          }
          residual.push_back(std::move(conjunct));
        }
        out.op = std::make_unique<IndexNLJoinOp>(
            std::move(left.op), right_info->table, keys->right_column,
            Col(keys->left_column), right_info->mgr,
            right_node->propagate_summaries);
        if (!residual.empty()) {
          out.op = std::make_unique<SelectOp>(
              std::move(out.op), CombineConjuncts(std::move(residual)));
        }
      } else if (options_.enable_hash_join && keys.has_value()) {
        // Hash join: build on the right, probe with the left (outer order
        // preserved, so the Rule 5 analysis above still applies).
        INSIGHT_ASSIGN_OR_RETURN(Lowered right, LowerRec(*node.children[1]));
        std::vector<ExprPtr> residual;
        for (ExprPtr& conjunct : SplitConjuncts(node.predicate.get())) {
          auto k = MatchEquiJoin(conjunct.get(), left_schema, right_schema);
          if (k.has_value() && k->left_column == keys->left_column &&
              k->right_column == keys->right_column) {
            continue;
          }
          residual.push_back(std::move(conjunct));
        }
        out.op = std::make_unique<HashJoinOp>(
            std::move(left.op), std::move(right.op), keys->left_column,
            keys->right_column, CombineConjuncts(std::move(residual)));
      } else {
        INSIGHT_ASSIGN_OR_RETURN(Lowered right, LowerRec(*node.children[1]));
        out.op = std::make_unique<NestedLoopJoinOp>(std::move(left.op),
                                                    std::move(right.op),
                                                    node.predicate->Clone());
      }
      return out;
    }
    case LogicalKind::kSummaryJoin: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered left, LowerRec(*node.children[0]));
      const LogicalNode* right_node = node.children[1].get();
      const SummaryJoinPredicate& pred = node.summary_join_predicate;

      // Index strategy: equality of the same instance.label on both
      // sides, right side a bare scan with a Summary-BTree.
      bool index_join = false;
      const RelationInfo* right_info = nullptr;
      const SummaryBTree* right_index = nullptr;
      std::string instance;
      std::string label;
      if (options_.use_summary_indexes && !pred.merged_form() &&
          pred.op == CompareOp::kEq &&
          right_node->kind == LogicalKind::kScan &&
          right_node->alias.empty()) {
        const auto* lf =
            dynamic_cast<const SummaryFuncExpr*>(pred.left_expr.get());
        const auto* rf =
            dynamic_cast<const SummaryFuncExpr*>(pred.right_expr.get());
        if (lf != nullptr && rf != nullptr &&
            lf->kind() == SummaryFuncKind::kLabelValue &&
            rf->kind() == SummaryFuncKind::kLabelValue &&
            EqualsIgnoreCase(lf->label(), rf->label())) {
          INSIGHT_ASSIGN_OR_RETURN(right_info, ctx_->Get(right_node->table));
          right_index = right_info->SummaryIndexFor(rf->instance());
          if (right_index != nullptr) {
            index_join = true;
            instance = lf->instance();
            label = lf->label();
          }
        }
      }

      std::optional<PhysOrder> order = left.order;  // Rule 6.
      if (order.has_value()) {
        bool inner_any = false;
        INSIGHT_RETURN_NOT_OK(InstancesOnlyOn({order->instance},
                                              *node.children[1], &inner_any)
                                  .status());
        if (inner_any) order.reset();
      }

      Lowered out;
      out.order = order;
      if (index_join) {
        out.op = std::make_unique<SummaryJoinOp>(
            std::move(left.op), right_info->table, right_info->mgr,
            right_index, instance, label,
            right_node->propagate_summaries);
      } else {
        INSIGHT_ASSIGN_OR_RETURN(Lowered right, LowerRec(*node.children[1]));
        out.op = std::make_unique<SummaryJoinOp>(
            std::move(left.op), std::move(right.op), pred.Clone());
      }
      return out;
    }
    case LogicalKind::kSort: {
      // Rules 3-6, scan form: a single ascending summary sort over a bare
      // scan can read the Summary-BTree in full label order instead of
      // sorting — legal only when the statistics prove every tuple
      // carries the instance's object (an index scan yields only indexed
      // tuples, so missing objects would silently drop rows).
      if (node.sort_keys.size() == 1 && !node.sort_keys[0].descending &&
          options_.use_summary_indexes &&
          node.children[0]->kind == LogicalKind::kScan &&
          node.children[0]->alias.empty()) {
        const auto* func = dynamic_cast<const SummaryFuncExpr*>(
            node.sort_keys[0].expr.get());
        if (func != nullptr &&
            func->kind() == SummaryFuncKind::kLabelValue) {
          INSIGHT_ASSIGN_OR_RETURN(const RelationInfo* info,
                                   ctx_->Get(node.children[0]->table));
          const SummaryBTree* index =
              info->SummaryIndexFor(func->instance());
          const bool complete =
              info->stats.has_value() &&
              info->stats->annotated_rows == info->stats->num_rows &&
              info->stats->num_rows > 0;
          if (index != nullptr && complete) {
            ClassifierProbe probe;
            probe.label = func->label();
            Lowered out;
            out.op = std::make_unique<SummaryIndexScanOp>(
                ctx_->exec_context(), index, probe, info->table->name(),
                node.children[0]->propagate_summaries);
            out.order = PhysOrder{func->instance(), func->label()};
            return out;
          }
        }
      }
      // "Never under O": a Gather reorders rows across partitions, which
      // would invalidate the order this Sort (or a Rules 3-6 elimination)
      // depends on — lower the whole subtree serially.
      ScopedClear no_parallel(&allow_parallel_);
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      // Rules 3-6 payoff: an ascending single-key summary sort over an
      // input already ordered by that label is a no-op.
      if (node.sort_keys.size() == 1 && !node.sort_keys[0].descending &&
          child.order.has_value()) {
        const auto* func = dynamic_cast<const SummaryFuncExpr*>(
            node.sort_keys[0].expr.get());
        if (func != nullptr &&
            func->kind() == SummaryFuncKind::kLabelValue &&
            EqualsIgnoreCase(func->instance(), child.order->instance) &&
            EqualsIgnoreCase(func->label(), child.order->label)) {
          return child;  // Sort eliminated.
        }
      }
      std::vector<SortKey> keys;
      for (const SortKey& key : node.sort_keys) {
        keys.push_back(SortKey{key.expr->Clone(), key.descending});
      }
      Lowered out;
      out.op = std::make_unique<SortOp>(
          ctx_->exec_context(), std::move(child.op), std::move(keys),
          options_.sort_mode, options_.sort_memory_budget);
      return out;
    }
    case LogicalKind::kAggregate: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      std::vector<AggregateSpec> aggs;
      for (const AggregateSpec& agg : node.aggregates) {
        aggs.push_back(AggregateSpec{
            agg.kind, agg.arg == nullptr ? nullptr : agg.arg->Clone(),
            agg.output_name});
      }
      Lowered out;
      out.op = std::make_unique<HashAggregateOp>(
          std::move(child.op), node.group_columns, std::move(aggs),
          ctx_->MakeResolver());
      return out;
    }
    case LogicalKind::kDistinct: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      Lowered out;
      out.op = std::make_unique<DistinctOp>(std::move(child.op));
      return out;
    }
    case LogicalKind::kLimit: {
      INSIGHT_ASSIGN_OR_RETURN(Lowered child, LowerRec(*node.children[0]));
      // LIMIT pushdown into a parallel gather: walk through 1:1
      // pass-through operators (rename, project) — never through a
      // filter, which can drop rows — and hand the gather an early-stop
      // hint so the workers do not drain the whole table.
      PhysicalOperator* walk = child.op.get();
      while (walk != nullptr) {
        if (auto* gather = dynamic_cast<GatherOp*>(walk)) {
          gather->set_limit(node.limit);
          break;
        }
        if (dynamic_cast<RenameOp*>(walk) == nullptr &&
            dynamic_cast<ProjectOp*>(walk) == nullptr) {
          break;
        }
        auto kids = walk->children();
        walk = kids.size() == 1 ? kids[0] : nullptr;
      }
      Lowered out;
      out.order = child.order;
      out.op = std::make_unique<LimitOp>(std::move(child.op), node.limit);
      return out;
    }
  }
  return Status::Internal("unreachable");
}

Result<OpPtr> Optimizer::Lower(const LogicalNode& plan) {
  INSIGHT_ASSIGN_OR_RETURN(Lowered lowered, LowerRec(plan));
  // Thread the runtime context through every operator: non-scan operators
  // are built with plain constructors, so the tree walk is what hands them
  // the batch-size knob and storage handles.
  lowered.op->AttachContext(ctx_->exec_context());
  return std::move(lowered.op);
}

Result<OpPtr> Optimizer::Optimize(LogicalPtr plan) {
  INSIGHT_ASSIGN_OR_RETURN(plan, Rewrite(std::move(plan)));
  return Lower(*plan);
}

}  // namespace insight
