#include "optimizer/query_context.h"

#include <algorithm>

#include "common/string_util.h"

namespace insight {

const SummaryBTree* RelationInfo::SummaryIndexFor(
    const std::string& instance) const {
  auto it = summary_indexes.find(ToLower(instance));
  return it == summary_indexes.end() ? nullptr : it->second;
}

const BaselineClassifierIndex* RelationInfo::BaselineIndexFor(
    const std::string& instance) const {
  auto it = baseline_indexes.find(ToLower(instance));
  return it == baseline_indexes.end() ? nullptr : it->second;
}

const SnippetKeywordIndex* RelationInfo::KeywordIndexFor(
    const std::string& instance) const {
  auto it = keyword_indexes.find(ToLower(instance));
  return it == keyword_indexes.end() ? nullptr : it->second;
}

bool RelationInfo::HasInstance(const std::string& instance) const {
  return mgr != nullptr && mgr->FindInstance(instance).ok();
}

Status QueryContext::RegisterRelation(Table* table, SummaryManager* mgr) {
  const std::string key = ToLower(table->name());
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation " + table->name() +
                                 " already registered");
  }
  RelationInfo info;
  info.table = table;
  info.mgr = mgr;
  relations_[key] = std::move(info);
  if (mgr != nullptr) exec_ctx_.RegisterManager(table->name(), mgr);
  return Status::OK();
}

Status QueryContext::RegisterSummaryIndex(const std::string& table,
                                          const std::string& instance,
                                          const SummaryBTree* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->summary_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::RegisterBaselineIndex(
    const std::string& table, const std::string& instance,
    const BaselineClassifierIndex* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->baseline_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::RegisterKeywordIndex(const std::string& table,
                                          const std::string& instance,
                                          const SnippetKeywordIndex* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->keyword_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::UnregisterInstanceIndexes(const std::string& table,
                                               const std::string& instance) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  const std::string key = ToLower(instance);
  info->summary_indexes.erase(key);
  info->baseline_indexes.erase(key);
  info->keyword_indexes.erase(key);
  return Status::OK();
}

Status QueryContext::Analyze(const std::string& table) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  INSIGHT_ASSIGN_OR_RETURN(TableStats stats,
                           AnalyzeTable(info->table, info->mgr));
  info->stats = std::move(stats);
  if (info->mgr != nullptr && info->live_stats == nullptr) {
    info->live_stats = std::make_shared<LiveLabelStatistics>(info->mgr);
    INSIGHT_RETURN_NOT_OK(info->live_stats->SeedFrom(info->mgr));
  }
  return Status::OK();
}

Status QueryContext::RefreshStats(const std::string& table) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  bool rebuild = false;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    if (info->needs_analyze && info->stats.has_value()) {
      info->needs_analyze = false;
      rebuild = true;
    }
  }
  if (rebuild) {
    // Feedback said the cached statistics misestimate badly enough that
    // incremental folding can't save them; rebuild from the data.
    return Analyze(table);
  }
  if (info->stats.has_value() && info->live_stats != nullptr) {
    info->live_stats->FoldInto(&*info->stats);
  }
  return Status::OK();
}

void QueryContext::ReportCardinalityFeedback(const std::string& table,
                                             double qerror,
                                             double threshold) {
  Result<RelationInfo*> info = GetMutable(table);
  if (!info.ok()) return;
  std::lock_guard<std::mutex> lock(feedback_mu_);
  (*info)->worst_qerror = std::max((*info)->worst_qerror, qerror);
  if (threshold > 0 && qerror >= threshold) (*info)->needs_analyze = true;
}

Result<const RelationInfo*> QueryContext::Get(
    const std::string& table) const {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("relation " + table + " not registered");
  }
  return &it->second;
}

AnnotationResolver QueryContext::MakeResolver() const {
  const std::map<std::string, RelationInfo>* relations = &relations_;
  return [relations](AnnId id) -> Result<std::string> {
    for (const auto& [name, info] : *relations) {
      if (info.mgr == nullptr) continue;
      auto text = info.mgr->annotations()->GetText(id);
      if (text.ok()) return text;
    }
    return Status::NotFound("annotation " + std::to_string(id));
  };
}

Result<RelationInfo*> QueryContext::GetMutable(const std::string& table) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("relation " + table + " not registered");
  }
  return &it->second;
}

}  // namespace insight
