#include "optimizer/query_context.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace insight {

const SummaryBTree* RelationInfo::SummaryIndexFor(
    const std::string& instance) const {
  auto it = summary_indexes.find(ToLower(instance));
  return it == summary_indexes.end() ? nullptr : it->second;
}

const BaselineClassifierIndex* RelationInfo::BaselineIndexFor(
    const std::string& instance) const {
  auto it = baseline_indexes.find(ToLower(instance));
  return it == baseline_indexes.end() ? nullptr : it->second;
}

const SnippetKeywordIndex* RelationInfo::KeywordIndexFor(
    const std::string& instance) const {
  auto it = keyword_indexes.find(ToLower(instance));
  return it == keyword_indexes.end() ? nullptr : it->second;
}

bool RelationInfo::HasInstance(const std::string& instance) const {
  return mgr != nullptr && mgr->FindInstance(instance).ok();
}

bool RelationInfo::SketchTierActive(const SketchPolicy& policy) const {
  if (!policy.enabled || sketches == nullptr || !StatsEnabled()) return false;
  if (!sketches->HasData()) return false;
  if (!stats.has_value()) return true;  // Sketches beat no statistics.
  return sketches->StaleSince(policy.staleness_threshold);
}

EstimateSource RelationInfo::Source(const SketchPolicy& policy) const {
  if (SketchTierActive(policy)) return EstimateSource::kSketch;
  if (stats.has_value()) {
    return stats->rebuilt_by_feedback ? EstimateSource::kFeedback
                                      : EstimateSource::kHistogram;
  }
  return EstimateSource::kNone;
}

double RelationInfo::EstimatedRows(const SketchPolicy& policy) const {
  if (SketchTierActive(policy)) {
    return static_cast<double>(std::max<int64_t>(0, sketches->rows()));
  }
  if (stats.has_value()) return static_cast<double>(stats->num_rows);
  return static_cast<double>(table->num_rows());
}

double RelationInfo::EstimatedPages(const SketchPolicy& policy,
                                    double fallback_pages) const {
  if (!stats.has_value()) return std::max(1.0, fallback_pages);
  double pages = static_cast<double>(stats->heap_pages);
  if (SketchTierActive(policy) && stats->num_rows > 0) {
    // Scale the analyzed page count by the row-count drift the sketches
    // observed since that ANALYZE.
    pages *= EstimatedRows(policy) / static_cast<double>(stats->num_rows);
  }
  return std::max(1.0, pages);
}

double RelationInfo::AnnotatedFraction(const SketchPolicy& policy,
                                       double fallback) const {
  if (SketchTierActive(policy) && mgr != nullptr) {
    const double rows = EstimatedRows(policy);
    if (rows <= 0) return 0.0;
    // Annotated rows ~ the largest per-instance live object count (one
    // object per annotated tuple per instance), same as FoldInto().
    int64_t annotated = 0;
    for (const SummaryInstance& inst : mgr->instances()) {
      annotated = std::max(annotated, sketches->InstanceObjects(inst.name()));
    }
    return std::min(1.0, static_cast<double>(annotated) / rows);
  }
  if (stats.has_value() && stats->num_rows > 0) {
    return std::min(1.0, static_cast<double>(stats->annotated_rows) /
                             static_cast<double>(stats->num_rows));
  }
  return fallback;
}

double RelationInfo::LabelSelectivity(const SketchPolicy& policy,
                                      const std::string& instance,
                                      const std::string& label, CompareOp op,
                                      int64_t constant,
                                      double fallback) const {
  const bool sketch = SketchTierActive(policy);
  if (stats.has_value()) {
    double sel =
        stats->EstimateLabelSelectivity(instance, label, op, constant);
    if (sketch && stats->num_rows > 0) {
      // The histogram numerator (matching rows) is live-maintained; only
      // the row denominator went stale. Re-divide by the fresh count.
      const double fresh_rows = EstimatedRows(policy);
      if (fresh_rows > 0) {
        sel = std::min(1.0, sel * static_cast<double>(stats->num_rows) /
                                fresh_rows);
      }
    }
    return sel;
  }
  if (sketch && op == CompareOp::kEq) {
    const double fresh_rows = EstimatedRows(policy);
    const int64_t hits = sketches->LabelFrequency(instance, label, constant);
    if (fresh_rows > 0 && hits >= 0) {
      return std::min(1.0, static_cast<double>(hits) / fresh_rows);
    }
  }
  return fallback;
}

double RelationInfo::ColumnSelectivity(const SketchPolicy& policy,
                                       const std::string& column,
                                       CompareOp op, const Value& constant,
                                       double fallback) const {
  const bool sketch = SketchTierActive(policy);
  if (sketch && op == CompareOp::kEq) {
    // Count-Min answers point frequencies directly and stays fresh on
    // every write — preferred over a stale histogram's uniformity guess.
    const double fresh_rows = EstimatedRows(policy);
    const int64_t hits = sketches->ColumnFrequency(column, constant);
    if (fresh_rows > 0 && hits >= 0) {
      return std::min(1.0, static_cast<double>(hits) / fresh_rows);
    }
  }
  if (stats.has_value()) {
    double sel = stats->EstimateColumnSelectivity(column, op, constant);
    if (sketch && stats->num_rows > 0) {
      const double fresh_rows = EstimatedRows(policy);
      if (fresh_rows > 0) {
        sel = std::min(1.0, sel * static_cast<double>(stats->num_rows) /
                                fresh_rows);
      }
    }
    return sel;
  }
  return fallback;
}

uint64_t RelationInfo::LabelDistinctEst(const SketchPolicy& policy,
                                        const std::string& instance,
                                        const std::string& label) const {
  if (SketchTierActive(policy)) {
    const double d = sketches->LabelDistinct(instance, label);
    if (d >= 1) return static_cast<uint64_t>(d);
  }
  if (stats.has_value()) return stats->LabelDistinct(instance, label);
  return 1;
}

uint64_t RelationInfo::ColumnDistinctEst(const SketchPolicy& policy,
                                         const std::string& column) const {
  if (SketchTierActive(policy)) {
    const double d = sketches->ColumnDistinct(column);
    if (d >= 1) return static_cast<uint64_t>(d);
  }
  if (stats.has_value()) return stats->ColumnDistinct(column);
  return 1;
}

Status QueryContext::RegisterRelation(Table* table, SummaryManager* mgr) {
  const std::string key = ToLower(table->name());
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation " + table->name() +
                                 " already registered");
  }
  RelationInfo info;
  info.table = table;
  info.mgr = mgr;
  relations_[key] = std::move(info);
  if (mgr != nullptr) exec_ctx_.RegisterManager(table->name(), mgr);
  return Status::OK();
}

Status QueryContext::RegisterSummaryIndex(const std::string& table,
                                          const std::string& instance,
                                          const SummaryBTree* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->summary_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::RegisterBaselineIndex(
    const std::string& table, const std::string& instance,
    const BaselineClassifierIndex* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->baseline_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::RegisterKeywordIndex(const std::string& table,
                                          const std::string& instance,
                                          const SnippetKeywordIndex* index) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  info->keyword_indexes[ToLower(instance)] = index;
  return Status::OK();
}

Status QueryContext::UnregisterInstanceIndexes(const std::string& table,
                                               const std::string& instance) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  const std::string key = ToLower(instance);
  info->summary_indexes.erase(key);
  info->baseline_indexes.erase(key);
  info->keyword_indexes.erase(key);
  return Status::OK();
}

Status QueryContext::Analyze(const std::string& table) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  // First Analyze of an annotated relation: attach the live statistics
  // up front and let AnalyzeTable seed them from the summary scan it
  // already performs — one pass over summary storage instead of two.
  LiveLabelStatistics* seed = nullptr;
  if (info->mgr != nullptr && info->live_stats == nullptr) {
    info->live_stats = std::make_shared<LiveLabelStatistics>(info->mgr);
    seed = info->live_stats.get();
  }
  INSIGHT_ASSIGN_OR_RETURN(TableStats stats,
                           AnalyzeTable(info->table, info->mgr, seed));
  info->stats = std::move(stats);
  if (info->sketches != nullptr) {
    info->sketches->NoteAnalyzed(info->stats->num_rows);
  }
  return Status::OK();
}

Status QueryContext::RefreshStats(const std::string& table,
                                  const SketchPolicy& policy) {
  INSIGHT_ASSIGN_OR_RETURN(RelationInfo * info, GetMutable(table));
  bool rebuild = false;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    if (info->needs_analyze && info->stats.has_value()) {
      info->needs_analyze = false;
      rebuild = true;
    }
  }
  if (rebuild) {
    // Feedback said the cached statistics misestimate badly. If the
    // sketches report little churn since the last ANALYZE, the rescan
    // would rebuild near-identical histograms — the misestimate is a
    // model error, not staleness, so fold and move on. Otherwise rebuild
    // from the data.
    const bool low_churn =
        policy.enabled && StatsEnabled() && info->sketches != nullptr &&
        info->sketches->HasData() &&
        !info->sketches->StaleSince(policy.staleness_threshold);
    if (!low_churn) {
      INSIGHT_RETURN_NOT_OK(Analyze(table));
      if (info->stats.has_value()) info->stats->rebuilt_by_feedback = true;
      return Status::OK();
    }
    EngineMetrics::Get().stats_rescans_skipped->Add(1);
  }
  if (info->stats.has_value() && info->live_stats != nullptr) {
    info->live_stats->FoldInto(&*info->stats);
  }
  return Status::OK();
}

void QueryContext::ReportCardinalityFeedback(const std::string& table,
                                             double qerror,
                                             double threshold) {
  Result<RelationInfo*> info = GetMutable(table);
  if (!info.ok()) return;
  std::lock_guard<std::mutex> lock(feedback_mu_);
  (*info)->worst_qerror = std::max((*info)->worst_qerror, qerror);
  if (threshold > 0 && qerror >= threshold) (*info)->needs_analyze = true;
}

Result<const RelationInfo*> QueryContext::Get(
    const std::string& table) const {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("relation " + table + " not registered");
  }
  return &it->second;
}

AnnotationResolver QueryContext::MakeResolver() const {
  const std::map<std::string, RelationInfo>* relations = &relations_;
  return [relations](AnnId id) -> Result<std::string> {
    for (const auto& [name, info] : *relations) {
      if (info.mgr == nullptr) continue;
      auto text = info.mgr->annotations()->GetText(id);
      if (text.ok()) return text;
    }
    return Status::NotFound("annotation " + std::to_string(id));
  };
}

Result<RelationInfo*> QueryContext::GetMutable(const std::string& table) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("relation " + table + " not registered");
  }
  return &it->second;
}

}  // namespace insight
