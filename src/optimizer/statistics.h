#ifndef INSIGHTNOTES_OPTIMIZER_STATISTICS_H_
#define INSIGHTNOTES_OPTIMIZER_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expression.h"
#include "index/table.h"
#include "summary/summary_manager.h"

namespace insight {

/// Equi-width histogram over integer values (Fig. 6's per-label
/// structure). Also used for numeric data columns.
class EquiWidthHistogram {
 public:
  static constexpr size_t kNumBuckets = 16;

  EquiWidthHistogram() = default;

  /// Builds from a sample of values (empty input yields an empty
  /// histogram that estimates 0 everywhere).
  static EquiWidthHistogram Build(const std::vector<int64_t>& values);

  /// Builds from a value -> frequency map (the live-statistics path).
  static EquiWidthHistogram BuildFromCounts(
      const std::map<int64_t, uint64_t>& counts);

  uint64_t total() const { return total_; }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }

  /// Estimated number of values in [lo, hi] (inclusive); linear
  /// interpolation within buckets.
  double EstimateRange(int64_t lo, int64_t hi) const;

  /// Estimated number of values equal to v given the distinct count.
  double EstimateEquals(int64_t v, uint64_t num_distinct) const;

 private:
  int64_t min_ = 0;
  int64_t max_ = 0;
  uint64_t total_ = 0;
  std::vector<uint64_t> buckets_;
};

/// Statistics for one classifier label's count field: the paper's
/// {Min, Max, NumDistinct, Equi-Width Histogram} (Fig. 6).
struct LabelStats {
  int64_t min = 0;
  int64_t max = 0;
  uint64_t num_distinct = 0;
  EquiWidthHistogram histogram;
};

/// Per-summary-instance statistics.
struct InstanceStats {
  double avg_object_size = 0;  // Serialized bytes (AvgObjectSize).
  uint64_t num_objects = 0;
  std::map<std::string, LabelStats> labels;  // Lower-cased label keys.
};

/// Per-data-column statistics (numeric columns get a histogram too).
struct ColumnStats {
  uint64_t num_distinct = 0;
  EquiWidthHistogram histogram;  // Numeric columns only.
  bool numeric = false;
};

/// Statistics of one relation (data + summaries), collected by Analyze().
struct TableStats {
  uint64_t num_rows = 0;
  uint64_t heap_pages = 0;
  uint64_t annotated_rows = 0;
  double avg_summary_blob_size = 0;
  /// True when this snapshot was rebuilt because the cardinality-feedback
  /// loop flagged a misestimate (rather than an explicit ANALYZE); the
  /// optimizer surfaces it as the `feedback` estimate source.
  bool rebuilt_by_feedback = false;
  std::map<std::string, InstanceStats> instances;  // Lower-cased keys.
  std::map<std::string, ColumnStats> columns;      // Lower-cased keys.

  /// Selectivity (0..1, relative to num_rows) of
  /// "instance.label <op> constant". Tuples without the instance's object
  /// never qualify, matching S semantics.
  double EstimateLabelSelectivity(const std::string& instance,
                                  const std::string& label, CompareOp op,
                                  int64_t constant) const;

  /// Selectivity of "column <op> constant" for numeric columns;
  /// 1/num_distinct for string equality; 1/3 fallback.
  double EstimateColumnSelectivity(const std::string& column, CompareOp op,
                                   const Value& constant) const;

  /// NumDistinct of a classifier label's count field (join estimation).
  uint64_t LabelDistinct(const std::string& instance,
                         const std::string& label) const;

  uint64_t ColumnDistinct(const std::string& column) const;
};

class LiveLabelStatistics;

/// ANALYZE: one scan of the relation plus one scan of its summary
/// storage. Data-column statistics refresh only on ANALYZE; the
/// summary-side statistics are additionally kept fresh by
/// LiveLabelStatistics below (the paper's "maintained whenever a summary
/// object is updated", Section 5.2). When `seed` is non-null, the summary
/// pass additionally initializes it — the first Analyze of an annotated
/// relation seeds the live statistics from the same single scan instead
/// of walking the summary storage a second time.
Result<TableStats> AnalyzeTable(Table* table, SummaryManager* mgr,
                                LiveLabelStatistics* seed = nullptr);

/// Incrementally-maintained per-label count distributions. Subscribes to
/// every instance linked on the manager and tracks, for each classifier
/// label, the multiset of per-tuple counts; FoldInto() rewrites a
/// TableStats' instance section from the live state, so the optimizer
/// sees current selectivities without re-scanning (Fig. 6's statistics,
/// maintained on update as the paper describes).
class LiveLabelStatistics {
 public:
  /// Subscribes to the instances currently linked on `mgr`. Must be
  /// attached while the current summary storage is empty OR immediately
  /// after a full AnalyzeTable seed via SeedFrom().
  explicit LiveLabelStatistics(SummaryManager* mgr);

  /// Deregisters the maintenance subscriptions.
  ~LiveLabelStatistics();

  LiveLabelStatistics(const LiveLabelStatistics&) = delete;
  LiveLabelStatistics& operator=(const LiveLabelStatistics&) = delete;

  /// Initializes the live distributions from existing summary rows.
  Status SeedFrom(SummaryManager* mgr);

  /// Replaces `stats`' per-instance label statistics (and annotated-row
  /// count) with the live state.
  void FoldInto(TableStats* stats) const;

  /// The maintenance entry point (wired as a SummaryManager listener).
  Status OnObjectChanged(Oid oid, const SummaryObject* before,
                         const SummaryObject* after);

 private:
  void Apply(const SummaryObject& obj, int64_t delta);

  // instance (lower) -> label (lower) -> count value -> #tuples.
  std::map<std::string, std::map<std::string, std::map<int64_t, uint64_t>>>
      freq_;
  std::map<std::string, uint64_t> object_counts_;  // Per instance.
  std::map<std::string, double> object_bytes_;     // Per instance.
  SummaryManager* mgr_;
  std::vector<SummaryManager::ListenerId> listener_ids_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_OPTIMIZER_STATISTICS_H_
