#ifndef INSIGHTNOTES_OPTIMIZER_LOGICAL_PLAN_H_
#define INSIGHTNOTES_OPTIMIZER_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/operators.h"

namespace insight {

/// Logical operators: the standard relational set plus the paper's
/// summary-based S / F / J / O (Section 3.2). The optimizer rewrites this
/// tree with the Section 5.1 rules, then lowers it to physical operators.
enum class LogicalKind {
  kScan,           // Base relation.
  kSelect,         // sigma: data predicate.
  kSummarySelect,  // S: summary predicate over r.$.
  kSummaryFilter,  // F: object-level filter.
  kProject,        // pi.
  kJoin,           // Data join.
  kSummaryJoin,    // J.
  kSort,           // ORDER BY (data or summary keys -> O).
  kAggregate,      // GROUP BY.
  kDistinct,
  kLimit,
};

const char* LogicalKindToString(LogicalKind kind);

struct LogicalNode;
using LogicalPtr = std::unique_ptr<LogicalNode>;

/// One logical operator. A tagged struct rather than a class hierarchy:
/// the rewriter pattern-matches on `kind` and mutates children in place,
/// which is much lighter than visitor plumbing for eleven rules.
struct LogicalNode {
  LogicalKind kind;
  std::vector<LogicalPtr> children;

  // kScan.
  std::string table;
  std::string alias;  // Empty: columns keep their base names.
  bool propagate_summaries = true;

  // kSelect / kSummarySelect predicates.
  ExprPtr predicate;

  // kSummaryFilter.
  ObjectPredicate object_predicate;

  // kProject.
  std::vector<std::string> columns;

  // kJoin: conjunctive data predicate; equi-key extraction happens at
  // physical planning.
  // (reuses `predicate`)

  // kSummaryJoin.
  SummaryJoinPredicate summary_join_predicate;

  // kSort.
  std::vector<SortKey> sort_keys;

  // kAggregate.
  std::vector<std::string> group_columns;
  std::vector<AggregateSpec> aggregates;

  // kLimit.
  uint64_t limit = 0;

  LogicalPtr Clone() const;
  std::string Explain(int indent = 0) const;

  /// All base tables in this subtree (left-to-right).
  void CollectTables(std::vector<std::string>* out) const;
};

// ---- Builders ----

LogicalPtr LScan(std::string table, bool propagate = true);
LogicalPtr LScanAs(std::string table, std::string alias,
                   bool propagate = true);
LogicalPtr LSelect(LogicalPtr child, ExprPtr predicate);
LogicalPtr LSummarySelect(LogicalPtr child, ExprPtr predicate);
LogicalPtr LSummaryFilter(LogicalPtr child, ObjectPredicate predicate);
LogicalPtr LProject(LogicalPtr child, std::vector<std::string> columns);
LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, ExprPtr predicate);
LogicalPtr LSummaryJoin(LogicalPtr left, LogicalPtr right,
                        SummaryJoinPredicate predicate);
LogicalPtr LSort(LogicalPtr child, std::vector<SortKey> keys);
LogicalPtr LAggregate(LogicalPtr child, std::vector<std::string> group_cols,
                      std::vector<AggregateSpec> aggregates);
LogicalPtr LDistinct(LogicalPtr child);
LogicalPtr LLimit(LogicalPtr child, uint64_t limit);

}  // namespace insight

#endif  // INSIGHTNOTES_OPTIMIZER_LOGICAL_PLAN_H_
