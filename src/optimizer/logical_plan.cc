#include "optimizer/logical_plan.h"

#include "common/string_util.h"

namespace insight {

const char* LogicalKindToString(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
      return "Scan";
    case LogicalKind::kSelect:
      return "Select";
    case LogicalKind::kSummarySelect:
      return "SummarySelect";
    case LogicalKind::kSummaryFilter:
      return "SummaryFilter";
    case LogicalKind::kProject:
      return "Project";
    case LogicalKind::kJoin:
      return "Join";
    case LogicalKind::kSummaryJoin:
      return "SummaryJoin";
    case LogicalKind::kSort:
      return "Sort";
    case LogicalKind::kAggregate:
      return "Aggregate";
    case LogicalKind::kDistinct:
      return "Distinct";
    case LogicalKind::kLimit:
      return "Limit";
  }
  return "?";
}

LogicalPtr LogicalNode::Clone() const {
  auto node = std::make_unique<LogicalNode>();
  node->kind = kind;
  node->table = table;
  node->alias = alias;
  node->propagate_summaries = propagate_summaries;
  if (predicate != nullptr) node->predicate = predicate->Clone();
  node->object_predicate = object_predicate;
  node->columns = columns;
  node->summary_join_predicate = summary_join_predicate.Clone();
  for (const SortKey& key : sort_keys) {
    node->sort_keys.push_back(SortKey{key.expr->Clone(), key.descending});
  }
  node->group_columns = group_columns;
  for (const AggregateSpec& agg : aggregates) {
    node->aggregates.push_back(AggregateSpec{
        agg.kind, agg.arg == nullptr ? nullptr : agg.arg->Clone(),
        agg.output_name});
  }
  node->limit = limit;
  for (const LogicalPtr& child : children) {
    node->children.push_back(child->Clone());
  }
  return node;
}

std::string LogicalNode::Explain(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += LogicalKindToString(kind);
  switch (kind) {
    case LogicalKind::kScan:
      out += "(" + table + (alias.empty() ? "" : " AS " + alias) + ")";
      break;
    case LogicalKind::kSelect:
    case LogicalKind::kSummarySelect:
    case LogicalKind::kJoin:
      if (predicate != nullptr) out += "(" + predicate->ToString() + ")";
      break;
    case LogicalKind::kSummaryFilter:
      out += "(" + object_predicate.ToString() + ")";
      break;
    case LogicalKind::kProject:
      out += "(" + Join(columns, ", ") + ")";
      break;
    case LogicalKind::kSummaryJoin:
      out += "(" + summary_join_predicate.ToString() + ")";
      break;
    case LogicalKind::kSort: {
      out += "(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].expr->ToString();
        if (sort_keys[i].descending) out += " DESC";
      }
      out += ")";
      break;
    }
    case LogicalKind::kAggregate:
      out += "(group by " + Join(group_columns, ", ") + ")";
      break;
    case LogicalKind::kLimit:
      out += "(" + std::to_string(limit) + ")";
      break;
    case LogicalKind::kDistinct:
      break;
  }
  out += "\n";
  for (const LogicalPtr& child : children) {
    out += child->Explain(indent + 1);
  }
  return out;
}

void LogicalNode::CollectTables(std::vector<std::string>* out) const {
  if (kind == LogicalKind::kScan) out->push_back(table);
  for (const LogicalPtr& child : children) child->CollectTables(out);
}

namespace {
LogicalPtr MakeNode(LogicalKind kind) {
  auto node = std::make_unique<LogicalNode>();
  node->kind = kind;
  return node;
}
}  // namespace

LogicalPtr LScan(std::string table, bool propagate) {
  LogicalPtr node = MakeNode(LogicalKind::kScan);
  node->table = std::move(table);
  node->propagate_summaries = propagate;
  return node;
}

LogicalPtr LScanAs(std::string table, std::string alias, bool propagate) {
  LogicalPtr node = LScan(std::move(table), propagate);
  node->alias = std::move(alias);
  return node;
}

LogicalPtr LSelect(LogicalPtr child, ExprPtr predicate) {
  LogicalPtr node = MakeNode(LogicalKind::kSelect);
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LSummarySelect(LogicalPtr child, ExprPtr predicate) {
  LogicalPtr node = MakeNode(LogicalKind::kSummarySelect);
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LSummaryFilter(LogicalPtr child, ObjectPredicate predicate) {
  LogicalPtr node = MakeNode(LogicalKind::kSummaryFilter);
  node->children.push_back(std::move(child));
  node->object_predicate = std::move(predicate);
  return node;
}

LogicalPtr LProject(LogicalPtr child, std::vector<std::string> columns) {
  LogicalPtr node = MakeNode(LogicalKind::kProject);
  node->children.push_back(std::move(child));
  node->columns = std::move(columns);
  return node;
}

LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, ExprPtr predicate) {
  LogicalPtr node = MakeNode(LogicalKind::kJoin);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LSummaryJoin(LogicalPtr left, LogicalPtr right,
                        SummaryJoinPredicate predicate) {
  LogicalPtr node = MakeNode(LogicalKind::kSummaryJoin);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->summary_join_predicate = std::move(predicate);
  return node;
}

LogicalPtr LSort(LogicalPtr child, std::vector<SortKey> keys) {
  LogicalPtr node = MakeNode(LogicalKind::kSort);
  node->children.push_back(std::move(child));
  node->sort_keys = std::move(keys);
  return node;
}

LogicalPtr LAggregate(LogicalPtr child, std::vector<std::string> group_cols,
                      std::vector<AggregateSpec> aggregates) {
  LogicalPtr node = MakeNode(LogicalKind::kAggregate);
  node->children.push_back(std::move(child));
  node->group_columns = std::move(group_cols);
  node->aggregates = std::move(aggregates);
  return node;
}

LogicalPtr LDistinct(LogicalPtr child) {
  LogicalPtr node = MakeNode(LogicalKind::kDistinct);
  node->children.push_back(std::move(child));
  return node;
}

LogicalPtr LLimit(LogicalPtr child, uint64_t limit) {
  LogicalPtr node = MakeNode(LogicalKind::kLimit);
  node->children.push_back(std::move(child));
  node->limit = limit;
  return node;
}

}  // namespace insight
