#include "optimizer/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "storage/page.h"

namespace insight {

namespace {

/// Inclusive-domain bucket width. Computed entirely in double: the integer
/// form `max - min + 1` is signed-overflow UB whenever the domain spans
/// more than half the int64 range (e.g. min = INT64_MIN, max = INT64_MAX
/// wraps to 0, giving width 0 and a division by zero below).
double BucketWidth(int64_t min, int64_t max) {
  const double span =
      static_cast<double>(max) - static_cast<double>(min) + 1.0;
  return span / EquiWidthHistogram::kNumBuckets;
}

/// v's bucket under `width`, clamped to [0, kNumBuckets): values at
/// exactly max_ land in the last bucket. The offset is computed in double
/// for the same overflow reason as BucketWidth.
size_t BucketIndex(int64_t v, int64_t min, double width) {
  const double offset =
      static_cast<double>(v) - static_cast<double>(min);
  const double b = offset / width;
  if (!(b > 0)) return 0;  // Also catches NaN defensively.
  if (b >= EquiWidthHistogram::kNumBuckets) {
    return EquiWidthHistogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(b);
}

/// double -> int64 without the UB of a raw cast when the value is outside
/// the representable range (saturates; NaN maps to 0).
int64_t SaturatingCastToInt64(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 9223372036854775808.0) {  // 2^63: raw cast would be UB.
    return std::numeric_limits<int64_t>::max();
  }
  if (v < -9223372036854775808.0) {
    return std::numeric_limits<int64_t>::min();
  }
  return static_cast<int64_t>(v);
}

}  // namespace

EquiWidthHistogram EquiWidthHistogram::Build(
    const std::vector<int64_t>& values) {
  EquiWidthHistogram h;
  if (values.empty()) return h;
  h.min_ = *std::min_element(values.begin(), values.end());
  h.max_ = *std::max_element(values.begin(), values.end());
  h.total_ = values.size();
  h.buckets_.assign(kNumBuckets, 0);
  const double width = BucketWidth(h.min_, h.max_);
  for (int64_t v : values) {
    ++h.buckets_[BucketIndex(v, h.min_, width)];
  }
  return h;
}

EquiWidthHistogram EquiWidthHistogram::BuildFromCounts(
    const std::map<int64_t, uint64_t>& counts) {
  EquiWidthHistogram h;
  if (counts.empty()) return h;
  h.min_ = counts.begin()->first;
  h.max_ = counts.rbegin()->first;
  h.buckets_.assign(kNumBuckets, 0);
  const double width = BucketWidth(h.min_, h.max_);
  for (const auto& [value, freq] : counts) {
    h.buckets_[BucketIndex(value, h.min_, width)] += freq;
    h.total_ += freq;
  }
  return h;
}

double EquiWidthHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (total_ == 0 || hi < lo || hi < min_ || lo > max_) return 0;
  lo = std::max(lo, min_);
  hi = std::min(hi, max_);
  const double width = BucketWidth(min_, max_);
  double estimate = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const double b_lo = static_cast<double>(min_) + b * width;
    const double b_hi = b_lo + width;  // Exclusive.
    const double overlap_lo = std::max(b_lo, static_cast<double>(lo));
    const double overlap_hi =
        std::min(b_hi, static_cast<double>(hi) + 1.0);
    if (overlap_hi <= overlap_lo) continue;
    estimate += buckets_[b] * (overlap_hi - overlap_lo) / width;
  }
  return estimate;
}

double EquiWidthHistogram::EstimateEquals(int64_t v,
                                          uint64_t num_distinct) const {
  if (total_ == 0 || v < min_ || v > max_) return 0;
  if (num_distinct == 0) return 0;
  // Bucket-local uniformity: values in v's bucket spread over the
  // bucket's share of the distinct values.
  const double in_bucket = EstimateRange(v, v);
  return std::max(in_bucket, static_cast<double>(total_) / num_distinct /
                                 kNumBuckets);
}

double TableStats::EstimateLabelSelectivity(const std::string& instance,
                                            const std::string& label,
                                            CompareOp op,
                                            int64_t constant) const {
  if (num_rows == 0) return 0;
  auto inst_it = instances.find(ToLower(instance));
  if (inst_it == instances.end()) return 0;
  auto label_it = inst_it->second.labels.find(ToLower(label));
  if (label_it == inst_it->second.labels.end()) return 0;
  const LabelStats& stats = label_it->second;
  const EquiWidthHistogram& h = stats.histogram;
  double matching = 0;
  switch (op) {
    case CompareOp::kEq:
      matching = h.EstimateEquals(constant, stats.num_distinct);
      break;
    case CompareOp::kNe:
      matching = static_cast<double>(h.total()) -
                 h.EstimateEquals(constant, stats.num_distinct);
      break;
    case CompareOp::kLt:
      // Nothing is < INT64_MIN, and `constant - 1` would overflow.
      matching = constant == std::numeric_limits<int64_t>::min()
                     ? 0
                     : h.EstimateRange(stats.min, constant - 1);
      break;
    case CompareOp::kLe:
      matching = h.EstimateRange(stats.min, constant);
      break;
    case CompareOp::kGt:
      matching = constant == std::numeric_limits<int64_t>::max()
                     ? 0
                     : h.EstimateRange(constant + 1, stats.max);
      break;
    case CompareOp::kGe:
      matching = h.EstimateRange(constant, stats.max);
      break;
  }
  return std::min(1.0, matching / static_cast<double>(num_rows));
}

double TableStats::EstimateColumnSelectivity(const std::string& column,
                                             CompareOp op,
                                             const Value& constant) const {
  if (num_rows == 0) return 0;
  auto it = columns.find(ToLower(column));
  if (it == columns.end()) return 1.0 / 3;
  const ColumnStats& stats = it->second;
  if (stats.numeric &&
      (constant.type() == ValueType::kInt64 ||
       constant.type() == ValueType::kDouble)) {
    const int64_t c = SaturatingCastToInt64(constant.AsDouble());
    const EquiWidthHistogram& h = stats.histogram;
    double matching = 0;
    switch (op) {
      case CompareOp::kEq:
        matching = h.EstimateEquals(c, stats.num_distinct);
        break;
      case CompareOp::kNe:
        matching = static_cast<double>(h.total()) -
                   h.EstimateEquals(c, stats.num_distinct);
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        // `c - 1` overflows at INT64_MIN (and nothing is < it anyway).
        if (op == CompareOp::kLt &&
            c == std::numeric_limits<int64_t>::min()) {
          break;
        }
        matching = h.EstimateRange(h.min(), op == CompareOp::kLt ? c - 1 : c);
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        if (op == CompareOp::kGt &&
            c == std::numeric_limits<int64_t>::max()) {
          break;
        }
        matching = h.EstimateRange(op == CompareOp::kGt ? c + 1 : c, h.max());
        break;
    }
    return std::min(1.0, matching / static_cast<double>(num_rows));
  }
  // String / fallback.
  if (op == CompareOp::kEq) {
    return stats.num_distinct == 0
               ? 0.0
               : 1.0 / static_cast<double>(stats.num_distinct);
  }
  return 1.0 / 3;
}

uint64_t TableStats::LabelDistinct(const std::string& instance,
                                   const std::string& label) const {
  auto inst_it = instances.find(ToLower(instance));
  if (inst_it == instances.end()) return 1;
  auto label_it = inst_it->second.labels.find(ToLower(label));
  if (label_it == inst_it->second.labels.end()) return 1;
  return std::max<uint64_t>(1, label_it->second.num_distinct);
}

uint64_t TableStats::ColumnDistinct(const std::string& column) const {
  auto it = columns.find(ToLower(column));
  if (it == columns.end()) return 1;
  return std::max<uint64_t>(1, it->second.num_distinct);
}

Result<TableStats> AnalyzeTable(Table* table, SummaryManager* mgr,
                                LiveLabelStatistics* seed) {
  TableStats stats;
  stats.num_rows = table->num_rows();
  stats.heap_pages = table->heap_bytes() / kPageSize;

  // Data columns: distinct counts and numeric histograms.
  const Schema& schema = table->schema();
  std::vector<std::set<std::string>> distinct(schema.num_columns());
  std::vector<std::vector<int64_t>> numeric_values(schema.num_columns());
  auto it = table->Scan();
  Oid oid;
  Tuple tuple;
  while (it.Next(&oid, &tuple)) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const Value& v = tuple.at(c);
      distinct[c].insert(v.ToString());
      if (v.type() == ValueType::kInt64) {
        numeric_values[c].push_back(v.AsInt());
      } else if (v.type() == ValueType::kDouble) {
        numeric_values[c].push_back(SaturatingCastToInt64(v.AsDouble()));
      }
    }
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats col;
    col.num_distinct = distinct[c].size();
    if (!numeric_values[c].empty()) {
      col.numeric = true;
      col.histogram = EquiWidthHistogram::Build(numeric_values[c]);
    }
    stats.columns[ToLower(schema.column(c).name)] = col;
  }

  if (mgr == nullptr) return stats;

  // Summary statistics: one pass over the de-normalized storage.
  struct LabelAccum {
    std::vector<int64_t> counts;
  };
  std::map<std::string, std::map<std::string, LabelAccum>> accum;
  std::map<std::string, double> size_sum;
  std::map<std::string, uint64_t> object_count;
  uint64_t blob_bytes = 0;
  INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
      [&](Oid oid, const SummarySet& set) -> Status {
        ++stats.annotated_rows;
        std::string blob;
        set.Serialize(&blob);
        blob_bytes += blob.size();
        for (const SummaryObject& obj : set.objects()) {
          if (seed != nullptr) {
            INSIGHT_RETURN_NOT_OK(seed->OnObjectChanged(oid, nullptr, &obj));
          }
          const std::string key = ToLower(obj.instance_name);
          std::string buf;
          obj.Serialize(&buf);
          size_sum[key] += static_cast<double>(buf.size());
          ++object_count[key];
          if (obj.type == SummaryType::kClassifier) {
            for (const Representative& rep : obj.reps) {
              accum[key][ToLower(rep.text)].counts.push_back(rep.count);
            }
          }
        }
        return Status::OK();
      }));
  if (stats.annotated_rows > 0) {
    stats.avg_summary_blob_size =
        static_cast<double>(blob_bytes) / stats.annotated_rows;
  }
  for (const auto& [inst_key, count] : object_count) {
    InstanceStats inst;
    inst.num_objects = count;
    inst.avg_object_size = size_sum[inst_key] / count;
    auto acc_it = accum.find(inst_key);
    if (acc_it != accum.end()) {
      for (const auto& [label_key, acc] : acc_it->second) {
        LabelStats label;
        label.histogram = EquiWidthHistogram::Build(acc.counts);
        label.min = label.histogram.min();
        label.max = label.histogram.max();
        label.num_distinct =
            std::set<int64_t>(acc.counts.begin(), acc.counts.end()).size();
        inst.labels[label_key] = std::move(label);
      }
    }
    stats.instances[inst_key] = std::move(inst);
  }
  return stats;
}

LiveLabelStatistics::LiveLabelStatistics(SummaryManager* mgr) : mgr_(mgr) {
  for (const SummaryInstance& inst : mgr->instances()) {
    listener_ids_.push_back(
        mgr->AddListener(inst.id(),
                         [this](Oid oid, const SummaryObject* before,
                                const SummaryObject* after) {
                           return OnObjectChanged(oid, before, after);
                         }));
  }
}

LiveLabelStatistics::~LiveLabelStatistics() {
  for (SummaryManager::ListenerId id : listener_ids_) {
    mgr_->RemoveListener(id);
  }
}

Status LiveLabelStatistics::SeedFrom(SummaryManager* mgr) {
  freq_.clear();
  object_counts_.clear();
  object_bytes_.clear();
  return mgr->ForEachSummaryRow([this](Oid oid, const SummarySet& set) {
    for (const SummaryObject& obj : set.objects()) {
      INSIGHT_RETURN_NOT_OK(OnObjectChanged(oid, nullptr, &obj));
    }
    return Status::OK();
  });
}

void LiveLabelStatistics::Apply(const SummaryObject& obj, int64_t delta) {
  const std::string inst_key = ToLower(obj.instance_name);
  if (delta > 0) {
    object_counts_[inst_key] += 1;
  } else if (object_counts_[inst_key] > 0) {
    object_counts_[inst_key] -= 1;
  }
  std::string buf;
  obj.Serialize(&buf);
  object_bytes_[inst_key] += delta * static_cast<double>(buf.size());
  if (obj.type != SummaryType::kClassifier) return;
  auto& labels = freq_[inst_key];
  for (const Representative& rep : obj.reps) {
    auto& counts = labels[ToLower(rep.text)];
    if (delta > 0) {
      ++counts[rep.count];
    } else {
      auto it = counts.find(rep.count);
      if (it != counts.end() && --it->second == 0) counts.erase(it);
    }
  }
}

Status LiveLabelStatistics::OnObjectChanged(Oid, const SummaryObject* before,
                                            const SummaryObject* after) {
  if (before != nullptr) Apply(*before, -1);
  if (after != nullptr) Apply(*after, +1);
  return Status::OK();
}

void LiveLabelStatistics::FoldInto(TableStats* stats) const {
  uint64_t max_objects = 0;
  for (const auto& [inst_key, counts] : object_counts_) {
    InstanceStats inst;
    inst.num_objects = counts;
    max_objects = std::max(max_objects, counts);
    auto bytes_it = object_bytes_.find(inst_key);
    if (bytes_it != object_bytes_.end() && counts > 0) {
      inst.avg_object_size = bytes_it->second / counts;
    }
    auto freq_it = freq_.find(inst_key);
    if (freq_it != freq_.end()) {
      for (const auto& [label_key, value_freq] : freq_it->second) {
        LabelStats label;
        label.histogram = EquiWidthHistogram::BuildFromCounts(value_freq);
        label.min = label.histogram.min();
        label.max = label.histogram.max();
        label.num_distinct = value_freq.size();
        inst.labels[label_key] = std::move(label);
      }
    }
    stats->instances[inst_key] = std::move(inst);
  }
  stats->annotated_rows = max_objects;
}

}  // namespace insight
