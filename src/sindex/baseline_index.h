#ifndef INSIGHTNOTES_SINDEX_BASELINE_INDEX_H_
#define INSIGHTNOTES_SINDEX_BASELINE_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sindex/summary_btree.h"
#include "summary/summary_manager.h"

namespace insight {

/// The paper's Baseline indexing scheme (Section 4.1, Fig. 4(c)): the
/// Classifier objects are *normalized* — replicated into a side table
/// `(tuple_oid, label, cnt, derived)` where `derived` concatenates label
/// and zero-padded count — and a standard B-Tree is built on the derived
/// column. Queries walk index -> normalized row -> tuple OID -> OID index
/// -> heap, i.e. strictly more indirection than the Summary-BTree, and the
/// replica roughly doubles the summary storage footprint (Fig. 7).
class BaselineClassifierIndex {
 public:
  struct Options {
    int count_width = 3;
    bool bulk_build = true;
    bool subscribe = true;
  };

  static Result<std::unique_ptr<BaselineClassifierIndex>> Create(
      Catalog* catalog, SummaryManager* mgr,
      const std::string& instance_name, Options options);

  /// Deregisters the maintenance subscription.
  ~BaselineClassifierIndex();

  /// Hits in ascending count order. `payload` is the matching tuple's OID.
  Result<std::vector<SummaryIndexHit>> Search(
      const ClassifierProbe& probe) const;

  /// Data-tuple fetch through the OID index (the scheme's extra join).
  Result<Tuple> FetchDataTuple(const SummaryIndexHit& hit,
                               Oid* oid_out = nullptr) const;

  /// Re-forms the Classifier summary object of one tuple from its
  /// normalized rows — the propagation path measured in Fig. 12. Element
  /// lists cannot be reconstructed (normalization discards them); only
  /// Rep[] is rebuilt.
  Result<SummaryObject> ReconstructObject(Oid tuple_oid) const;

  /// Bytes of the normalized replica (heap + its OID index).
  uint64_t replica_bytes() const;
  /// Bytes of the derived-column B-Tree.
  uint64_t index_bytes() const;

  Status OnObjectChanged(Oid oid, const SummaryObject* before,
                         const SummaryObject* after);

 private:
  BaselineClassifierIndex(SummaryManager* mgr, Options options)
      : mgr_(mgr), options_(options) {}

  std::string DerivedKey(std::string_view label, int64_t count) const;

  /// Normalized-row OID holding (tuple, label), or kInvalidOid.
  Result<Oid> FindRow(Oid tuple_oid, std::string_view label) const;

  SummaryManager* mgr_;
  Options options_;
  uint32_t instance_id_ = 0;
  std::string instance_name_;
  std::vector<std::string> labels_;
  Table* normalized_ = nullptr;  // (tuple_oid, label, cnt, derived)
  std::optional<SummaryManager::ListenerId> listener_id_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SINDEX_BASELINE_INDEX_H_
