#ifndef INSIGHTNOTES_SINDEX_SUMMARY_BTREE_H_
#define INSIGHTNOTES_SINDEX_SUMMARY_BTREE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "summary/summary_manager.h"
#include "txn/txn.h"

namespace insight {

/// Probe for "classLabel <Op> constant" predicates over a Classifier-type
/// summary instance. Missing bounds are replaced by the label's 000/999
/// sentinels, exactly as Section 4.1.2 describes.
struct ClassifierProbe {
  std::string label;
  std::optional<int64_t> lower;
  bool lower_inclusive = true;
  std::optional<int64_t> upper;
  bool upper_inclusive = true;

  static ClassifierProbe Equal(std::string label, int64_t value) {
    return ClassifierProbe{std::move(label), value, true, value, true};
  }
  static ClassifierProbe GreaterThan(std::string label, int64_t value) {
    return ClassifierProbe{std::move(label), value, false, std::nullopt,
                           true};
  }
  static ClassifierProbe LessThan(std::string label, int64_t value) {
    return ClassifierProbe{std::move(label), std::nullopt, true, value,
                           false};
  }
  static ClassifierProbe Range(std::string label, int64_t lo, int64_t hi) {
    return ClassifierProbe{std::move(label), lo, true, hi, true};
  }
};

/// One index hit, in (label, count) order — the "interesting order" the
/// optimizer's Rules 3-6 exploit to drop summary-based sort operators.
struct SummaryIndexHit {
  int64_t count = 0;    // The class-label count of the matching object.
  uint64_t payload = 0; // Packed pointer; interpretation depends on mode.
  Oid oid = kInvalidOid;
};

/// The paper's Summary-BTree (Section 4.1): a B-Tree over the itemized
/// `classLabel:NNN` keys of one Classifier instance's objects, built
/// directly on the de-normalized summary storage (no replication), whose
/// leaf payloads are *backward pointers* — heap locations of the annotated
/// data tuples in the user relation R, not of the indexed objects.
///
/// The conventional-pointer variant (Fig. 13's comparison arm) stores the
/// summary-storage row instead and joins back to R at query time.
///
/// Maintenance is event-driven: creation subscribes to the instance's
/// SummaryManager events and applies the per-label delete+re-insert
/// protocol of Section 4.1.2.
class SummaryBTree {
 public:
  enum class PointerMode {
    kBackward,      // Leaf payload = RowLocation in R's heap (+ OID).
    kConventional,  // Leaf payload = summary-storage row OID.
  };

  struct Options {
    PointerMode pointer_mode = PointerMode::kBackward;
    /// Initial ExtendedAnnotationCnt width (paper: 3 -> "008").
    int count_width = 3;
    /// Build from existing summary rows at creation time (bulk mode).
    bool bulk_build = true;
    /// Subscribe to maintenance events (incremental mode).
    bool subscribe = true;
  };

  /// Creates the index over `instance_name` (must be a linked
  /// Classifier-type instance of `mgr`'s relation).
  static Result<std::unique_ptr<SummaryBTree>> Create(
      StorageManager* storage, BufferPool* pool, SummaryManager* mgr,
      const std::string& instance_name, Options options);

  /// Deregisters the maintenance subscription.
  ~SummaryBTree();

  /// Itemization (Fig. 4(d) step 1): "classLabel:ExtendedCnt".
  static std::string ItemizeKey(std::string_view label, int64_t count,
                                int width);

  /// Evaluates a probe; hits arrive in ascending count order. Entries
  /// written by uncommitted transactions (other than `snap`'s own) or
  /// deleted before `snap` are filtered out via the version sidecar.
  Result<std::vector<SummaryIndexHit>> Search(
      const ClassifierProbe& probe,
      const Snapshot& snap = Snapshot::Latest()) const;

  /// All entries of one label in ascending count order (summary-based
  /// sort via index scan).
  Result<std::vector<SummaryIndexHit>> ScanLabel(
      const std::string& label,
      const Snapshot& snap = Snapshot::Latest()) const;

  /// Resolves a hit to the data tuple. Backward mode: one heap read.
  /// Conventional mode: storage-row fetch + OID-index probe + heap read
  /// (the extra joins the backward pointers save).
  Result<Tuple> FetchDataTuple(const SummaryIndexHit& hit,
                               Oid* oid_out = nullptr,
                               const Snapshot& snap = Snapshot::Latest()) const;

  /// Resolves a hit to the data tuple AND its summary set. Conventional
  /// pointers land on the storage row anyway and reuse it for
  /// propagation; backward pointers read it separately — which is why
  /// the two modes cost about the same when propagating (Fig. 13).
  Result<Tuple> FetchDataTupleWithSummaries(
      const SummaryIndexHit& hit, SummarySet* summaries,
      Oid* oid_out = nullptr, const Snapshot& snap = Snapshot::Latest()) const;

  uint64_t num_entries() const { return tree_->num_entries(); }
  uint32_t height() const { return tree_->height(); }
  int count_width() const { return width_; }
  PointerMode pointer_mode() const { return options_.pointer_mode; }

  /// Bytes of index storage (the tree's page file).
  uint64_t size_bytes() const;

  /// Maintenance statistics (exercised by the theory-bounds bench).
  struct MaintenanceStats {
    uint64_t key_inserts = 0;
    uint64_t key_deletes = 0;
    uint64_t rebuilds = 0;
  };
  const MaintenanceStats& maintenance_stats() const { return stats_; }

  /// Applies one maintenance event (also reachable for testing; normally
  /// invoked via the SummaryManager subscription).
  Status OnObjectChanged(Oid oid, const SummaryObject* before,
                         const SummaryObject* after);

  /// Number of entries in the MVCC version sidecar (tests/diagnostics).
  size_t versioned_entries() const {
    std::lock_guard<std::mutex> lk(ver_mu_);
    return versions_.size();
  }

 private:
  SummaryBTree(StorageManager* storage, BufferPool* pool,
               SummaryManager* mgr, Options options)
      : storage_(storage), pool_(pool), mgr_(mgr), options_(options),
        width_(options.count_width) {}

  /// Identity of one index entry independent of the current count width
  /// (rebuilds re-itemize keys, so the sidecar keys on the logical
  /// triple, not the encoded key).
  struct EntryId {
    std::string label;
    int64_t count = 0;
    uint64_t payload = 0;
    bool operator<(const EntryId& o) const {
      return std::tie(label, count, payload) <
             std::tie(o.label, o.count, o.payload);
    }
  };
  /// Version interval of one entry. Tree entries with no sidecar record
  /// are committed long ago: implicitly {begin = 0, end = forever}.
  struct EntryStamp {
    Ts begin = 0;
    Ts end = kTsInfinity;
  };

  bool EntryVisible(const std::string& label, int64_t count,
                    uint64_t payload, const Snapshot& snap) const;

  /// Payload for a tuple under the configured pointer mode.
  Result<uint64_t> MakePayload(Oid oid) const;

  Status InsertKey(std::string_view label, int64_t count, Oid oid);
  Status DeleteKey(std::string_view label, int64_t count, Oid oid);

  /// Widens the count field and rebuilds the whole index (paper
  /// footnote 1: counts past 999 trigger an automatic re-build).
  Status WidenAndRebuild(int64_t new_max_count);

  StorageManager* storage_;
  BufferPool* pool_;
  SummaryManager* mgr_;
  Options options_;
  uint32_t instance_id_ = 0;
  std::string instance_name_;
  int width_;
  int rebuild_generation_ = 0;
  std::unique_ptr<BTree> tree_;
  FileId file_ = 0;
  MaintenanceStats stats_;
  std::optional<SummaryManager::ListenerId> listener_id_;

  // MVCC version sidecar: stamps for entries in flight (uncommitted, or
  // committed but still visible to old snapshots). Mutated only by the
  // (serialized) write path and transaction closures; probes read it
  // under ver_mu_ to filter tree hits.
  mutable std::mutex ver_mu_;
  std::map<EntryId, EntryStamp> versions_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SINDEX_SUMMARY_BTREE_H_
