#include "sindex/baseline_index.h"

#include "common/string_util.h"
#include "index/key_codec.h"

namespace insight {

Result<std::unique_ptr<BaselineClassifierIndex>>
BaselineClassifierIndex::Create(Catalog* catalog, SummaryManager* mgr,
                                const std::string& instance_name,
                                Options options) {
  INSIGHT_ASSIGN_OR_RETURN(const SummaryInstance* inst,
                           mgr->FindInstance(instance_name));
  if (inst->type() != SummaryType::kClassifier) {
    return Status::InvalidArgument("baseline scheme indexes Classifier-type "
                                   "instances");
  }
  auto index = std::unique_ptr<BaselineClassifierIndex>(
      new BaselineClassifierIndex(mgr, options));
  index->instance_id_ = inst->id();
  index->instance_name_ = inst->name();
  index->labels_ = inst->labels();
  INSIGHT_ASSIGN_OR_RETURN(
      index->normalized_,
      catalog->CreateTable(mgr->base()->name() + "_" + instance_name +
                               "_Normalized",
                           Schema({{"tuple_oid", ValueType::kInt64},
                                   {"label", ValueType::kString},
                                   {"cnt", ValueType::kInt64},
                                   {"derived", ValueType::kString}})));
  // Standard B-Tree on the system-maintained derived column, plus a
  // tuple_oid index so maintenance can find the rows to update.
  INSIGHT_RETURN_NOT_OK(index->normalized_->CreateColumnIndex("derived"));
  INSIGHT_RETURN_NOT_OK(index->normalized_->CreateColumnIndex("tuple_oid"));

  if (options.bulk_build) {
    BaselineClassifierIndex* raw = index.get();
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw](Oid oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            INSIGHT_RETURN_NOT_OK(raw->OnObjectChanged(oid, nullptr, &obj));
          }
          return Status::OK();
        }));
  }
  if (options.subscribe) {
    BaselineClassifierIndex* raw = index.get();
    index->listener_id_ =
        mgr->AddListener(inst->id(),
                         [raw](Oid oid, const SummaryObject* before,
                               const SummaryObject* after) {
                           return raw->OnObjectChanged(oid, before, after);
                         });
  }
  return index;
}

BaselineClassifierIndex::~BaselineClassifierIndex() {
  if (listener_id_.has_value()) mgr_->RemoveListener(*listener_id_);
}

std::string BaselineClassifierIndex::DerivedKey(std::string_view label,
                                                int64_t count) const {
  std::string key(label);
  key += '-';
  key += ZeroPad(count, options_.count_width);
  return key;
}

Result<Oid> BaselineClassifierIndex::FindRow(Oid tuple_oid,
                                             std::string_view label) const {
  const BTree* by_tuple = normalized_->GetColumnIndex("tuple_oid");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> rows,
      by_tuple->Lookup(
          EncodeIndexKey(Value::Int(static_cast<int64_t>(tuple_oid)))));
  for (uint64_t row_oid : rows) {
    INSIGHT_ASSIGN_OR_RETURN(Tuple row, normalized_->Get(row_oid));
    if (EqualsIgnoreCase(row.at(1).AsString(), label)) return row_oid;
  }
  return kInvalidOid;
}

Status BaselineClassifierIndex::OnObjectChanged(Oid oid,
                                                const SummaryObject* before,
                                                const SummaryObject* after) {
  if (after == nullptr) {
    if (before == nullptr) return Status::OK();
    for (const Representative& rep : before->reps) {
      INSIGHT_ASSIGN_OR_RETURN(Oid row, FindRow(oid, rep.text));
      if (row != kInvalidOid) {
        INSIGHT_RETURN_NOT_OK(normalized_->Delete(row));
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < after->reps.size(); ++i) {
    const Representative& rep = after->reps[i];
    if (before != nullptr && before->reps[i].count == rep.count) continue;
    const Tuple row({Value::Int(static_cast<int64_t>(oid)),
                     Value::String(rep.text), Value::Int(rep.count),
                     Value::String(DerivedKey(rep.text, rep.count))});
    if (before == nullptr) {
      INSIGHT_RETURN_NOT_OK(normalized_->Insert(row).status());
    } else {
      INSIGHT_ASSIGN_OR_RETURN(Oid existing, FindRow(oid, rep.text));
      if (existing == kInvalidOid) {
        INSIGHT_RETURN_NOT_OK(normalized_->Insert(row).status());
      } else {
        INSIGHT_RETURN_NOT_OK(normalized_->Update(existing, row));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<SummaryIndexHit>> BaselineClassifierIndex::Search(
    const ClassifierProbe& probe) const {
  const int64_t max_count = [&] {
    int64_t m = 9;
    for (int i = 1; i < options_.count_width; ++i) m = m * 10 + 9;
    return m;
  }();
  const std::string lower =
      DerivedKey(probe.label, probe.lower.value_or(0));
  const std::string upper =
      DerivedKey(probe.label, probe.upper.value_or(max_count));
  const BTree* idx = normalized_->GetColumnIndex("derived");
  INSIGHT_ASSIGN_OR_RETURN(
      BTree::Iterator it,
      idx->RangeScan(EncodeIndexKey(Value::String(lower)),
                     probe.lower_inclusive,
                     EncodeIndexKey(Value::String(upper)),
                     probe.upper_inclusive));
  std::vector<SummaryIndexHit> hits;
  for (; it.Valid(); it.Next()) {
    // Index payload is the normalized-row OID; resolve to the data tuple
    // OID (first level of indirection).
    INSIGHT_ASSIGN_OR_RETURN(Tuple row, normalized_->Get(it.value()));
    hits.push_back(SummaryIndexHit{
        row.at(2).AsInt(), static_cast<uint64_t>(row.at(0).AsInt()),
        static_cast<Oid>(row.at(0).AsInt())});
  }
  INSIGHT_RETURN_NOT_OK(it.status());
  return hits;
}

Result<Tuple> BaselineClassifierIndex::FetchDataTuple(
    const SummaryIndexHit& hit, Oid* oid_out) const {
  if (oid_out != nullptr) *oid_out = hit.oid;
  return mgr_->base()->Get(hit.oid);  // OID-index probe + heap read.
}

Result<SummaryObject> BaselineClassifierIndex::ReconstructObject(
    Oid tuple_oid) const {
  const BTree* by_tuple = normalized_->GetColumnIndex("tuple_oid");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> rows,
      by_tuple->Lookup(
          EncodeIndexKey(Value::Int(static_cast<int64_t>(tuple_oid)))));
  if (rows.empty()) {
    return Status::NotFound("tuple " + std::to_string(tuple_oid) +
                            " has no normalized classifier rows");
  }
  SummaryObject obj;
  obj.instance_id = instance_id_;
  obj.tuple_id = tuple_oid;
  obj.type = SummaryType::kClassifier;
  obj.instance_name = instance_name_;
  obj.reps.resize(labels_.size());
  obj.elements.resize(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    obj.reps[i] = Representative{labels_[i], 0, 0};
  }
  for (uint64_t row_oid : rows) {
    INSIGHT_ASSIGN_OR_RETURN(Tuple row, normalized_->Get(row_oid));
    for (size_t i = 0; i < labels_.size(); ++i) {
      if (EqualsIgnoreCase(labels_[i], row.at(1).AsString())) {
        obj.reps[i].count = row.at(2).AsInt();
        break;
      }
    }
  }
  return obj;
}

uint64_t BaselineClassifierIndex::replica_bytes() const {
  return normalized_->heap_bytes() + normalized_->oid_index_bytes();
}

uint64_t BaselineClassifierIndex::index_bytes() const {
  return normalized_->column_index_bytes("derived");
}

}  // namespace insight
