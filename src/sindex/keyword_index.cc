#include "sindex/keyword_index.h"

#include <algorithm>
#include <atomic>

#include "common/string_util.h"

namespace insight {

namespace {
// Distinguishes multiple indexes built over the same instance (e.g. a
// bulk rebuild next to the live one in tests/benches).
std::atomic<uint64_t> g_kw_index_counter{1};
}  // namespace

Result<std::unique_ptr<SnippetKeywordIndex>> SnippetKeywordIndex::Create(
    StorageManager* storage, BufferPool* pool, SummaryManager* mgr,
    const std::string& instance_name, Options options) {
  INSIGHT_ASSIGN_OR_RETURN(const SummaryInstance* inst,
                           mgr->FindInstance(instance_name));
  if (inst->type() != SummaryType::kSnippet) {
    return Status::InvalidArgument(
        "keyword index applies to Snippet-type instances; " + instance_name +
        " is a " + SummaryTypeToString(inst->type()) + " instance");
  }
  auto index = std::unique_ptr<SnippetKeywordIndex>(
      new SnippetKeywordIndex(storage, mgr));
  index->instance_id_ = inst->id();
  INSIGHT_ASSIGN_OR_RETURN(
      index->file_,
      storage->CreateFile(mgr->base()->name() + ".kw." +
                          ToLower(instance_name) + "." +
                          std::to_string(g_kw_index_counter.fetch_add(1)) +
                          ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool, index->file_));
  index->tree_ = std::make_unique<BTree>(std::move(tree));

  if (options.bulk_build) {
    SnippetKeywordIndex* raw = index.get();
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw](Oid oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            INSIGHT_RETURN_NOT_OK(raw->OnObjectChanged(oid, nullptr, &obj));
          }
          return Status::OK();
        }));
  }
  if (options.subscribe) {
    SnippetKeywordIndex* raw = index.get();
    index->listener_id_ =
        mgr->AddListener(inst->id(),
                         [raw](Oid oid, const SummaryObject* before,
                               const SummaryObject* after) {
                           return raw->OnObjectChanged(oid, before, after);
                         });
  }
  return index;
}

SnippetKeywordIndex::~SnippetKeywordIndex() {
  if (listener_id_.has_value()) mgr_->RemoveListener(*listener_id_);
}

std::set<std::string> SnippetKeywordIndex::WordsOf(const SummaryObject& obj) {
  std::set<std::string> words;
  for (const Representative& rep : obj.reps) {
    for (std::string& word : TokenizeWords(rep.text)) {
      words.insert(std::move(word));
    }
  }
  return words;
}

Status SnippetKeywordIndex::OnObjectChanged(Oid oid,
                                            const SummaryObject* before,
                                            const SummaryObject* after) {
  const std::set<std::string> old_words =
      before != nullptr ? WordsOf(*before) : std::set<std::string>{};
  const std::set<std::string> new_words =
      after != nullptr ? WordsOf(*after) : std::set<std::string>{};
  for (const std::string& word : old_words) {
    if (new_words.count(word) == 0) {
      INSIGHT_RETURN_NOT_OK(tree_->Delete(word, oid));
    }
  }
  for (const std::string& word : new_words) {
    if (old_words.count(word) == 0) {
      INSIGHT_RETURN_NOT_OK(tree_->Insert(word, oid));
    }
  }
  return Status::OK();
}

Result<std::vector<Oid>> SnippetKeywordIndex::Search(
    const std::string& keyword) const {
  INSIGHT_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                           tree_->Lookup(ToLower(keyword)));
  return std::vector<Oid>(hits.begin(), hits.end());
}

Result<std::vector<Oid>> SnippetKeywordIndex::SearchAll(
    const std::vector<std::string>& keywords) const {
  if (keywords.empty()) return std::vector<Oid>{};
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Oid> result, Search(keywords[0]));
  for (size_t i = 1; i < keywords.size() && !result.empty(); ++i) {
    INSIGHT_ASSIGN_OR_RETURN(std::vector<Oid> next, Search(keywords[i]));
    std::vector<Oid> intersection;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(intersection));
    result = std::move(intersection);
  }
  return result;
}

uint64_t SnippetKeywordIndex::size_bytes() const {
  PageStore* store = storage_->GetStore(file_);
  return store != nullptr ? store->size_bytes() : 0;
}

}  // namespace insight
