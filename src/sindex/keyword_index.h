#ifndef INSIGHTNOTES_SINDEX_KEYWORD_INDEX_H_
#define INSIGHTNOTES_SINDEX_KEYWORD_INDEX_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "summary/summary_manager.h"

namespace insight {

/// Inverted keyword index over one Snippet-type summary instance: each
/// distinct word of a tuple's snippets becomes a (word -> tuple OID)
/// B-Tree entry. Accelerates the containsSingle/containsUnion predicates
/// of Section 3.1 — the "searching the snippets" side of the
/// accuracy/performance tradeoff the paper studies in its companion
/// technical report [16]. An extension beyond the paper's Classifier-only
/// indexing scheme (its "more implementation choices" future work).
///
/// Exactness: containsUnion(kw1..kwn) is TRUE iff every keyword appears
/// in some snippet of the tuple, which is precisely the intersection of
/// the per-keyword posting lists — no residual needed. containsSingle
/// additionally requires one snippet to hold all keywords, so the
/// intersection is a candidate superset and the predicate is re-checked.
class SnippetKeywordIndex {
 public:
  struct Options {
    bool bulk_build = true;
    bool subscribe = true;
  };

  static Result<std::unique_ptr<SnippetKeywordIndex>> Create(
      StorageManager* storage, BufferPool* pool, SummaryManager* mgr,
      const std::string& instance_name, Options options);

  /// Deregisters the maintenance subscription.
  ~SnippetKeywordIndex();

  /// OIDs of tuples whose snippets contain `keyword` (whole word,
  /// case-insensitive), ascending.
  Result<std::vector<Oid>> Search(const std::string& keyword) const;

  /// OIDs containing every keyword (posting-list intersection).
  Result<std::vector<Oid>> SearchAll(
      const std::vector<std::string>& keywords) const;

  Status OnObjectChanged(Oid oid, const SummaryObject* before,
                         const SummaryObject* after);

  uint64_t num_entries() const { return tree_->num_entries(); }
  uint64_t size_bytes() const;

 private:
  SnippetKeywordIndex(StorageManager* storage, SummaryManager* mgr)
      : storage_(storage), mgr_(mgr) {}

  static std::set<std::string> WordsOf(const SummaryObject& obj);

  StorageManager* storage_;
  SummaryManager* mgr_;
  uint32_t instance_id_ = 0;
  FileId file_ = 0;
  std::unique_ptr<BTree> tree_;
  std::optional<SummaryManager::ListenerId> listener_id_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SINDEX_KEYWORD_INDEX_H_
