#include "sindex/summary_btree.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

namespace {

// Distinguishes successive indexes over the same instance (drop +
// re-add, or parallel pointer-mode variants in benches).
std::atomic<uint64_t> g_sbt_counter{1};

int DigitsOf(int64_t v) {
  int digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

// Parses the count back out of an itemized key ("Disease:008" -> 8).
int64_t CountOfKey(const std::string& key) {
  const size_t pos = key.rfind(':');
  if (pos == std::string::npos) return 0;
  return std::strtoll(key.c_str() + pos + 1, nullptr, 10);
}

}  // namespace

std::string SummaryBTree::ItemizeKey(std::string_view label, int64_t count,
                                     int width) {
  std::string key(label);
  key += ':';
  key += ZeroPad(count, width);
  return key;
}

Result<std::unique_ptr<SummaryBTree>> SummaryBTree::Create(
    StorageManager* storage, BufferPool* pool, SummaryManager* mgr,
    const std::string& instance_name, Options options) {
  INSIGHT_ASSIGN_OR_RETURN(const SummaryInstance* inst,
                           mgr->FindInstance(instance_name));
  if (inst->type() != SummaryType::kClassifier) {
    return Status::InvalidArgument(
        "Summary-BTree indexes Classifier-type instances; " + instance_name +
        " is a " + SummaryTypeToString(inst->type()) + " instance");
  }
  for (const std::string& label : inst->labels()) {
    if (label.find(':') != std::string::npos) {
      return Status::InvalidArgument("class label '" + label +
                                     "' contains the itemization separator");
    }
  }
  auto index = std::unique_ptr<SummaryBTree>(
      new SummaryBTree(storage, pool, mgr, options));
  index->instance_id_ = inst->id();
  index->instance_name_ = inst->name();
  const char* mode_tag =
      options.pointer_mode == PointerMode::kBackward ? "bwd" : "conv";
  INSIGHT_ASSIGN_OR_RETURN(
      index->file_,
      storage->CreateFile(mgr->base()->name() + ".sbt." +
                          ToLower(instance_name) + "." + mode_tag + "." +
                          std::to_string(g_sbt_counter.fetch_add(1)) +
                          ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool, index->file_));
  index->tree_ = std::make_unique<BTree>(std::move(tree));

  if (options.bulk_build) {
    SummaryBTree* raw = index.get();
    // Pass 1: size the ExtendedAnnotationCnt field so the build never
    // triggers a mid-bulk rebuild.
    int64_t max_count = 0;
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw, &max_count](Oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            for (const Representative& rep : obj.reps) {
              max_count = std::max(max_count, rep.count);
            }
          }
          return Status::OK();
        }));
    raw->width_ = std::max(raw->width_, DigitsOf(max_count));
    // Pass 2: itemize and insert; the backward pointer is computed once
    // per tuple, not once per label key.
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw](Oid oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            INSIGHT_ASSIGN_OR_RETURN(uint64_t payload,
                                     raw->MakePayload(oid));
            for (const Representative& rep : obj.reps) {
              ++raw->stats_.key_inserts;
              INSIGHT_RETURN_NOT_OK(raw->tree_->Insert(
                  ItemizeKey(rep.text, rep.count, raw->width_), payload));
            }
          }
          return Status::OK();
        }));
  }
  if (options.subscribe) {
    SummaryBTree* raw = index.get();
    index->listener_id_ =
        mgr->AddListener(inst->id(),
                         [raw](Oid oid, const SummaryObject* before,
                               const SummaryObject* after) {
                           return raw->OnObjectChanged(oid, before, after);
                         });
  }
  return index;
}

SummaryBTree::~SummaryBTree() {
  if (listener_id_.has_value()) mgr_->RemoveListener(*listener_id_);
}

Result<uint64_t> SummaryBTree::MakePayload(Oid oid) const {
  Transaction* txn = CurrentTxn();
  const Snapshot snap = txn != nullptr ? txn->snapshot() : Snapshot::Latest();
  if (options_.pointer_mode == PointerMode::kBackward) {
    // diskTupleLoc(): B-Tree probe on R's OID index, O(log_B M).
    INSIGHT_ASSIGN_OR_RETURN(RowLocation loc,
                             mgr_->base()->DiskTupleLoc(oid, snap));
    return loc.Pack();
  }
  INSIGHT_ASSIGN_OR_RETURN(Oid storage_row, mgr_->StorageRowFor(oid, snap));
  if (storage_row == kInvalidOid) {
    return Status::Internal("no summary-storage row for tuple " +
                            std::to_string(oid));
  }
  return static_cast<uint64_t>(storage_row);
}

bool SummaryBTree::EntryVisible(const std::string& label, int64_t count,
                                uint64_t payload, const Snapshot& snap) const {
  std::lock_guard<std::mutex> lk(ver_mu_);
  auto it = versions_.find(EntryId{label, count, payload});
  if (it == versions_.end()) return true;  // Long-committed entry.
  return VersionVisible(it->second.begin, it->second.end, snap);
}

Status SummaryBTree::InsertKey(std::string_view label, int64_t count,
                               Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
  ++stats_.key_inserts;
  EngineMetrics::Get().sbtree_key_inserts->Add(1);
  Transaction* txn = CurrentTxn();
  const EntryId id{std::string(label), count, payload};
  if (txn == nullptr) {
    {
      std::lock_guard<std::mutex> lk(ver_mu_);
      versions_.erase(id);
    }
    return tree_->Insert(ItemizeKey(label, count, width_), payload);
  }

  const Ts marker = txn->stamp();
  {
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end()) {
      EntryStamp& st = it->second;
      if (st.end == marker) {
        // Re-inserting an entry this transaction deleted earlier: cancel
        // the delete intent (its closures see end != marker and no-op).
        st.end = kTsInfinity;
        return Status::OK();
      }
      if (st.begin == marker && st.end == kTsInfinity) {
        return Status::OK();  // Already ours and live.
      }
      // Another transaction owns this entry, or a committed-dead copy is
      // still visible to an old snapshot; a single [begin, end) interval
      // cannot hold both histories. First writer (or history) wins.
      return Status::Aborted("summary index entry " + id.label + ":" +
                             std::to_string(count) + " is contended");
    }
    versions_.emplace(id, EntryStamp{marker, kTsInfinity});
  }
  INSIGHT_RETURN_NOT_OK(
      tree_->Insert(ItemizeKey(label, count, width_), payload));
  txn->OnCommit([this, id, marker](Ts commit_ts) {
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end() && it->second.begin == marker) {
      it->second.begin = commit_ts;
    }
  });
  txn->OnAbort([this, id, marker]() {
    bool drop = false;
    {
      std::lock_guard<std::mutex> lk(ver_mu_);
      auto it = versions_.find(id);
      if (it != versions_.end() && it->second.begin == marker) {
        versions_.erase(it);
        drop = true;
      }
    }
    if (drop) {
      const Status st =
          tree_->Delete(ItemizeKey(id.label, id.count, width_), id.payload);
      if (!st.ok() && !st.IsNotFound()) {
        INSIGHT_LOG(Error) << "summary index insert undo: " << st.ToString();
      }
    }
  });
  txn->OnGc([this, id](Ts horizon) {
    // Once every snapshot starts at/after the commit, the entry needs no
    // sidecar record anymore (implicit = committed forever).
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end() && !IsTxnStamp(it->second.begin) &&
        it->second.begin <= horizon && it->second.end == kTsInfinity) {
      versions_.erase(it);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status SummaryBTree::DeleteKey(std::string_view label, int64_t count,
                               Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
  ++stats_.key_deletes;
  EngineMetrics::Get().sbtree_key_deletes->Add(1);
  Transaction* txn = CurrentTxn();
  const EntryId id{std::string(label), count, payload};
  if (txn == nullptr) {
    {
      std::lock_guard<std::mutex> lk(ver_mu_);
      versions_.erase(id);
    }
    return tree_->Delete(ItemizeKey(label, count, width_), payload);
  }

  const Ts marker = txn->stamp();
  bool physical = false;
  {
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end()) {
      EntryStamp& st = it->second;
      if (st.begin == marker && st.end == kTsInfinity) {
        // Deleting our own uncommitted insert: remove it outright (the
        // insert's closures see the record gone and no-op).
        versions_.erase(it);
        physical = true;
      } else if (IsTxnStamp(st.begin) || IsTxnStamp(st.end) ||
                 st.end != kTsInfinity) {
        return Status::Aborted("summary index entry " + id.label + ":" +
                               std::to_string(count) + " is contended");
      } else {
        st.end = marker;  // Committed entry: mark the delete intent.
      }
    } else {
      versions_.emplace(id, EntryStamp{0, marker});
    }
  }
  if (physical) {
    return tree_->Delete(ItemizeKey(label, count, width_), payload);
  }
  txn->OnCommit([this, id, marker](Ts commit_ts) {
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end() && it->second.end == marker) {
      it->second.end = commit_ts;
    }
  });
  txn->OnAbort([this, id, marker]() {
    std::lock_guard<std::mutex> lk(ver_mu_);
    auto it = versions_.find(id);
    if (it != versions_.end() && it->second.end == marker) {
      if (it->second.begin == 0) {
        versions_.erase(it);  // Back to the implicit committed state.
      } else {
        it->second.end = kTsInfinity;
      }
    }
  });
  txn->OnGc([this, id](Ts horizon) {
    bool drop = false;
    {
      std::lock_guard<std::mutex> lk(ver_mu_);
      auto it = versions_.find(id);
      if (it != versions_.end() && !IsTxnStamp(it->second.end) &&
          it->second.end != kTsInfinity && it->second.end <= horizon) {
        versions_.erase(it);
        drop = true;
      }
    }
    if (!drop) return Status::OK();
    return tree_->Delete(ItemizeKey(id.label, id.count, width_), id.payload);
  });
  return Status::OK();
}

Status SummaryBTree::OnObjectChanged(Oid oid, const SummaryObject* before,
                                     const SummaryObject* after) {
  if (before == nullptr && after == nullptr) return Status::OK();
  // Width check first: a count outgrowing the ExtendedAnnotationCnt field
  // rebuilds the whole index from (already persisted) summary storage, so
  // per-key maintenance for this event must not run on top of it.
  if (after != nullptr) {
    int64_t max_count = 0;
    for (const Representative& rep : after->reps) {
      max_count = std::max(max_count, rep.count);
    }
    if (DigitsOf(max_count) > width_) {
      INSIGHT_RETURN_NOT_OK(WidenAndRebuild(max_count));
      // Outside a transaction the rebuild already read the final storage
      // state, so the event is fully absorbed. Under a transaction it
      // read the latest *committed* state: the event's own delta still
      // needs versioned per-key maintenance below.
      if (CurrentTxn() == nullptr) return Status::OK();
    }
  }
  if (before == nullptr) {
    // Adding Annotation - Insertion: all k class labels enter the index.
    for (size_t i = 0; i < after->reps.size(); ++i) {
      INSIGHT_RETURN_NOT_OK(
          InsertKey(after->reps[i].text, after->reps[i].count, oid));
    }
    return Status::OK();
  }
  if (after == nullptr) {
    // Tuple (or instance) removal: all label keys leave.
    for (size_t i = 0; i < before->reps.size(); ++i) {
      INSIGHT_RETURN_NOT_OK(
          DeleteKey(before->reps[i].text, before->reps[i].count, oid));
    }
    return Status::OK();
  }
  // Adding Annotation - Update: delete + re-insert only the modified
  // labels (Section 4.1.2).
  if (before->reps.size() != after->reps.size()) {
    return Status::Internal("classifier label set changed under the index");
  }
  for (size_t i = 0; i < after->reps.size(); ++i) {
    if (before->reps[i].count == after->reps[i].count) continue;
    INSIGHT_RETURN_NOT_OK(
        DeleteKey(before->reps[i].text, before->reps[i].count, oid));
    // Recovery invariant under test: a crash here leaves the in-memory
    // index with the old key removed and the new one absent; replaying
    // the log's maintenance protocol must regenerate both consistently.
    INSIGHT_CRASH_POINT("sbtree_maintenance");
    INSIGHT_RETURN_NOT_OK(
        InsertKey(after->reps[i].text, after->reps[i].count, oid));
  }
  return Status::OK();
}

Status SummaryBTree::WidenAndRebuild(int64_t new_max_count) {
  ++stats_.rebuilds;
  EngineMetrics::Get().sbtree_rebuilds->Add(1);
  width_ = DigitsOf(new_max_count);
  ++rebuild_generation_;
  const char* mode_tag =
      options_.pointer_mode == PointerMode::kBackward ? "bwd" : "conv";
  INSIGHT_ASSIGN_OR_RETURN(
      FileId file,
      storage_->CreateFile(mgr_->base()->name() + ".sbt." +
                           ToLower(instance_name_) + "." + mode_tag + ".v" +
                           std::to_string(rebuild_generation_) + ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_, file));
  file_ = file;
  tree_ = std::make_unique<BTree>(std::move(tree));
  // Re-itemize every object of this instance at the new width. The scan
  // sees the latest committed storage rows only, so uncommitted entries
  // (tracked in the sidecar) are re-applied afterwards.
  INSIGHT_RETURN_NOT_OK(mgr_->ForEachSummaryRow(
      [this](Oid oid, const SummarySet& set) -> Status {
        for (const SummaryObject& obj : set.objects()) {
          if (obj.instance_id != instance_id_) continue;
          INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
          for (const Representative& rep : obj.reps) {
            INSIGHT_RETURN_NOT_OK(tree_->Insert(
                ItemizeKey(rep.text, rep.count, width_), payload));
          }
        }
        return Status::OK();
      }));
  std::vector<EntryId> uncommitted;
  {
    std::lock_guard<std::mutex> lk(ver_mu_);
    for (const auto& [id, st] : versions_) {
      if (IsTxnStamp(st.begin)) uncommitted.push_back(id);
    }
  }
  for (const EntryId& id : uncommitted) {
    INSIGHT_RETURN_NOT_OK(
        tree_->Insert(ItemizeKey(id.label, id.count, width_), id.payload));
  }
  return Status::OK();
}

Result<std::vector<SummaryIndexHit>> SummaryBTree::Search(
    const ClassifierProbe& probe, const Snapshot& snap) const {
  EngineMetrics::Get().sbtree_probes->Add(1);
  const int64_t max_count = [&] {
    int64_t m = 9;
    for (int i = 1; i < width_; ++i) m = m * 10 + 9;
    return m;
  }();
  const int64_t lo = probe.lower.value_or(0);
  const int64_t hi = probe.upper.value_or(max_count);
  const std::string lower_key = ItemizeKey(probe.label, lo, width_);
  const std::string upper_key = ItemizeKey(probe.label, hi, width_);
  INSIGHT_ASSIGN_OR_RETURN(
      BTree::Iterator it,
      tree_->RangeScan(lower_key, probe.lower_inclusive, upper_key,
                       probe.upper_inclusive));
  std::vector<SummaryIndexHit> hits;
  for (; it.Valid(); it.Next()) {
    const int64_t count = CountOfKey(it.key());
    if (!EntryVisible(probe.label, count, it.value(), snap)) continue;
    hits.push_back(SummaryIndexHit{count, it.value(), kInvalidOid});
  }
  INSIGHT_RETURN_NOT_OK(it.status());
  return hits;
}

Result<std::vector<SummaryIndexHit>> SummaryBTree::ScanLabel(
    const std::string& label, const Snapshot& snap) const {
  ClassifierProbe probe;
  probe.label = label;
  return Search(probe, snap);
}

Result<Tuple> SummaryBTree::FetchDataTuple(const SummaryIndexHit& hit,
                                           Oid* oid_out,
                                           const Snapshot& snap) const {
  if (options_.pointer_mode == PointerMode::kBackward) {
    // One direct heap read; no SummaryStorage involvement.
    EngineMetrics::Get().sbtree_backward_derefs->Add(1);
    return mgr_->base()->GetAt(RowLocation::Unpack(hit.payload), oid_out,
                               snap);
  }
  // Conventional: indexed-object row -> tuple OID -> OID-index probe ->
  // heap read (the extra level of indirection of Fig. 4(c)).
  INSIGHT_ASSIGN_OR_RETURN(Tuple storage_row,
                           mgr_->storage_table()->Get(hit.payload, snap));
  const Oid oid = static_cast<Oid>(storage_row.at(0).AsInt());
  if (oid_out != nullptr) *oid_out = oid;
  return mgr_->base()->Get(oid, snap);
}

Result<Tuple> SummaryBTree::FetchDataTupleWithSummaries(
    const SummaryIndexHit& hit, SummarySet* summaries, Oid* oid_out,
    const Snapshot& snap) const {
  if (options_.pointer_mode == PointerMode::kBackward) {
    EngineMetrics::Get().sbtree_backward_derefs->Add(1);
    Oid oid = kInvalidOid;
    INSIGHT_ASSIGN_OR_RETURN(
        Tuple tuple, mgr_->base()->GetAt(RowLocation::Unpack(hit.payload),
                                         &oid, snap));
    if (oid_out != nullptr) *oid_out = oid;
    INSIGHT_ASSIGN_OR_RETURN(*summaries, mgr_->GetSummaries(oid, snap));
    return tuple;
  }
  INSIGHT_ASSIGN_OR_RETURN(Tuple storage_row,
                           mgr_->storage_table()->Get(hit.payload, snap));
  const Oid oid = static_cast<Oid>(storage_row.at(0).AsInt());
  if (oid_out != nullptr) *oid_out = oid;
  INSIGHT_ASSIGN_OR_RETURN(
      *summaries, SummarySet::Deserialize(storage_row.at(1).AsString()));
  return mgr_->base()->Get(oid, snap);
}

uint64_t SummaryBTree::size_bytes() const {
  PageStore* store = storage_->GetStore(file_);
  return store != nullptr ? store->size_bytes() : 0;
}

}  // namespace insight
