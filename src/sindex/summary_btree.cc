#include "sindex/summary_btree.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

namespace {

// Distinguishes successive indexes over the same instance (drop +
// re-add, or parallel pointer-mode variants in benches).
std::atomic<uint64_t> g_sbt_counter{1};

int DigitsOf(int64_t v) {
  int digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

// Parses the count back out of an itemized key ("Disease:008" -> 8).
int64_t CountOfKey(const std::string& key) {
  const size_t pos = key.rfind(':');
  if (pos == std::string::npos) return 0;
  return std::strtoll(key.c_str() + pos + 1, nullptr, 10);
}

}  // namespace

std::string SummaryBTree::ItemizeKey(std::string_view label, int64_t count,
                                     int width) {
  std::string key(label);
  key += ':';
  key += ZeroPad(count, width);
  return key;
}

Result<std::unique_ptr<SummaryBTree>> SummaryBTree::Create(
    StorageManager* storage, BufferPool* pool, SummaryManager* mgr,
    const std::string& instance_name, Options options) {
  INSIGHT_ASSIGN_OR_RETURN(const SummaryInstance* inst,
                           mgr->FindInstance(instance_name));
  if (inst->type() != SummaryType::kClassifier) {
    return Status::InvalidArgument(
        "Summary-BTree indexes Classifier-type instances; " + instance_name +
        " is a " + SummaryTypeToString(inst->type()) + " instance");
  }
  for (const std::string& label : inst->labels()) {
    if (label.find(':') != std::string::npos) {
      return Status::InvalidArgument("class label '" + label +
                                     "' contains the itemization separator");
    }
  }
  auto index = std::unique_ptr<SummaryBTree>(
      new SummaryBTree(storage, pool, mgr, options));
  index->instance_id_ = inst->id();
  index->instance_name_ = inst->name();
  const char* mode_tag =
      options.pointer_mode == PointerMode::kBackward ? "bwd" : "conv";
  INSIGHT_ASSIGN_OR_RETURN(
      index->file_,
      storage->CreateFile(mgr->base()->name() + ".sbt." +
                          ToLower(instance_name) + "." + mode_tag + "." +
                          std::to_string(g_sbt_counter.fetch_add(1)) +
                          ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool, index->file_));
  index->tree_ = std::make_unique<BTree>(std::move(tree));

  if (options.bulk_build) {
    SummaryBTree* raw = index.get();
    // Pass 1: size the ExtendedAnnotationCnt field so the build never
    // triggers a mid-bulk rebuild.
    int64_t max_count = 0;
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw, &max_count](Oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            for (const Representative& rep : obj.reps) {
              max_count = std::max(max_count, rep.count);
            }
          }
          return Status::OK();
        }));
    raw->width_ = std::max(raw->width_, DigitsOf(max_count));
    // Pass 2: itemize and insert; the backward pointer is computed once
    // per tuple, not once per label key.
    INSIGHT_RETURN_NOT_OK(mgr->ForEachSummaryRow(
        [raw](Oid oid, const SummarySet& set) -> Status {
          for (const SummaryObject& obj : set.objects()) {
            if (obj.instance_id != raw->instance_id_) continue;
            INSIGHT_ASSIGN_OR_RETURN(uint64_t payload,
                                     raw->MakePayload(oid));
            for (const Representative& rep : obj.reps) {
              ++raw->stats_.key_inserts;
              INSIGHT_RETURN_NOT_OK(raw->tree_->Insert(
                  ItemizeKey(rep.text, rep.count, raw->width_), payload));
            }
          }
          return Status::OK();
        }));
  }
  if (options.subscribe) {
    SummaryBTree* raw = index.get();
    index->listener_id_ =
        mgr->AddListener(inst->id(),
                         [raw](Oid oid, const SummaryObject* before,
                               const SummaryObject* after) {
                           return raw->OnObjectChanged(oid, before, after);
                         });
  }
  return index;
}

SummaryBTree::~SummaryBTree() {
  if (listener_id_.has_value()) mgr_->RemoveListener(*listener_id_);
}

Result<uint64_t> SummaryBTree::MakePayload(Oid oid) const {
  if (options_.pointer_mode == PointerMode::kBackward) {
    // diskTupleLoc(): B-Tree probe on R's OID index, O(log_B M).
    INSIGHT_ASSIGN_OR_RETURN(RowLocation loc,
                             mgr_->base()->DiskTupleLoc(oid));
    return loc.Pack();
  }
  INSIGHT_ASSIGN_OR_RETURN(Oid storage_row, mgr_->StorageRowFor(oid));
  if (storage_row == kInvalidOid) {
    return Status::Internal("no summary-storage row for tuple " +
                            std::to_string(oid));
  }
  return static_cast<uint64_t>(storage_row);
}

Status SummaryBTree::InsertKey(std::string_view label, int64_t count,
                               Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
  ++stats_.key_inserts;
  EngineMetrics::Get().sbtree_key_inserts->Add(1);
  return tree_->Insert(ItemizeKey(label, count, width_), payload);
}

Status SummaryBTree::DeleteKey(std::string_view label, int64_t count,
                               Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
  ++stats_.key_deletes;
  EngineMetrics::Get().sbtree_key_deletes->Add(1);
  return tree_->Delete(ItemizeKey(label, count, width_), payload);
}

Status SummaryBTree::OnObjectChanged(Oid oid, const SummaryObject* before,
                                     const SummaryObject* after) {
  if (before == nullptr && after == nullptr) return Status::OK();
  // Width check first: a count outgrowing the ExtendedAnnotationCnt field
  // rebuilds the whole index from (already persisted) summary storage, so
  // per-key maintenance for this event must not run on top of it.
  if (after != nullptr) {
    int64_t max_count = 0;
    for (const Representative& rep : after->reps) {
      max_count = std::max(max_count, rep.count);
    }
    if (DigitsOf(max_count) > width_) {
      return WidenAndRebuild(max_count);
    }
  }
  if (before == nullptr) {
    // Adding Annotation - Insertion: all k class labels enter the index.
    for (size_t i = 0; i < after->reps.size(); ++i) {
      INSIGHT_RETURN_NOT_OK(
          InsertKey(after->reps[i].text, after->reps[i].count, oid));
    }
    return Status::OK();
  }
  if (after == nullptr) {
    // Tuple (or instance) removal: all label keys leave.
    for (size_t i = 0; i < before->reps.size(); ++i) {
      INSIGHT_RETURN_NOT_OK(
          DeleteKey(before->reps[i].text, before->reps[i].count, oid));
    }
    return Status::OK();
  }
  // Adding Annotation - Update: delete + re-insert only the modified
  // labels (Section 4.1.2).
  if (before->reps.size() != after->reps.size()) {
    return Status::Internal("classifier label set changed under the index");
  }
  for (size_t i = 0; i < after->reps.size(); ++i) {
    if (before->reps[i].count == after->reps[i].count) continue;
    INSIGHT_RETURN_NOT_OK(
        DeleteKey(before->reps[i].text, before->reps[i].count, oid));
    // Recovery invariant under test: a crash here leaves the in-memory
    // index with the old key removed and the new one absent; replaying
    // the log's maintenance protocol must regenerate both consistently.
    INSIGHT_CRASH_POINT("sbtree_maintenance");
    INSIGHT_RETURN_NOT_OK(
        InsertKey(after->reps[i].text, after->reps[i].count, oid));
  }
  return Status::OK();
}

Status SummaryBTree::WidenAndRebuild(int64_t new_max_count) {
  ++stats_.rebuilds;
  EngineMetrics::Get().sbtree_rebuilds->Add(1);
  width_ = DigitsOf(new_max_count);
  ++rebuild_generation_;
  const char* mode_tag =
      options_.pointer_mode == PointerMode::kBackward ? "bwd" : "conv";
  INSIGHT_ASSIGN_OR_RETURN(
      FileId file,
      storage_->CreateFile(mgr_->base()->name() + ".sbt." +
                           ToLower(instance_name_) + "." + mode_tag + ".v" +
                           std::to_string(rebuild_generation_) + ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_, file));
  file_ = file;
  tree_ = std::make_unique<BTree>(std::move(tree));
  // Re-itemize every object of this instance at the new width.
  return mgr_->ForEachSummaryRow(
      [this](Oid oid, const SummarySet& set) -> Status {
        for (const SummaryObject& obj : set.objects()) {
          if (obj.instance_id != instance_id_) continue;
          INSIGHT_ASSIGN_OR_RETURN(uint64_t payload, MakePayload(oid));
          for (const Representative& rep : obj.reps) {
            INSIGHT_RETURN_NOT_OK(tree_->Insert(
                ItemizeKey(rep.text, rep.count, width_), payload));
          }
        }
        return Status::OK();
      });
}

Result<std::vector<SummaryIndexHit>> SummaryBTree::Search(
    const ClassifierProbe& probe) const {
  EngineMetrics::Get().sbtree_probes->Add(1);
  const int64_t max_count = [&] {
    int64_t m = 9;
    for (int i = 1; i < width_; ++i) m = m * 10 + 9;
    return m;
  }();
  const int64_t lo = probe.lower.value_or(0);
  const int64_t hi = probe.upper.value_or(max_count);
  const std::string lower_key = ItemizeKey(probe.label, lo, width_);
  const std::string upper_key = ItemizeKey(probe.label, hi, width_);
  INSIGHT_ASSIGN_OR_RETURN(
      BTree::Iterator it,
      tree_->RangeScan(lower_key, probe.lower_inclusive, upper_key,
                       probe.upper_inclusive));
  std::vector<SummaryIndexHit> hits;
  for (; it.Valid(); it.Next()) {
    hits.push_back(SummaryIndexHit{CountOfKey(it.key()), it.value(),
                                   kInvalidOid});
  }
  INSIGHT_RETURN_NOT_OK(it.status());
  return hits;
}

Result<std::vector<SummaryIndexHit>> SummaryBTree::ScanLabel(
    const std::string& label) const {
  ClassifierProbe probe;
  probe.label = label;
  return Search(probe);
}

Result<Tuple> SummaryBTree::FetchDataTuple(const SummaryIndexHit& hit,
                                           Oid* oid_out) const {
  if (options_.pointer_mode == PointerMode::kBackward) {
    // One direct heap read; no SummaryStorage involvement.
    EngineMetrics::Get().sbtree_backward_derefs->Add(1);
    return mgr_->base()->GetAt(RowLocation::Unpack(hit.payload), oid_out);
  }
  // Conventional: indexed-object row -> tuple OID -> OID-index probe ->
  // heap read (the extra level of indirection of Fig. 4(c)).
  INSIGHT_ASSIGN_OR_RETURN(Tuple storage_row,
                           mgr_->storage_table()->Get(hit.payload));
  const Oid oid = static_cast<Oid>(storage_row.at(0).AsInt());
  if (oid_out != nullptr) *oid_out = oid;
  return mgr_->base()->Get(oid);
}

Result<Tuple> SummaryBTree::FetchDataTupleWithSummaries(
    const SummaryIndexHit& hit, SummarySet* summaries, Oid* oid_out) const {
  if (options_.pointer_mode == PointerMode::kBackward) {
    EngineMetrics::Get().sbtree_backward_derefs->Add(1);
    Oid oid = kInvalidOid;
    INSIGHT_ASSIGN_OR_RETURN(
        Tuple tuple, mgr_->base()->GetAt(RowLocation::Unpack(hit.payload),
                                         &oid));
    if (oid_out != nullptr) *oid_out = oid;
    INSIGHT_ASSIGN_OR_RETURN(*summaries, mgr_->GetSummaries(oid));
    return tuple;
  }
  INSIGHT_ASSIGN_OR_RETURN(Tuple storage_row,
                           mgr_->storage_table()->Get(hit.payload));
  const Oid oid = static_cast<Oid>(storage_row.at(0).AsInt());
  if (oid_out != nullptr) *oid_out = oid;
  INSIGHT_ASSIGN_OR_RETURN(
      *summaries, SummarySet::Deserialize(storage_row.at(1).AsString()));
  return mgr_->base()->Get(oid);
}

uint64_t SummaryBTree::size_bytes() const {
  PageStore* store = storage_->GetStore(file_);
  return store != nullptr ? store->size_bytes() : 0;
}

}  // namespace insight
