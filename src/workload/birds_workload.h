#ifndef INSIGHTNOTES_WORKLOAD_BIRDS_WORKLOAD_H_
#define INSIGHTNOTES_WORKLOAD_BIRDS_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/database.h"

namespace insight {

/// Annotation topics matching the paper's ClassBird1 labels. Each topic
/// has a distinctive vocabulary so the Naive Bayes instance classifies
/// generated annotations accurately.
enum class AnnotationTopic { kDisease = 0, kAnatomy, kBehavior, kOther };
constexpr size_t kNumTopics = 4;

const char* AnnotationTopicLabel(AnnotationTopic topic);

/// Synthetic stand-in for the AKN ornithological corpus (see DESIGN.md's
/// substitution table): same schema shape (12 attributes), annotation
/// length distribution (150 to ~8,000 characters with a long-text tail
/// that feeds the Snippet instance), and per-class keyword signal.
struct BirdsWorkloadOptions {
  uint64_t seed = 42;
  /// Paper: 45,000. Default is 1/10 scale for laptop runs.
  size_t num_birds = 4500;
  /// Average raw annotations per bird; the paper sweeps 10 -> 200.
  size_t annotations_per_bird = 10;
  /// Synonyms rows per bird (paper: ~225,000 over 45,000 birds = 5).
  size_t synonyms_per_bird = 5;
  /// Annotation text lengths (paper: 150-8,000 chars). The long tail is
  /// capped by default to keep laptop runs quick; raise max_ann_chars to
  /// the paper's 8,000 for full-size runs.
  size_t min_ann_chars = 150;
  size_t max_ann_chars = 2000;
  /// Fraction of annotations exceeding the snippet threshold (1,000).
  double long_annotation_fraction = 0.15;
  /// Skew of annotation placement across birds (0 = uniform).
  double placement_skew = 0.0;
  /// Link + index setup.
  bool link_classifier = true;
  bool classifier_indexable = true;
  bool link_snippet = true;
  bool build_baseline_index = false;
};

/// Generates one annotation text of the given topic and length.
std::string GenerateAnnotationText(AnnotationTopic topic, size_t target_chars,
                                   Rng* rng);

/// Draws a topic (Disease 20%, Anatomy 25%, Behavior 35%, Other 20%).
AnnotationTopic DrawTopic(Rng* rng);

/// Result handle for a generated corpus.
struct BirdsWorkload {
  size_t num_birds = 0;
  size_t num_annotations = 0;
  size_t num_synonyms = 0;
  std::string birds_table = "Birds";
  std::string synonyms_table = "Synonyms";
};

/// Creates the Birds table (12 attributes), defines/links the ClassBird1
/// classifier ({Disease, Anatomy, Behavior, Other}) and TextSummary1
/// snippet instances, loads birds and raw annotations, and (optionally)
/// the Synonyms side table. Instances are linked BEFORE annotations
/// arrive, as the paper's setup does.
Result<BirdsWorkload> GenerateBirdsWorkload(Database* db,
                                            const BirdsWorkloadOptions& opts);

/// Appends the Synonyms table (bird_id INT, bird_name TEXT, synonym TEXT)
/// with an index on bird_name, linked m:1 to Birds.
Result<size_t> GenerateSynonyms(Database* db, size_t num_birds,
                                size_t per_bird, uint64_t seed);

/// Adds `count` annotations to random birds (for incremental-maintenance
/// experiments); returns the generated annotation ids.
Result<std::vector<AnnId>> AddRandomAnnotations(Database* db,
                                                const std::string& table,
                                                size_t num_birds,
                                                size_t count, Rng* rng,
                                                const BirdsWorkloadOptions&
                                                    opts);

}  // namespace insight

#endif  // INSIGHTNOTES_WORKLOAD_BIRDS_WORKLOAD_H_
