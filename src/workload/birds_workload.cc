#include "workload/birds_workload.h"

#include <array>

namespace insight {

namespace {

// Topic vocabularies: the signal words the classifier keys on.
const std::vector<std::string>& TopicVocabulary(AnnotationTopic topic) {
  static const std::vector<std::string> kDisease = {
      "disease", "infection", "avian", "influenza", "virus",   "sick",
      "parasite", "outbreak",  "lesion", "symptom",  "illness", "pathogen"};
  static const std::vector<std::string> kAnatomy = {
      "wingspan", "beak",    "plumage", "feather", "anatomy", "skeletal",
      "weight",   "measure", "bone",    "wing",    "tail",    "crest"};
  static const std::vector<std::string> kBehavior = {
      "eating",    "foraging", "migration", "nesting", "behavior", "stonewort",
      "courtship", "feeding",  "flocking",  "singing", "diving",   "roosting"};
  static const std::vector<std::string> kOther = {
      "comment", "note",     "record", "provenance", "citation", "source",
      "remark",  "metadata", "survey", "sighting",   "misc",     "general"};
  switch (topic) {
    case AnnotationTopic::kDisease:
      return kDisease;
    case AnnotationTopic::kAnatomy:
      return kAnatomy;
    case AnnotationTopic::kBehavior:
      return kBehavior;
    case AnnotationTopic::kOther:
      return kOther;
  }
  return kOther;
}

const std::vector<std::string>& FillerVocabulary() {
  static const std::vector<std::string> kFiller = {
      "the",   "observed", "near",   "lake",   "during", "morning",
      "adult", "specimen", "was",    "seen",   "with",   "several",
      "group", "region",   "spring", "autumn", "field",  "station"};
  return kFiller;
}

const std::vector<std::string>& FamilyNames() {
  static const std::vector<std::string> kFamilies = {
      "Anatidae",   "Ardeidae",  "Gruidae",      "Passeridae", "Corvidae",
      "Laridae",    "Accipitridae", "Strigidae", "Picidae",    "Columbidae",
      "Trochilidae", "Falconidae"};
  return kFamilies;
}

const std::vector<std::string>& GenusNames() {
  static const std::vector<std::string> kGenera = {
      "Anser", "Cygnus", "Ardea", "Grus",  "Passer", "Corvus",
      "Larus", "Aquila", "Strix", "Picus", "Columba", "Falco"};
  return kGenera;
}

}  // namespace

const char* AnnotationTopicLabel(AnnotationTopic topic) {
  switch (topic) {
    case AnnotationTopic::kDisease:
      return "Disease";
    case AnnotationTopic::kAnatomy:
      return "Anatomy";
    case AnnotationTopic::kBehavior:
      return "Behavior";
    case AnnotationTopic::kOther:
      return "Other";
  }
  return "Other";
}

AnnotationTopic DrawTopic(Rng* rng) {
  const double d = rng->NextDouble();
  if (d < 0.20) return AnnotationTopic::kDisease;
  if (d < 0.45) return AnnotationTopic::kAnatomy;
  if (d < 0.80) return AnnotationTopic::kBehavior;
  return AnnotationTopic::kOther;
}

std::string GenerateAnnotationText(AnnotationTopic topic, size_t target_chars,
                                   Rng* rng) {
  const auto& vocab = TopicVocabulary(topic);
  const auto& filler = FillerVocabulary();
  std::string out;
  out.reserve(target_chars + 16);
  size_t words_in_sentence = 0;
  while (out.size() < target_chars) {
    // ~40% topical signal words, the rest filler.
    const std::string& word =
        rng->NextBool(0.4) ? rng->Pick(vocab) : rng->Pick(filler);
    if (!out.empty()) out += ' ';
    out += word;
    if (++words_in_sentence >= static_cast<size_t>(rng->Uniform(6, 14))) {
      out += '.';
      words_in_sentence = 0;
    }
  }
  if (out.empty() || out.back() != '.') out += '.';
  return out;
}

namespace {

Status DefineAndLinkInstances(Database* db, const BirdsWorkloadOptions& opts,
                              const std::string& table) {
  if (opts.link_classifier) {
    if (!db->GetManager(table).ValueOrDie()->FindInstance("ClassBird1").ok()) {
      // Define once per database (DefineClassifier rejects duplicates).
      Rng rng(7);
      std::vector<std::pair<std::string, std::string>> training;
      for (size_t topic = 0; topic < kNumTopics; ++topic) {
        for (int doc = 0; doc < 6; ++doc) {
          training.emplace_back(
              GenerateAnnotationText(static_cast<AnnotationTopic>(topic), 120,
                                     &rng),
              AnnotationTopicLabel(static_cast<AnnotationTopic>(topic)));
        }
      }
      Status defined = db->DefineClassifier(
          "ClassBird1", {"Disease", "Anatomy", "Behavior", "Other"},
          training);
      if (!defined.ok() && defined.code() != StatusCode::kAlreadyExists) {
        return defined;
      }
      INSIGHT_RETURN_NOT_OK(
          db->LinkInstance(table, "ClassBird1", opts.classifier_indexable));
    }
  }
  if (opts.link_snippet) {
    if (!db->GetManager(table).ValueOrDie()->FindInstance("TextSummary1")
             .ok()) {
      SnippetSummarizer::Options snippet;
      snippet.min_chars = 1000;       // Paper's thresholds.
      snippet.max_snippet_chars = 400;
      Status defined = db->DefineSnippet("TextSummary1", snippet);
      if (!defined.ok() && defined.code() != StatusCode::kAlreadyExists) {
        return defined;
      }
      INSIGHT_RETURN_NOT_OK(db->LinkInstance(table, "TextSummary1", false));
    }
  }
  if (opts.build_baseline_index && opts.link_classifier) {
    INSIGHT_RETURN_NOT_OK(db->AddBaselineIndex(table, "ClassBird1"));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<AnnId>> AddRandomAnnotations(
    Database* db, const std::string& table, size_t num_birds, size_t count,
    Rng* rng, const BirdsWorkloadOptions& opts) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, db->GetTable(table));
  const size_t num_columns = t->schema().num_columns();
  std::vector<AnnId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Oid oid =
        opts.placement_skew > 0
            ? static_cast<Oid>(
                  rng->Zipf(static_cast<int64_t>(num_birds),
                            opts.placement_skew))
            : static_cast<Oid>(rng->Uniform(1,
                                            static_cast<int64_t>(num_birds)));
    const AnnotationTopic topic = DrawTopic(rng);
    const size_t length =
        rng->NextBool(opts.long_annotation_fraction)
            ? static_cast<size_t>(rng->Uniform(
                  1001, static_cast<int64_t>(std::max<size_t>(
                            1100, opts.max_ann_chars))))
            : static_cast<size_t>(
                  rng->Uniform(static_cast<int64_t>(opts.min_ann_chars),
                               999));
    const std::string text = GenerateAnnotationText(topic, length, rng);
    // Attach to a random cell, a cell pair, or the whole row.
    uint64_t mask;
    const double kind = rng->NextDouble();
    if (kind < 0.6) {
      mask = CellMask(static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(num_columns) - 1)));
    } else if (kind < 0.8) {
      mask = CellMask(static_cast<size_t>(
                 rng->Uniform(0, static_cast<int64_t>(num_columns) - 1))) |
             CellMask(static_cast<size_t>(
                 rng->Uniform(0, static_cast<int64_t>(num_columns) - 1)));
    } else {
      mask = RowMask(num_columns);
    }
    INSIGHT_ASSIGN_OR_RETURN(AnnId id,
                             db->Annotate(table, text, {{oid, mask}}));
    ids.push_back(id);
  }
  return ids;
}

Result<BirdsWorkload> GenerateBirdsWorkload(Database* db,
                                            const BirdsWorkloadOptions& opts) {
  Rng rng(opts.seed);
  BirdsWorkload workload;
  workload.num_birds = opts.num_birds;

  // The paper's Birds table: 45,000 tuples x 12 attributes.
  Schema schema;
  schema.AddColumn({"id", ValueType::kInt64}).ok();
  schema.AddColumn({"sci_name", ValueType::kString}).ok();
  schema.AddColumn({"common_name", ValueType::kString}).ok();
  schema.AddColumn({"genus", ValueType::kString}).ok();
  schema.AddColumn({"family", ValueType::kString}).ok();
  schema.AddColumn({"order_name", ValueType::kString}).ok();
  schema.AddColumn({"habitat", ValueType::kString}).ok();
  schema.AddColumn({"description", ValueType::kString}).ok();
  schema.AddColumn({"region", ValueType::kString}).ok();
  schema.AddColumn({"status", ValueType::kString}).ok();
  schema.AddColumn({"wingspan", ValueType::kDouble}).ok();
  schema.AddColumn({"weight", ValueType::kDouble}).ok();
  INSIGHT_ASSIGN_OR_RETURN(Table * birds,
                           db->CreateTable(workload.birds_table, schema));

  INSIGHT_RETURN_NOT_OK(DefineAndLinkInstances(db, opts,
                                               workload.birds_table));

  static const char* kHabitats[] = {"lake", "forest", "coast", "wetland",
                                    "grassland", "mountain"};
  static const char* kRegions[] = {"nearctic", "palearctic", "neotropic",
                                   "afrotropic", "indomalaya", "oceania"};
  static const char* kStatuses[] = {"least-concern", "near-threatened",
                                    "vulnerable", "endangered"};
  for (size_t i = 0; i < opts.num_birds; ++i) {
    const std::string genus = rng.Pick(GenusNames());
    Tuple row({
        Value::Int(static_cast<int64_t>(i + 1)),
        Value::String(genus + " species" + std::to_string(i)),
        Value::String("bird" + std::to_string(i)),
        Value::String(genus),
        Value::String(rng.Pick(FamilyNames())),
        Value::String("Aves-order-" + std::to_string(rng.Uniform(0, 11))),
        Value::String(kHabitats[rng.Uniform(0, 5)]),
        Value::String(GenerateAnnotationText(AnnotationTopic::kOther, 80,
                                             &rng)),
        Value::String(kRegions[rng.Uniform(0, 5)]),
        Value::String(kStatuses[rng.Uniform(0, 3)]),
        Value::Double(0.2 + rng.NextDouble() * 2.8),
        Value::Double(0.02 + rng.NextDouble() * 12.0),
    });
    // Through the Database DML path (not Table::Insert) so journaling and
    // the online statistics sketches observe the load like any client.
    INSIGHT_RETURN_NOT_OK(
        db->Insert(workload.birds_table, std::move(row)).status());
  }

  const size_t total_annotations =
      opts.num_birds * opts.annotations_per_bird;
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<AnnId> ids,
      AddRandomAnnotations(db, workload.birds_table, opts.num_birds,
                           total_annotations, &rng, opts));
  workload.num_annotations = ids.size();

  if (opts.synonyms_per_bird > 0) {
    INSIGHT_ASSIGN_OR_RETURN(
        workload.num_synonyms,
        GenerateSynonyms(db, opts.num_birds, opts.synonyms_per_bird,
                         opts.seed + 1));
  }
  return workload;
}

Result<size_t> GenerateSynonyms(Database* db, size_t num_birds,
                                size_t per_bird, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.AddColumn({"bird_id", ValueType::kInt64}).ok();
  schema.AddColumn({"bird_name", ValueType::kString}).ok();
  schema.AddColumn({"synonym", ValueType::kString}).ok();
  INSIGHT_ASSIGN_OR_RETURN(Table * synonyms,
                           db->CreateTable("Synonyms", schema));
  size_t count = 0;
  for (size_t bird = 0; bird < num_birds; ++bird) {
    for (size_t s = 0; s < per_bird; ++s) {
      Tuple row({Value::Int(static_cast<int64_t>(bird + 1)),
                 Value::String("bird" + std::to_string(bird)),
                 Value::String("synonym" + std::to_string(bird) + "_" +
                               std::to_string(s) + "_" +
                               std::to_string(rng.Uniform(0, 999)))});
      INSIGHT_RETURN_NOT_OK(
          db->Insert("Synonyms", std::move(row)).status());
      ++count;
    }
  }
  INSIGHT_RETURN_NOT_OK(synonyms->CreateColumnIndex("bird_name"));
  INSIGHT_RETURN_NOT_OK(synonyms->CreateColumnIndex("bird_id"));
  return count;
}

}  // namespace insight
