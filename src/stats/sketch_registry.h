#ifndef INSIGHTNOTES_STATS_SKETCH_REGISTRY_H_
#define INSIGHTNOTES_STATS_SKETCH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "stats/sketch.h"
#include "summary/summary_manager.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace insight {

/// Stable hash for sketch keys: Value::Hash already canonicalizes equal
/// values (int/double NaN rules), SketchMix64 upgrades it to the
/// finalizer quality HyperLogLog needs.
inline uint64_t SketchHashValue(const Value& v) {
  return SketchMix64(static_cast<uint64_t>(v.Hash()));
}

inline uint64_t SketchHashCount(int64_t count) {
  return SketchMix64(static_cast<uint64_t>(count));
}

/// Online sketches for one relation: a row counter, per-column
/// {HyperLogLog ndistinct, Count-Min frequency} pairs, and per
/// (summary instance, classifier label) sketches over the label's
/// per-tuple count values — the summary-aware analogue of the per-label
/// histograms, but maintained inline on every write instead of by
/// ANALYZE. All cells are atomic; writers never block estimation reads.
///
/// MVCC-abort compensation: counter/Count-Min deltas apply immediately
/// (so the writing transaction plans against its own writes) and register
/// an inverse delta on the transaction's abort hook; HyperLogLog inserts
/// cannot be undone, so they defer to the commit hook. Aborted
/// transactions therefore leave every count and every register exactly as
/// they found them.
class TableSketches {
 public:
  TableSketches(std::string name, const Schema& schema);

  TableSketches(const TableSketches&) = delete;
  TableSketches& operator=(const TableSketches&) = delete;

  // ---- Write path (Database DML + recovery/replica replay hooks). ----
  // Each entry point checks the StatsEnabled() gate itself — one relaxed
  // load, mirroring Counter::Add — and returns immediately when disabled.
  void OnInsert(const Tuple& tuple);
  void OnDelete(const Tuple& tuple);
  void OnUpdate(const Tuple& before, const Tuple& after);
  /// SummaryManager listener entry point (per-label sketches).
  Status OnSummaryChanged(Oid oid, const SummaryObject* before,
                          const SummaryObject* after);

  // ---- ANALYZE integration. ----
  /// Marks the sketch state as agreeing with a just-collected TableStats.
  void NoteAnalyzed(uint64_t analyzed_rows);
  /// True when the write churn since the last ANALYZE exceeds
  /// `threshold` as a fraction of the analyzed row count — the estimator
  /// then prefers sketch answers over the stale histogram tier.
  bool StaleSince(double threshold) const;
  /// True once any write has been observed (a never-analyzed relation
  /// with data still gets sketch answers).
  bool HasData() const;

  // ---- Estimation reads (lock-free on columns; shared lock on labels).
  int64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t ops_since_analyze() const {
    return ops_since_analyze_.load(std::memory_order_relaxed);
  }
  uint64_t analyzed_rows() const {
    return analyzed_rows_.load(std::memory_order_relaxed);
  }
  /// ndistinct of a column; < 0 when the column is unknown.
  double ColumnDistinct(const std::string& column) const;
  /// Frequency of `v` in a column; < 0 when the column is unknown.
  int64_t ColumnFrequency(const std::string& column, const Value& v) const;
  /// Live summary objects of an instance; < 0 when never seen.
  int64_t InstanceObjects(const std::string& instance) const;
  /// Tuples whose `instance.label` count equals `count`; < 0 unknown.
  int64_t LabelFrequency(const std::string& instance, const std::string& label,
                         int64_t count) const;
  /// ndistinct of a label's count values; < 0 when unknown.
  double LabelDistinct(const std::string& instance,
                       const std::string& label) const;

  // ---- Durability (checkpoint snapshot payloads). ----
  void Serialize(std::string* dst) const;
  /// In-place overwrite from a Serialize() image. Pointer identity is
  /// preserved — cached TableSketches* handles stay valid.
  Status Restore(SerdeReader* reader);

  const std::string& name() const { return name_; }

 private:
  struct ColumnSketch {
    HyperLogLog distinct;
    CountMinSketch freq;
  };
  struct LabelSketch {
    HyperLogLog distinct;
    CountMinSketch counts;
  };
  struct InstanceSketch {
    std::atomic<int64_t> objects{0};
    // Label keys are lower-cased; entries are created on first sight and
    // never removed, so estimation can hold bare pointers.
    std::map<std::string, std::unique_ptr<LabelSketch>> labels;
  };

  ColumnSketch* FindColumn(const std::string& lower_name) const;
  InstanceSketch* GetOrCreateInstance(const std::string& lower_name);
  const InstanceSketch* FindInstance(const std::string& lower_name) const;
  LabelSketch* GetOrCreateLabel(InstanceSketch* inst,
                                const std::string& lower_label);

  /// Count-Min + counter side of one row (delta = +1 insert, -1 delete).
  void ApplyRowCounts(const Tuple& tuple, int64_t delta);
  /// HyperLogLog side of one row (commit-time for transactional writes).
  void ApplyRowDistinct(const Tuple& tuple);

  using RepCounts = std::vector<std::pair<std::string, int64_t>>;
  static RepCounts ClassifierReps(const SummaryObject* obj);
  void ApplyRepCounts(const std::string& instance, const RepCounts& reps,
                      int64_t delta, int64_t object_delta);
  void ApplyRepDistinct(const std::string& instance, const RepCounts& reps);

  std::string name_;
  std::vector<std::string> column_names_;  // Lower-cased, schema order.
  std::vector<std::unique_ptr<ColumnSketch>> columns_;

  std::atomic<int64_t> rows_{0};
  std::atomic<uint64_t> ops_since_analyze_{0};
  std::atomic<uint64_t> analyzed_rows_{0};
  std::atomic<bool> analyzed_{false};

  mutable std::shared_mutex instances_mu_;
  std::map<std::string, std::unique_ptr<InstanceSketch>> instances_;
};

/// Owner of every relation's sketches plus the SummaryManager listener
/// subscriptions that keep the per-label sketches current. One registry
/// per Database; the optimizer reads through RelationInfo::sketches
/// pointers that stay valid for the registry's lifetime (entries are
/// never removed).
class SketchRegistry {
 public:
  SketchRegistry() = default;
  ~SketchRegistry();

  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  /// Idempotent by table name; returns the (possibly existing) entry.
  TableSketches* RegisterTable(const std::string& table, const Schema& schema);
  TableSketches* Find(const std::string& table) const;

  /// Subscribes the per-label sketches to one linked summary instance.
  void AttachInstance(const std::string& table, SummaryManager* mgr,
                      uint32_t instance_id);
  /// Drops the subscription (instance unlink); sketch data is retained.
  void DetachInstance(const std::string& table, uint32_t instance_id);

  /// Whole-registry image for fuzzy-checkpoint snapshots.
  std::string Serialize() const;
  /// Overwrites the state of every table present in `blob`; tables must
  /// already be registered (snapshot ops create them first). Unknown
  /// tables in the image are ignored.
  Status Restore(std::string_view blob);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<TableSketches>> tables_;  // Lower.
  std::map<std::pair<std::string, uint32_t>,
           std::pair<SummaryManager*, SummaryManager::ListenerId>>
      subs_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_STATS_SKETCH_REGISTRY_H_
