#include "stats/sketch.h"

#include <cmath>
#include <cstring>

namespace insight {

bool StatsEnabled() {
  return stats_internal::g_stats_enabled.load(std::memory_order_acquire);
}

void SetStatsEnabled(bool enabled) {
  stats_internal::g_stats_enabled.store(enabled, std::memory_order_release);
}

namespace stats_internal {

std::atomic<bool> g_stats_enabled{true};

}  // namespace stats_internal

// ---- HyperLogLog ----

HyperLogLog::HyperLogLog()
    : regs_(new std::atomic<uint8_t>[kNumRegisters]) {
  Reset();
}

void HyperLogLog::AddHash(uint64_t hash) {
  const size_t idx = static_cast<size_t>(hash >> (64 - kPrecision));
  // Rank of the first set bit in the remaining 52 bits, 1-based; an
  // all-zero suffix ranks 53.
  const uint64_t suffix = hash << kPrecision;
  const uint8_t rank =
      suffix == 0 ? static_cast<uint8_t>(64 - kPrecision + 1)
                  : static_cast<uint8_t>(__builtin_clzll(suffix) + 1);
  // CAS-max: lost races only ever lose to a larger rank, so the register
  // converges to the stream maximum regardless of interleaving.
  uint8_t cur = regs_[idx].load(std::memory_order_relaxed);
  while (rank > cur && !regs_[idx].compare_exchange_weak(
                           cur, rank, std::memory_order_relaxed)) {
  }
}

double HyperLogLog::Estimate() const {
  // Standard HLL with the large-m alpha constant, plus linear counting
  // below 2.5m (the regime where the raw estimator is biased high).
  const double m = static_cast<double>(kNumRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0.0;
  size_t zeros = 0;
  for (size_t i = 0; i < kNumRegisters; ++i) {
    const uint8_t r = regs_[i].load(std::memory_order_relaxed);
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  for (size_t i = 0; i < kNumRegisters; ++i) {
    const uint8_t theirs = other.regs_[i].load(std::memory_order_relaxed);
    uint8_t cur = regs_[i].load(std::memory_order_relaxed);
    while (theirs > cur && !regs_[i].compare_exchange_weak(
                               cur, theirs, std::memory_order_relaxed)) {
    }
  }
}

void HyperLogLog::Reset() {
  for (size_t i = 0; i < kNumRegisters; ++i) {
    regs_[i].store(0, std::memory_order_relaxed);
  }
}

bool HyperLogLog::SameRegisters(const HyperLogLog& other) const {
  for (size_t i = 0; i < kNumRegisters; ++i) {
    if (regs_[i].load(std::memory_order_relaxed) !=
        other.regs_[i].load(std::memory_order_relaxed)) {
      return false;
    }
  }
  return true;
}

void HyperLogLog::Serialize(std::string* dst) const {
  PutU32(dst, kPrecision);
  for (size_t i = 0; i < kNumRegisters; ++i) {
    PutU8(dst, regs_[i].load(std::memory_order_relaxed));
  }
}

Status HyperLogLog::Deserialize(SerdeReader* reader) {
  uint32_t precision = 0;
  if (!reader->ReadU32(&precision) || precision != kPrecision) {
    return Status::Corruption("bad HyperLogLog header");
  }
  for (size_t i = 0; i < kNumRegisters; ++i) {
    uint8_t r = 0;
    if (!reader->ReadU8(&r)) {
      return Status::Corruption("truncated HyperLogLog registers");
    }
    regs_[i].store(r, std::memory_order_relaxed);
  }
  return Status::OK();
}

// ---- CountMinSketch ----

CountMinSketch::CountMinSketch()
    : cells_(new std::atomic<int64_t>[kDepth * kWidth]) {
  Reset();
}

void CountMinSketch::AddHash(uint64_t hash, int64_t delta) {
  for (size_t row = 0; row < kDepth; ++row) {
    cells_[CellIndex(hash, row)].fetch_add(delta, std::memory_order_relaxed);
  }
  total_.fetch_add(delta, std::memory_order_relaxed);
}

int64_t CountMinSketch::EstimateHash(uint64_t hash) const {
  int64_t est = INT64_MAX;
  for (size_t row = 0; row < kDepth; ++row) {
    const int64_t cell =
        cells_[CellIndex(hash, row)].load(std::memory_order_relaxed);
    if (cell < est) est = cell;
  }
  return est < 0 ? 0 : est;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  for (size_t i = 0; i < kDepth * kWidth; ++i) {
    const int64_t theirs = other.cells_[i].load(std::memory_order_relaxed);
    if (theirs != 0) {
      cells_[i].fetch_add(theirs, std::memory_order_relaxed);
    }
  }
  total_.fetch_add(other.total(), std::memory_order_relaxed);
}

void CountMinSketch::Reset() {
  for (size_t i = 0; i < kDepth * kWidth; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

bool CountMinSketch::SameCells(const CountMinSketch& other) const {
  for (size_t i = 0; i < kDepth * kWidth; ++i) {
    if (cells_[i].load(std::memory_order_relaxed) !=
        other.cells_[i].load(std::memory_order_relaxed)) {
      return false;
    }
  }
  return total() == other.total();
}

void CountMinSketch::Serialize(std::string* dst) const {
  PutU32(dst, static_cast<uint32_t>(kWidth));
  PutU32(dst, static_cast<uint32_t>(kDepth));
  PutI64(dst, total());
  for (size_t i = 0; i < kDepth * kWidth; ++i) {
    PutI64(dst, cells_[i].load(std::memory_order_relaxed));
  }
}

Status CountMinSketch::Deserialize(SerdeReader* reader) {
  uint32_t width = 0;
  uint32_t depth = 0;
  int64_t total = 0;
  if (!reader->ReadU32(&width) || !reader->ReadU32(&depth) ||
      !reader->ReadI64(&total) || width != kWidth || depth != kDepth) {
    return Status::Corruption("bad CountMinSketch header");
  }
  for (size_t i = 0; i < kDepth * kWidth; ++i) {
    int64_t cell = 0;
    if (!reader->ReadI64(&cell)) {
      return Status::Corruption("truncated CountMinSketch cells");
    }
    cells_[i].store(cell, std::memory_order_relaxed);
  }
  total_.store(total, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace insight
