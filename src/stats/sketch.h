#ifndef INSIGHTNOTES_STATS_SKETCH_H_
#define INSIGHTNOTES_STATS_SKETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/serde.h"
#include "common/status.h"

namespace insight {

/// Process-wide switch for online sketch maintenance, mirroring the
/// MetricsEnabled() discipline in src/obs: every DML-path sketch update
/// checks one relaxed atomic load first, so a disabled engine pays a
/// predictable branch per hook and the sketch cells are never written.
/// Estimation reads work either way (they see whatever was maintained).
bool StatsEnabled();
void SetStatsEnabled(bool enabled);

namespace stats_internal {

extern std::atomic<bool> g_stats_enabled;

inline bool Enabled() {
  return g_stats_enabled.load(std::memory_order_relaxed);
}

}  // namespace stats_internal

/// Finalizer-quality 64-bit mixer (splitmix64). Sketches key everything
/// off one mixed hash; per-row Count-Min hashes are derived from it.
inline uint64_t SketchMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// HyperLogLog distinct counter. 2^12 = 4096 single-byte registers give a
/// standard error of 1.04/sqrt(4096) ~= 1.6%. Registers are atomic and
/// updated with a CAS-max loop, so concurrent writers never lose an
/// observation and merge (register-wise max) is exactly associative and
/// commutative — the property the merge tests pin down. Inserts cannot be
/// undone, so ndistinct is a monotone overestimate under deletes; callers
/// that need delete-tracking use the Count-Min sketch instead.
class HyperLogLog {
 public:
  static constexpr uint32_t kPrecision = 12;
  static constexpr size_t kNumRegisters = size_t{1} << kPrecision;

  HyperLogLog();

  HyperLogLog(const HyperLogLog&) = delete;
  HyperLogLog& operator=(const HyperLogLog&) = delete;

  /// Observes one pre-mixed 64-bit hash.
  void AddHash(uint64_t hash);

  /// Bias-corrected cardinality estimate (linear counting at the low end).
  double Estimate() const;

  /// Register-wise max. Equivalent to having observed both streams.
  void Merge(const HyperLogLog& other);

  void Reset();

  /// True when every register matches (merge-associativity tests).
  bool SameRegisters(const HyperLogLog& other) const;

  void Serialize(std::string* dst) const;
  Status Deserialize(SerdeReader* reader);

 private:
  std::unique_ptr<std::atomic<uint8_t>[]> regs_;
};

/// Count-Min sketch over 64-bit hashes, depth 4 x width 2048 of atomic
/// signed counters. Point estimate = min over rows, clamped at zero.
/// Signed cells make it a strict-turnstile sketch: deletes and MVCC-abort
/// compensation subtract the same per-row deltas the insert added, so the
/// classic "never underestimates a live count" guarantee is preserved as
/// long as no key's aggregate goes negative (true on the DML path, where
/// every subtraction undoes a prior addition). Cell-wise addition is the
/// merge, again exactly associative and commutative.
class CountMinSketch {
 public:
  static constexpr size_t kWidth = 2048;  // eps ~= 2/width ~= 0.1% of N.
  static constexpr size_t kDepth = 4;

  CountMinSketch();

  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  void AddHash(uint64_t hash, int64_t delta);

  /// Min-over-rows frequency estimate for the key behind `hash`.
  int64_t EstimateHash(uint64_t hash) const;

  /// Net sum of all deltas ever applied (the sketch's |stream|).
  int64_t total() const { return total_.load(std::memory_order_relaxed); }

  void Merge(const CountMinSketch& other);

  void Reset();

  bool SameCells(const CountMinSketch& other) const;

  void Serialize(std::string* dst) const;
  Status Deserialize(SerdeReader* reader);

 private:
  static size_t CellIndex(uint64_t hash, size_t row) {
    // Independent per-row hashes derived by re-mixing with a row salt.
    return row * kWidth +
           static_cast<size_t>(SketchMix64(hash + row * 0xc2b2ae3d27d4eb4fULL) &
                               (kWidth - 1));
  }

  std::unique_ptr<std::atomic<int64_t>[]> cells_;  // kDepth * kWidth.
  std::atomic<int64_t> total_{0};
};

}  // namespace insight

#endif  // INSIGHTNOTES_STATS_SKETCH_H_
