#include "stats/sketch_registry.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "summary/summary_object.h"
#include "txn/txn.h"

namespace insight {

// ---- TableSketches ----

TableSketches::TableSketches(std::string name, const Schema& schema)
    : name_(std::move(name)) {
  column_names_.reserve(schema.num_columns());
  columns_.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    column_names_.push_back(ToLower(schema.column(c).name));
    columns_.push_back(std::make_unique<ColumnSketch>());
  }
}

TableSketches::ColumnSketch* TableSketches::FindColumn(
    const std::string& lower_name) const {
  for (size_t c = 0; c < column_names_.size(); ++c) {
    if (column_names_[c] == lower_name) return columns_[c].get();
  }
  return nullptr;
}

TableSketches::InstanceSketch* TableSketches::GetOrCreateInstance(
    const std::string& lower_name) {
  {
    std::shared_lock<std::shared_mutex> lk(instances_mu_);
    auto it = instances_.find(lower_name);
    if (it != instances_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lk(instances_mu_);
  auto& slot = instances_[lower_name];
  if (slot == nullptr) slot = std::make_unique<InstanceSketch>();
  return slot.get();
}

const TableSketches::InstanceSketch* TableSketches::FindInstance(
    const std::string& lower_name) const {
  std::shared_lock<std::shared_mutex> lk(instances_mu_);
  auto it = instances_.find(lower_name);
  return it == instances_.end() ? nullptr : it->second.get();
}

TableSketches::LabelSketch* TableSketches::GetOrCreateLabel(
    InstanceSketch* inst, const std::string& lower_label) {
  {
    std::shared_lock<std::shared_mutex> lk(instances_mu_);
    auto it = inst->labels.find(lower_label);
    if (it != inst->labels.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lk(instances_mu_);
  auto& slot = inst->labels[lower_label];
  if (slot == nullptr) slot = std::make_unique<LabelSketch>();
  return slot.get();
}

void TableSketches::ApplyRowCounts(const Tuple& tuple, int64_t delta) {
  const size_t n = std::min(tuple.size(), columns_.size());
  for (size_t c = 0; c < n; ++c) {
    columns_[c]->freq.AddHash(SketchHashValue(tuple.at(c)), delta);
  }
  rows_.fetch_add(delta, std::memory_order_relaxed);
  ops_since_analyze_.fetch_add(1, std::memory_order_relaxed);
}

void TableSketches::ApplyRowDistinct(const Tuple& tuple) {
  const size_t n = std::min(tuple.size(), columns_.size());
  for (size_t c = 0; c < n; ++c) {
    columns_[c]->distinct.AddHash(SketchHashValue(tuple.at(c)));
  }
}

void TableSketches::OnInsert(const Tuple& tuple) {
  if (!stats_internal::Enabled()) return;
  EngineMetrics::Get().stats_sketch_updates->Add(1);
  ApplyRowCounts(tuple, +1);
  if (Transaction* txn = CurrentTxn()) {
    Tuple copy = tuple;
    txn->OnAbort([this, copy]() { ApplyRowCounts(copy, -1); });
    Tuple keep = tuple;
    txn->OnCommit(
        [this, keep = std::move(keep)](Ts) { ApplyRowDistinct(keep); });
  } else {
    ApplyRowDistinct(tuple);
  }
}

void TableSketches::OnDelete(const Tuple& tuple) {
  if (!stats_internal::Enabled()) return;
  EngineMetrics::Get().stats_sketch_updates->Add(1);
  ApplyRowCounts(tuple, -1);
  if (Transaction* txn = CurrentTxn()) {
    Tuple copy = tuple;
    txn->OnAbort([this, copy]() { ApplyRowCounts(copy, +1); });
  }
}

void TableSketches::OnUpdate(const Tuple& before, const Tuple& after) {
  OnDelete(before);
  OnInsert(after);
}

TableSketches::RepCounts TableSketches::ClassifierReps(
    const SummaryObject* obj) {
  RepCounts reps;
  if (obj == nullptr || obj->type != SummaryType::kClassifier) return reps;
  reps.reserve(obj->reps.size());
  for (const Representative& rep : obj->reps) {
    reps.emplace_back(ToLower(rep.text), rep.count);
  }
  return reps;
}

void TableSketches::ApplyRepCounts(const std::string& instance,
                                   const RepCounts& reps, int64_t delta,
                                   int64_t object_delta) {
  InstanceSketch* inst = GetOrCreateInstance(instance);
  if (object_delta != 0) {
    inst->objects.fetch_add(object_delta, std::memory_order_relaxed);
  }
  for (const auto& [label, count] : reps) {
    GetOrCreateLabel(inst, label)->counts.AddHash(SketchHashCount(count),
                                                  delta);
  }
}

void TableSketches::ApplyRepDistinct(const std::string& instance,
                                     const RepCounts& reps) {
  if (reps.empty()) return;
  InstanceSketch* inst = GetOrCreateInstance(instance);
  for (const auto& [label, count] : reps) {
    GetOrCreateLabel(inst, label)->distinct.AddHash(SketchHashCount(count));
  }
}

Status TableSketches::OnSummaryChanged(Oid, const SummaryObject* before,
                                       const SummaryObject* after) {
  if (!stats_internal::Enabled()) return Status::OK();
  const SummaryObject* any = before != nullptr ? before : after;
  if (any == nullptr) return Status::OK();
  EngineMetrics::Get().stats_sketch_updates->Add(1);
  const std::string instance = ToLower(any->instance_name);
  const int64_t object_delta =
      (before == nullptr ? 1 : 0) - (after == nullptr ? 1 : 0);
  RepCounts before_reps = ClassifierReps(before);
  RepCounts after_reps = ClassifierReps(after);
  ApplyRepCounts(instance, before_reps, -1, 0);
  ApplyRepCounts(instance, after_reps, +1, object_delta);
  if (Transaction* txn = CurrentTxn()) {
    txn->OnAbort([this, instance, before_reps, after_reps, object_delta]() {
      ApplyRepCounts(instance, after_reps, -1, -object_delta);
      ApplyRepCounts(instance, before_reps, +1, 0);
    });
    txn->OnCommit([this, instance, after_reps = std::move(after_reps)](Ts) {
      ApplyRepDistinct(instance, after_reps);
    });
  } else {
    ApplyRepDistinct(instance, after_reps);
  }
  return Status::OK();
}

void TableSketches::NoteAnalyzed(uint64_t analyzed_rows) {
  analyzed_rows_.store(analyzed_rows, std::memory_order_relaxed);
  ops_since_analyze_.store(0, std::memory_order_relaxed);
  analyzed_.store(true, std::memory_order_relaxed);
}

bool TableSketches::StaleSince(double threshold) const {
  if (!analyzed_.load(std::memory_order_relaxed)) return true;
  const double base =
      std::max<double>(8.0, static_cast<double>(analyzed_rows()));
  return static_cast<double>(ops_since_analyze()) > threshold * base;
}

bool TableSketches::HasData() const {
  return rows() > 0 || ops_since_analyze() > 0 ||
         analyzed_.load(std::memory_order_relaxed);
}

double TableSketches::ColumnDistinct(const std::string& column) const {
  const ColumnSketch* col = FindColumn(ToLower(column));
  if (col == nullptr) return -1.0;
  return col->distinct.Estimate();
}

int64_t TableSketches::ColumnFrequency(const std::string& column,
                                       const Value& v) const {
  const ColumnSketch* col = FindColumn(ToLower(column));
  if (col == nullptr) return -1;
  return col->freq.EstimateHash(SketchHashValue(v));
}

int64_t TableSketches::InstanceObjects(const std::string& instance) const {
  const InstanceSketch* inst = FindInstance(ToLower(instance));
  if (inst == nullptr) return -1;
  return inst->objects.load(std::memory_order_relaxed);
}

int64_t TableSketches::LabelFrequency(const std::string& instance,
                                      const std::string& label,
                                      int64_t count) const {
  std::shared_lock<std::shared_mutex> lk(instances_mu_);
  auto inst_it = instances_.find(ToLower(instance));
  if (inst_it == instances_.end()) return -1;
  auto label_it = inst_it->second->labels.find(ToLower(label));
  if (label_it == inst_it->second->labels.end()) return -1;
  return label_it->second->counts.EstimateHash(SketchHashCount(count));
}

double TableSketches::LabelDistinct(const std::string& instance,
                                    const std::string& label) const {
  std::shared_lock<std::shared_mutex> lk(instances_mu_);
  auto inst_it = instances_.find(ToLower(instance));
  if (inst_it == instances_.end()) return -1.0;
  auto label_it = inst_it->second->labels.find(ToLower(label));
  if (label_it == inst_it->second->labels.end()) return -1.0;
  return label_it->second->distinct.Estimate();
}

void TableSketches::Serialize(std::string* dst) const {
  PutI64(dst, rows());
  PutU64(dst, ops_since_analyze());
  PutU64(dst, analyzed_rows());
  PutU8(dst, analyzed_.load(std::memory_order_relaxed) ? 1 : 0);
  PutU32(dst, static_cast<uint32_t>(columns_.size()));
  for (size_t c = 0; c < columns_.size(); ++c) {
    PutString(dst, column_names_[c]);
    columns_[c]->distinct.Serialize(dst);
    columns_[c]->freq.Serialize(dst);
  }
  std::shared_lock<std::shared_mutex> lk(instances_mu_);
  PutU32(dst, static_cast<uint32_t>(instances_.size()));
  for (const auto& [iname, inst] : instances_) {
    PutString(dst, iname);
    PutI64(dst, inst->objects.load(std::memory_order_relaxed));
    PutU32(dst, static_cast<uint32_t>(inst->labels.size()));
    for (const auto& [lname, label] : inst->labels) {
      PutString(dst, lname);
      label->distinct.Serialize(dst);
      label->counts.Serialize(dst);
    }
  }
}

Status TableSketches::Restore(SerdeReader* reader) {
  int64_t rows = 0;
  uint64_t ops = 0;
  uint64_t analyzed_rows = 0;
  uint8_t analyzed = 0;
  uint32_t ncols = 0;
  if (!reader->ReadI64(&rows) || !reader->ReadU64(&ops) ||
      !reader->ReadU64(&analyzed_rows) || !reader->ReadU8(&analyzed) ||
      !reader->ReadU32(&ncols)) {
    return Status::Corruption("truncated sketch table header");
  }
  for (auto& col : columns_) {
    col->distinct.Reset();
    col->freq.Reset();
  }
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string cname;
    if (!reader->ReadString(&cname)) {
      return Status::Corruption("truncated sketch column name");
    }
    ColumnSketch* col = FindColumn(cname);
    std::unique_ptr<ColumnSketch> scratch;
    if (col == nullptr) {  // Unknown column: consume the image and drop it.
      scratch = std::make_unique<ColumnSketch>();
      col = scratch.get();
    }
    INSIGHT_RETURN_NOT_OK(col->distinct.Deserialize(reader));
    INSIGHT_RETURN_NOT_OK(col->freq.Deserialize(reader));
  }
  uint32_t ninstances = 0;
  if (!reader->ReadU32(&ninstances)) {
    return Status::Corruption("truncated sketch instance count");
  }
  {
    std::unique_lock<std::shared_mutex> lk(instances_mu_);
    instances_.clear();
  }
  for (uint32_t i = 0; i < ninstances; ++i) {
    std::string iname;
    int64_t objects = 0;
    uint32_t nlabels = 0;
    if (!reader->ReadString(&iname) || !reader->ReadI64(&objects) ||
        !reader->ReadU32(&nlabels)) {
      return Status::Corruption("truncated sketch instance header");
    }
    InstanceSketch* inst = GetOrCreateInstance(iname);
    inst->objects.store(objects, std::memory_order_relaxed);
    for (uint32_t l = 0; l < nlabels; ++l) {
      std::string lname;
      if (!reader->ReadString(&lname)) {
        return Status::Corruption("truncated sketch label name");
      }
      LabelSketch* label = GetOrCreateLabel(inst, lname);
      INSIGHT_RETURN_NOT_OK(label->distinct.Deserialize(reader));
      INSIGHT_RETURN_NOT_OK(label->counts.Deserialize(reader));
    }
  }
  rows_.store(rows, std::memory_order_relaxed);
  ops_since_analyze_.store(ops, std::memory_order_relaxed);
  analyzed_rows_.store(analyzed_rows, std::memory_order_relaxed);
  analyzed_.store(analyzed != 0, std::memory_order_relaxed);
  return Status::OK();
}

// ---- SketchRegistry ----

SketchRegistry::~SketchRegistry() {
  for (auto& [key, sub] : subs_) {
    sub.first->RemoveListener(sub.second);
  }
}

TableSketches* SketchRegistry::RegisterTable(const std::string& table,
                                             const Schema& schema) {
  const std::string key = ToLower(table);
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto& slot = tables_[key];
  if (slot == nullptr) slot = std::make_unique<TableSketches>(key, schema);
  return slot.get();
}

TableSketches* SketchRegistry::Find(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : it->second.get();
}

void SketchRegistry::AttachInstance(const std::string& table,
                                    SummaryManager* mgr,
                                    uint32_t instance_id) {
  TableSketches* sketches = Find(table);
  if (sketches == nullptr || mgr == nullptr) return;
  std::unique_lock<std::shared_mutex> lk(mu_);
  const auto key = std::make_pair(ToLower(table), instance_id);
  if (subs_.find(key) != subs_.end()) return;
  SummaryManager::ListenerId id = mgr->AddListener(
      instance_id,
      [sketches](Oid oid, const SummaryObject* before,
                 const SummaryObject* after) {
        return sketches->OnSummaryChanged(oid, before, after);
      });
  subs_[key] = {mgr, id};
}

void SketchRegistry::DetachInstance(const std::string& table,
                                    uint32_t instance_id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  const auto key = std::make_pair(ToLower(table), instance_id);
  auto it = subs_.find(key);
  if (it == subs_.end()) return;
  it->second.first->RemoveListener(it->second.second);
  subs_.erase(it);
}

std::string SketchRegistry::Serialize() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::string out;
  PutU32(&out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, sketches] : tables_) {
    PutString(&out, name);
    std::string blob;
    sketches->Serialize(&blob);
    PutString(&out, blob);
  }
  return out;
}

Status SketchRegistry::Restore(std::string_view blob) {
  SerdeReader reader(blob);
  uint32_t ntables = 0;
  if (!reader.ReadU32(&ntables)) {
    return Status::Corruption("truncated sketch registry image");
  }
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string name;
    std::string table_blob;
    if (!reader.ReadString(&name) || !reader.ReadString(&table_blob)) {
      return Status::Corruption("truncated sketch registry entry");
    }
    TableSketches* sketches = Find(name);
    if (sketches == nullptr) continue;  // Table vanished: drop its image.
    SerdeReader table_reader(table_blob);
    INSIGHT_RETURN_NOT_OK(sketches->Restore(&table_reader));
  }
  return Status::OK();
}

}  // namespace insight
