#ifndef INSIGHTNOTES_SUMMARY_SUMMARY_INSTANCE_H_
#define INSIGHTNOTES_SUMMARY_SUMMARY_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mining/naive_bayes.h"
#include "mining/snippet.h"
#include "summary/summary_algebra.h"
#include "summary/summary_object.h"

namespace insight {

/// A configured summarization technique that can be linked to relations
/// (the paper's "Summary Instance", Section 2.1). Instance ids are
/// process-global: linking the same instance to two relations (e.g.
/// TextSummary1 on both Birds and Synonyms) gives their summary objects
/// the same id, which is what the merge semantics and optimizer rules
/// ("instance L is not defined on S") key on.
///
/// Copyable: the mining models are shared.
class SummaryInstance {
 public:
  /// Classifier instance: annotations are classified into `labels` by a
  /// (trainable) Naive Bayes model. Objects always carry every label, in
  /// this order.
  static SummaryInstance Classifier(
      std::string name, std::vector<std::string> labels,
      std::shared_ptr<NaiveBayesClassifier> model);

  /// Snippet instance: annotations longer than options.min_chars get an
  /// extractive snippet of at most options.max_snippet_chars.
  static SummaryInstance Snippet(std::string name,
                                 SnippetSummarizer::Options options = {});

  /// Cluster instance: annotations join the most similar existing group
  /// (cosine similarity of hashed term vectors vs the group
  /// representative >= min_similarity) or seed a new group.
  static SummaryInstance Cluster(std::string name,
                                 double min_similarity = 0.25);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  SummaryType type() const { return type_; }
  const std::vector<std::string>& labels() const { return labels_; }
  NaiveBayesClassifier* classifier() const { return classifier_.get(); }

  /// A fresh (annotation-free) object for one tuple.
  SummaryObject NewObject(Oid tuple, uint64_t obj_id) const;

  /// Incorporates one annotation into `obj` (the incremental-maintenance
  /// path). `mask` is the annotation's column mask on this tuple.
  Status ApplyAdd(SummaryObject* obj, AnnId ann, const std::string& text,
                  uint64_t mask) const;

  /// Removes one annotation's contribution from `obj`. The resolver
  /// re-elects cluster representatives when needed. NotFound if the
  /// annotation does not contribute to this object.
  Status ApplyRemove(SummaryObject* obj, AnnId ann,
                     const AnnotationResolver& resolver) const;

 private:
  SummaryInstance(std::string name, SummaryType type);

  static uint32_t NextId();

  uint32_t id_;
  std::string name_;
  SummaryType type_;

  // Classifier state.
  std::vector<std::string> labels_;
  std::shared_ptr<NaiveBayesClassifier> classifier_;
  // Snippet state.
  std::shared_ptr<SnippetSummarizer> summarizer_;
  // Cluster state.
  double min_similarity_ = 0.25;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SUMMARY_SUMMARY_INSTANCE_H_
