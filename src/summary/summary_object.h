#ifndef INSIGHTNOTES_SUMMARY_SUMMARY_OBJECT_H_
#define INSIGHTNOTES_SUMMARY_SUMMARY_OBJECT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "types/tuple.h"

namespace insight {

using AnnId = uint64_t;

/// The three summarization families InsightNotes supports (Section 2.1).
enum class SummaryType : uint8_t {
  kClassifier = 1,
  kSnippet = 2,
  kCluster = 3,
};

const char* SummaryTypeToString(SummaryType t);

/// Reference to one contributing raw annotation: its id plus the bitmask
/// of the owning tuple's columns it is attached to. The mask is what lets
/// the projection operator eliminate an annotation's effect when all of
/// its target columns are projected out (Example 1 of the paper).
struct ElementRef {
  AnnId ann_id = 0;
  uint64_t column_mask = 0;

  bool operator==(const ElementRef& o) const {
    return ann_id == o.ann_id && column_mask == o.column_mask;
  }
};

/// One entry of a summary object's Rep[] array. Field use per type:
///   Classifier: text = classLabel,        count = annotationCnt
///   Snippet:    text = snippetValue,      count unused, source_ann = origin
///   Cluster:    text = representative(truncated), count = groupSize,
///               source_ann = the representative annotation's id
struct Representative {
  std::string text;
  int64_t count = 0;
  AnnId source_ann = 0;
};

/// Cluster representatives keep at most this much of the annotation text;
/// the full text stays in raw storage and is reachable via zoom-in.
constexpr size_t kClusterRepMaxChars = 256;

/// A summary object: the paper's five-ary vector
/// {ObjID, InstanceID, TupleID, Rep[], Elements[][]}.
/// `Elements[i]` lists the raw annotations contributing to `Rep[i]`.
/// The instance name is carried along so getSummaryName() works on
/// propagated objects without a catalog round-trip.
struct SummaryObject {
  uint64_t obj_id = 0;
  uint32_t instance_id = 0;
  Oid tuple_id = 0;
  SummaryType type = SummaryType::kClassifier;
  std::string instance_name;
  std::vector<Representative> reps;
  std::vector<std::vector<ElementRef>> elements;  // Parallel to reps.

  // ---- Common manipulation functions (Section 3.1) ----

  SummaryType GetSummaryType() const { return type; }
  const std::string& GetSummaryName() const { return instance_name; }
  /// Number of representatives (size of Rep[]).
  int64_t GetSize() const { return static_cast<int64_t>(reps.size()); }

  /// Total distinct annotations referenced by this object.
  int64_t TotalAnnotations() const;

  // ---- Classifier functions ----

  /// Class label at position i (labels keep instance-definition order).
  Result<std::string> GetLabelName(size_t i) const;
  Result<int64_t> GetLabelValue(size_t i) const;
  /// Count for `label`. Labels may be hierarchical ("Disease/Viral"):
  /// looking up an inner label ("Disease") sums every leaf underneath it —
  /// the paper's multi-level summarization future-work direction.
  Result<int64_t> GetLabelValue(std::string_view label) const;
  /// Position of `label` (exact leaf match), NotFound if absent.
  /// Case-insensitive.
  Result<size_t> GetLabelIndex(std::string_view label) const;

  // ---- Snippet functions ----

  Result<std::string> GetSnippet(size_t i) const;
  /// True when every keyword occurs inside a single snippet.
  bool ContainsSingle(const std::vector<std::string>& keywords) const;
  /// True when every keyword occurs somewhere in the union of snippets.
  bool ContainsUnion(const std::vector<std::string>& keywords) const;

  // ---- Cluster functions ----

  Result<std::string> GetRepresentative(size_t i) const;
  Result<int64_t> GetGroupSize(size_t i) const;

  // ---- Invariants / serialization ----

  /// Validates rep/element parallelism and per-type count invariants.
  Status CheckInvariants() const;

  void Serialize(std::string* dst) const;
  static Result<SummaryObject> Deserialize(SerdeReader* reader);

  std::string ToString() const;

  bool operator==(const SummaryObject& other) const;
};

/// The set of summary objects attached to one tuple — the paper's `$`
/// variable (r.$). Provides the summary-set manipulation functions and the
/// serialized form stored in R_SummaryStorage rows.
class SummarySet {
 public:
  SummarySet() = default;
  explicit SummarySet(std::vector<SummaryObject> objects)
      : objects_(std::move(objects)) {}

  /// $.getSize().
  int64_t GetSize() const { return static_cast<int64_t>(objects_.size()); }

  /// $.getSummaryObject(name); nullptr when absent (the paper returns
  /// Null). Case-insensitive.
  const SummaryObject* GetSummaryObject(std::string_view name) const;
  SummaryObject* GetSummaryObject(std::string_view name);

  /// $.getSummaryObject(i); nullptr when out of range.
  const SummaryObject* GetSummaryObject(size_t i) const {
    return i < objects_.size() ? &objects_[i] : nullptr;
  }

  const std::vector<SummaryObject>& objects() const { return objects_; }
  std::vector<SummaryObject>& objects() { return objects_; }
  bool empty() const { return objects_.empty(); }

  void Add(SummaryObject obj) { objects_.push_back(std::move(obj)); }

  void Serialize(std::string* dst) const;
  static Result<SummarySet> Deserialize(std::string_view buf);

  std::string ToString() const;

 private:
  std::vector<SummaryObject> objects_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SUMMARY_SUMMARY_OBJECT_H_
