#ifndef INSIGHTNOTES_SUMMARY_SUMMARY_MANAGER_H_
#define INSIGHTNOTES_SUMMARY_SUMMARY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/result.h"
#include "index/catalog.h"
#include "summary/summary_instance.h"
#include "summary/summary_object.h"

namespace insight {

/// Per-relation orchestration of raw annotations and their summaries:
///   - owns the de-normalized `<rel>_SummaryStorage` table (one row per
///     annotated data tuple holding every serialized summary object —
///     Figure 4(b)), linked 1-1 to the base table by tuple OID
///   - maintains summary objects incrementally as annotations arrive or
///     disappear (Section 2 of the base system)
///   - publishes before/after object events so summary indexes
///     (Summary-BTree, baseline) stay in sync (Section 4.1.2)
class SummaryManager {
 public:
  static Result<std::unique_ptr<SummaryManager>> Create(
      Catalog* catalog, Table* base, AnnotationStore* annotations);

  /// Detaches the zone-map label source installed on the base table.
  ~SummaryManager();

  /// Links a summary instance to this relation (the paper's
  /// `Alter Table <R> Add <InstanceName>`). Existing annotations are NOT
  /// re-summarized; link instances before loading, as the paper does.
  Status LinkInstance(SummaryInstance instance);

  /// Unlinks an instance and strips its objects from every storage row
  /// (admin table-scan operation).
  Status UnlinkInstance(const std::string& name);

  const std::vector<SummaryInstance>& instances() const { return instances_; }
  /// NotFound when no linked instance has this name.
  Result<const SummaryInstance*> FindInstance(std::string_view name) const;
  bool HasInstance(uint32_t instance_id) const;

  /// Stores a raw annotation and incrementally updates the summary
  /// objects of every targeted tuple.
  Result<AnnId> AddAnnotation(const std::string& text,
                              const std::vector<AnnotationTarget>& targets);

  /// Same, but under a caller-chosen annotation id (WAL replay path).
  Status AddAnnotationWithId(AnnId ann, const std::string& text,
                             const std::vector<AnnotationTarget>& targets);

  /// Removes a raw annotation and its effects from all summaries.
  Status RemoveAnnotation(AnnId ann);

  /// Drops the summary row of a deleted data tuple and notifies
  /// listeners (index entries must go too).
  Status OnTupleDeleted(Oid oid);

  /// The tuple's summary set (empty when un-annotated) as visible to
  /// `snap`. This is the propagation fast path: one index probe + one
  /// de-normalized row read.
  Result<SummarySet> GetSummaries(
      Oid oid, const Snapshot& snap = Snapshot::Latest()) const;

  /// OID of the tuple's `<rel>_SummaryStorage` row (kInvalidOid when the
  /// tuple is un-annotated). Conventional-pointer summary indexes store
  /// this as their payload.
  Result<Oid> StorageRowFor(Oid tuple_oid,
                            const Snapshot& snap = Snapshot::Latest()) const {
    return FindStorageRow(tuple_oid, snap);
  }

  /// The de-normalized storage table itself (1-1 with annotated tuples).
  Table* storage_table() const { return storage_; }

  /// Invokes `fn` for every (tuple, summary set) row — bulk index builds.
  Status ForEachSummaryRow(
      const std::function<Status(Oid, const SummarySet&)>& fn) const;

  /// Maintenance event: `before`/`after` are null when the object is
  /// created/destroyed. Fired once per (tuple, instance) modification.
  using Listener =
      std::function<Status(Oid oid, const SummaryObject* before,
                           const SummaryObject* after)>;
  using ListenerId = uint64_t;

  /// Subscribes to modifications of one instance's objects. The returned
  /// id deregisters via RemoveListener — indexes MUST deregister before
  /// they are destroyed (they do, in their destructors).
  ListenerId AddListener(uint32_t instance_id, Listener listener);

  /// Drops a subscription; unknown ids are ignored.
  void RemoveListener(ListenerId id);

  /// Resolver that reads raw annotation text (cluster rep re-election).
  AnnotationResolver MakeResolver() const;

  Table* base() const { return base_; }
  AnnotationStore* annotations() const { return annotations_; }

  /// Bytes used by the de-normalized summary storage (heap + oid index +
  /// the tuple_oid lookup index).
  uint64_t summary_storage_bytes() const;

 private:
  SummaryManager(Table* base, AnnotationStore* annotations)
      : base_(base), annotations_(annotations) {}

  /// One row's zone-map label counts (lowercased "instance.label" ->
  /// count), unioned over EVERY stored version of its summary row so the
  /// result is conservative for any snapshot. Installed on the base
  /// table as its ZoneLabelSource.
  Status CollectLabelZoneCounts(
      Oid tuple_oid,
      std::vector<std::pair<std::string, int64_t>>* out) const;

  /// Storage-row OID for a tuple as visible to `snap`, or kInvalidOid
  /// when absent.
  Result<Oid> FindStorageRow(Oid tuple_oid, const Snapshot& snap) const;

  /// FindStorageRow for the write path: additionally returns kAborted
  /// (first-writer-wins) when the tuple's storage row exists but is
  /// invisible because another open transaction created or superseded it
  /// — two concurrent annotators of one tuple must not both insert a
  /// storage row.
  Result<Oid> FindStorageRowForWrite(Oid tuple_oid,
                                     const Snapshot& snap) const;

  /// Incremental maintenance shared by AddAnnotation / AddAnnotationWithId:
  /// folds a freshly stored annotation into every targeted tuple's
  /// summary set and fires listener events.
  Status SummarizeAdded(AnnId ann, const std::string& text,
                        const std::vector<AnnotationTarget>& targets);

  Status SaveSummaries(Oid tuple_oid, Oid storage_row, const SummarySet& set);

  Status Notify(Oid oid, uint32_t instance_id, const SummaryObject* before,
                const SummaryObject* after);

  Table* base_;
  AnnotationStore* annotations_;
  Table* storage_ = nullptr;  // (tuple_oid INT, blob STRING)
  std::vector<SummaryInstance> instances_;
  std::map<uint32_t, std::vector<std::pair<ListenerId, Listener>>>
      listeners_;
  ListenerId next_listener_id_ = 1;
  uint64_t next_obj_id_ = 1;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SUMMARY_SUMMARY_MANAGER_H_
