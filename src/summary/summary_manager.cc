#include "summary/summary_manager.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "index/key_codec.h"

namespace insight {

namespace {

/// Flattens one summary set into zone-map label pairs (lowercased
/// "instance.label" -> count). Mirrors GetLabelValue's hierarchical
/// semantics: an inner label ("a" over leaves "a/b", "a/c") answers with
/// its subtree sum, so both the exact leaf counts and every inner-prefix
/// sum are emitted — bounds widened with both stay a superset of any
/// value the probe can observe.
void AppendLabelZoneCounts(const SummarySet& set,
                           std::vector<std::pair<std::string, int64_t>>* out) {
  for (const SummaryObject& obj : set.objects()) {
    if (obj.type != SummaryType::kClassifier) continue;
    const std::string prefix = ToLower(obj.instance_name) + ".";
    std::map<std::string, int64_t> inner_sums;
    for (const Representative& rep : obj.reps) {
      const std::string label = ToLower(rep.text);
      out->emplace_back(prefix + label, rep.count);
      for (size_t pos = label.find('/'); pos != std::string::npos;
           pos = label.find('/', pos + 1)) {
        inner_sums[label.substr(0, pos)] += rep.count;
      }
    }
    for (const auto& [inner, sum] : inner_sums) {
      out->emplace_back(prefix + inner, sum);
    }
  }
}

}  // namespace

Result<std::unique_ptr<SummaryManager>> SummaryManager::Create(
    Catalog* catalog, Table* base, AnnotationStore* annotations) {
  auto mgr = std::unique_ptr<SummaryManager>(
      new SummaryManager(base, annotations));
  INSIGHT_ASSIGN_OR_RETURN(
      mgr->storage_,
      catalog->CreateTable(base->name() + "_SummaryStorage",
                           Schema({{"tuple_oid", ValueType::kInt64},
                                   {"blob", ValueType::kString}})));
  INSIGHT_RETURN_NOT_OK(mgr->storage_->CreateColumnIndex("tuple_oid"));
  // Feed the base table's zone maps: label bounds must follow a row's
  // versions to whatever heap page they land on, and maintenance needs
  // the all-versions union when it re-derives a page.
  SummaryManager* raw = mgr.get();
  base->SetZoneLabelSource(
      [raw](Oid oid, std::vector<std::pair<std::string, int64_t>>* out) {
        return raw->CollectLabelZoneCounts(oid, out);
      });
  return mgr;
}

SummaryManager::~SummaryManager() {
  if (base_ != nullptr) base_->SetZoneLabelSource(nullptr);
}

Status SummaryManager::LinkInstance(SummaryInstance instance) {
  for (const SummaryInstance& existing : instances_) {
    if (EqualsIgnoreCase(existing.name(), instance.name())) {
      return Status::AlreadyExists("instance " + instance.name() +
                                   " already linked to " + base_->name());
    }
  }
  instances_.push_back(std::move(instance));
  return Status::OK();
}

Status SummaryManager::UnlinkInstance(const std::string& name) {
  size_t pos = instances_.size();
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (EqualsIgnoreCase(instances_[i].name(), name)) {
      pos = i;
      break;
    }
  }
  if (pos == instances_.size()) {
    return Status::NotFound("instance " + name + " not linked");
  }
  const uint32_t instance_id = instances_[pos].id();
  instances_.erase(instances_.begin() + pos);

  // Strip the instance's objects from every storage row (admin scan).
  std::vector<std::pair<Oid, Oid>> rows;  // (storage row, tuple oid)
  auto it = storage_->Scan();
  Oid row_oid;
  Tuple row;
  while (it.Next(&row_oid, &row)) {
    rows.emplace_back(row_oid, static_cast<Oid>(row.at(0).AsInt()));
  }
  for (const auto& [storage_row, tuple_oid] : rows) {
    INSIGHT_ASSIGN_OR_RETURN(Tuple blob_row, storage_->Get(storage_row));
    INSIGHT_ASSIGN_OR_RETURN(
        SummarySet set, SummarySet::Deserialize(blob_row.at(1).AsString()));
    std::vector<SummaryObject> kept;
    const SummaryObject* removed = nullptr;
    SummaryObject removed_copy;
    for (SummaryObject& obj : set.objects()) {
      if (obj.instance_id == instance_id) {
        removed_copy = obj;
        removed = &removed_copy;
      } else {
        kept.push_back(std::move(obj));
      }
    }
    if (removed == nullptr) continue;
    INSIGHT_RETURN_NOT_OK(
        SaveSummaries(tuple_oid, storage_row, SummarySet(std::move(kept))));
    INSIGHT_RETURN_NOT_OK(Notify(tuple_oid, instance_id, removed, nullptr));
  }
  return Status::OK();
}

Result<const SummaryInstance*> SummaryManager::FindInstance(
    std::string_view name) const {
  for (const SummaryInstance& inst : instances_) {
    if (EqualsIgnoreCase(inst.name(), name)) return &inst;
  }
  return Status::NotFound("instance " + std::string(name) + " not linked to " +
                          base_->name());
}

bool SummaryManager::HasInstance(uint32_t instance_id) const {
  for (const SummaryInstance& inst : instances_) {
    if (inst.id() == instance_id) return true;
  }
  return false;
}

Status SummaryManager::CollectLabelZoneCounts(
    Oid tuple_oid, std::vector<std::pair<std::string, int64_t>>* out) const {
  const BTree* idx = storage_->GetColumnIndex("tuple_oid");
  if (idx == nullptr) return Status::OK();
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> hits,
      idx->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(tuple_oid)))));
  for (uint64_t hit : hits) {
    // Union over every stored version of the summary row, any stamp: a
    // zone rebuilt from this union stays conservative for any snapshot.
    auto versions = storage_->GetVersionTuples(static_cast<Oid>(hit));
    if (!versions.ok()) continue;
    for (const Tuple& row : *versions) {
      if (static_cast<Oid>(row.at(0).AsInt()) != tuple_oid) {
        continue;  // Stale index entry from a reused slot.
      }
      auto set = SummarySet::Deserialize(row.at(1).AsString());
      if (!set.ok()) continue;
      AppendLabelZoneCounts(*set, out);
    }
  }
  return Status::OK();
}

Result<Oid> SummaryManager::FindStorageRow(Oid tuple_oid,
                                           const Snapshot& snap) const {
  const BTree* idx = storage_->GetColumnIndex("tuple_oid");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> hits,
      idx->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(tuple_oid)))));
  for (uint64_t hit : hits) {
    auto row = storage_->Get(static_cast<Oid>(hit), snap);
    if (!row.ok()) {
      if (row.status().IsNotFound()) continue;  // Invisible version.
      return row.status();
    }
    if (static_cast<Oid>(row.ValueOrDie().at(0).AsInt()) != tuple_oid) {
      continue;  // Stale index entry from a sibling version.
    }
    return static_cast<Oid>(hit);
  }
  return kInvalidOid;
}

Result<Oid> SummaryManager::FindStorageRowForWrite(Oid tuple_oid,
                                                   const Snapshot& snap) const {
  const BTree* idx = storage_->GetColumnIndex("tuple_oid");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> hits,
      idx->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(tuple_oid)))));
  for (uint64_t hit : hits) {
    auto row = storage_->Get(static_cast<Oid>(hit), snap);
    if (row.ok()) {
      if (static_cast<Oid>(row.ValueOrDie().at(0).AsInt()) != tuple_oid) {
        continue;
      }
      return static_cast<Oid>(hit);
    }
    if (!row.status().IsNotFound()) return row.status();
    // The storage row exists but is invisible. If another open
    // transaction created it (or committed it past our snapshot), two
    // writers are racing to summarize the same tuple: first writer wins.
    INSIGHT_RETURN_NOT_OK(
        storage_->CheckInsertConflict(static_cast<Oid>(hit), snap));
  }
  return kInvalidOid;
}

Status SummaryManager::SaveSummaries(Oid tuple_oid, Oid storage_row,
                                     const SummarySet& set) {
  std::string blob;
  set.Serialize(&blob);
  Tuple row({Value::Int(static_cast<int64_t>(tuple_oid)),
             Value::String(std::move(blob))});
  Status saved;
  if (storage_row == kInvalidOid) {
    saved = storage_->Insert(row).status();
  } else {
    saved = storage_->Update(storage_row, row);
  }
  INSIGHT_RETURN_NOT_OK(saved);
  // Every summary mutation funnels through here (including WAL replay
  // and snapshot restore), which is what makes "no label entry on a
  // tracked page => no annotated row there" a zone-map invariant: widen
  // the label bounds of every page holding a version of the tuple.
  std::vector<std::pair<std::string, int64_t>> counts;
  AppendLabelZoneCounts(set, &counts);
  if (!counts.empty()) {
    auto versions = base_->GetVersions(tuple_oid);
    if (versions.ok()) {
      std::vector<PageId> pages;
      for (const Table::VersionInfo& info : *versions) {
        pages.push_back(info.loc.page_id);
      }
      std::sort(pages.begin(), pages.end());
      pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
      for (PageId page : pages) {
        base_->zone_maps()->WidenLabels(page, counts);
      }
    }
  }
  return Status::OK();
}

Status SummaryManager::Notify(Oid oid, uint32_t instance_id,
                              const SummaryObject* before,
                              const SummaryObject* after) {
  auto it = listeners_.find(instance_id);
  if (it == listeners_.end()) return Status::OK();
  for (const auto& [id, listener] : it->second) {
    INSIGHT_RETURN_NOT_OK(listener(oid, before, after));
  }
  return Status::OK();
}

SummaryManager::ListenerId SummaryManager::AddListener(uint32_t instance_id,
                                                       Listener listener) {
  const ListenerId id = next_listener_id_++;
  listeners_[instance_id].emplace_back(id, std::move(listener));
  return id;
}

void SummaryManager::RemoveListener(ListenerId id) {
  for (auto& [instance_id, listeners] : listeners_) {
    for (size_t i = 0; i < listeners.size(); ++i) {
      if (listeners[i].first == id) {
        listeners.erase(listeners.begin() + static_cast<long>(i));
        return;
      }
    }
  }
}

AnnotationResolver SummaryManager::MakeResolver() const {
  AnnotationStore* store = annotations_;
  return [store](AnnId id) {
    Transaction* txn = CurrentTxn();
    return store->GetText(
        id, txn != nullptr ? txn->snapshot() : Snapshot::Latest());
  };
}

Result<AnnId> SummaryManager::AddAnnotation(
    const std::string& text, const std::vector<AnnotationTarget>& targets) {
  INSIGHT_ASSIGN_OR_RETURN(AnnId ann, annotations_->Add(text, targets));
  INSIGHT_RETURN_NOT_OK(SummarizeAdded(ann, text, targets));
  return ann;
}

Status SummaryManager::AddAnnotationWithId(
    AnnId ann, const std::string& text,
    const std::vector<AnnotationTarget>& targets) {
  INSIGHT_RETURN_NOT_OK(annotations_->AddWithId(ann, text, targets));
  return SummarizeAdded(ann, text, targets);
}

Status SummaryManager::SummarizeAdded(
    AnnId ann, const std::string& text,
    const std::vector<AnnotationTarget>& targets) {
  Transaction* txn = CurrentTxn();
  const Snapshot snap = txn != nullptr ? txn->snapshot() : Snapshot::Latest();
  // Group targets per tuple (an annotation may span cells of one tuple).
  std::map<Oid, uint64_t> per_tuple;
  for (const AnnotationTarget& t : targets) {
    per_tuple[t.oid] |= t.column_mask;
  }
  for (const auto& [oid, mask] : per_tuple) {
    INSIGHT_ASSIGN_OR_RETURN(Oid storage_row,
                             FindStorageRowForWrite(oid, snap));
    SummarySet set;
    if (storage_row != kInvalidOid) {
      INSIGHT_ASSIGN_OR_RETURN(Tuple row, storage_->Get(storage_row, snap));
      INSIGHT_ASSIGN_OR_RETURN(set,
                               SummarySet::Deserialize(row.at(1).AsString()));
    }
    // Apply every instance first, then persist, then notify: index
    // listeners must observe the storage row already in place (backward
    // and conventional pointers both resolve through it or the base heap).
    struct Event {
      uint32_t instance_id;
      std::optional<SummaryObject> before;
      SummaryObject after;
    };
    std::vector<Event> events;
    for (const SummaryInstance& inst : instances_) {
      SummaryObject* obj = nullptr;
      for (SummaryObject& candidate : set.objects()) {
        if (candidate.instance_id == inst.id()) {
          obj = &candidate;
          break;
        }
      }
      Event event;
      event.instance_id = inst.id();
      if (obj == nullptr) {
        set.Add(inst.NewObject(oid, next_obj_id_++));
        obj = &set.objects().back();
      } else {
        event.before = *obj;
      }
      INSIGHT_RETURN_NOT_OK(inst.ApplyAdd(obj, ann, text, mask));
      event.after = *obj;
      events.push_back(std::move(event));
    }
    INSIGHT_RETURN_NOT_OK(SaveSummaries(oid, storage_row, set));
    for (const Event& event : events) {
      INSIGHT_RETURN_NOT_OK(
          Notify(oid, event.instance_id,
                 event.before.has_value() ? &*event.before : nullptr,
                 &event.after));
    }
  }
  return Status::OK();
}

Status SummaryManager::RemoveAnnotation(AnnId ann) {
  Transaction* txn = CurrentTxn();
  const Snapshot snap = txn != nullptr ? txn->snapshot() : Snapshot::Latest();
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Oid> tuples,
                           annotations_->TuplesFor(ann, snap));

  const AnnotationResolver resolver = MakeResolver();
  for (Oid oid : tuples) {
    INSIGHT_ASSIGN_OR_RETURN(Oid storage_row,
                             FindStorageRowForWrite(oid, snap));
    if (storage_row == kInvalidOid) continue;
    INSIGHT_ASSIGN_OR_RETURN(Tuple row, storage_->Get(storage_row, snap));
    INSIGHT_ASSIGN_OR_RETURN(SummarySet set,
                             SummarySet::Deserialize(row.at(1).AsString()));
    for (const SummaryInstance& inst : instances_) {
      SummaryObject* obj = set.GetSummaryObject(inst.name());
      if (obj == nullptr) continue;
      SummaryObject before = *obj;
      Status st = inst.ApplyRemove(obj, ann, resolver);
      if (st.IsNotFound()) continue;  // Not contributing to this object.
      INSIGHT_RETURN_NOT_OK(st);
      INSIGHT_RETURN_NOT_OK(Notify(oid, inst.id(), &before, obj));
    }
    INSIGHT_RETURN_NOT_OK(SaveSummaries(oid, storage_row, set));
  }
  return annotations_->Delete(ann);
}

Status SummaryManager::OnTupleDeleted(Oid oid) {
  Transaction* txn = CurrentTxn();
  const Snapshot snap = txn != nullptr ? txn->snapshot() : Snapshot::Latest();
  INSIGHT_ASSIGN_OR_RETURN(Oid storage_row, FindStorageRowForWrite(oid, snap));
  if (storage_row == kInvalidOid) return Status::OK();
  INSIGHT_ASSIGN_OR_RETURN(Tuple row, storage_->Get(storage_row, snap));
  INSIGHT_ASSIGN_OR_RETURN(SummarySet set,
                           SummarySet::Deserialize(row.at(1).AsString()));
  for (const SummaryObject& obj : set.objects()) {
    INSIGHT_RETURN_NOT_OK(Notify(oid, obj.instance_id, &obj, nullptr));
  }
  return storage_->Delete(storage_row);
}

Result<SummarySet> SummaryManager::GetSummaries(Oid oid,
                                                const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(Oid storage_row, FindStorageRow(oid, snap));
  if (storage_row == kInvalidOid) return SummarySet();
  INSIGHT_ASSIGN_OR_RETURN(Tuple row, storage_->Get(storage_row, snap));
  return SummarySet::Deserialize(row.at(1).AsString());
}

Status SummaryManager::ForEachSummaryRow(
    const std::function<Status(Oid, const SummarySet&)>& fn) const {
  auto it = storage_->Scan();
  Oid row_oid;
  Tuple row;
  while (it.Next(&row_oid, &row)) {
    INSIGHT_ASSIGN_OR_RETURN(SummarySet set,
                             SummarySet::Deserialize(row.at(1).AsString()));
    INSIGHT_RETURN_NOT_OK(fn(static_cast<Oid>(row.at(0).AsInt()), set));
  }
  return Status::OK();
}

uint64_t SummaryManager::summary_storage_bytes() const {
  return storage_->heap_bytes() + storage_->oid_index_bytes();
}

}  // namespace insight
