#include "summary/summary_algebra.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace insight {

AnnotationResolver NullResolver() {
  return [](AnnId) -> Result<std::string> {
    return Status::NotFound("no annotation resolver");
  };
}

namespace {

// Remaps an input-column mask to output positions; 0 when no targeted
// column survives.
uint64_t RemapMask(uint64_t mask, const std::vector<size_t>& kept_columns) {
  uint64_t out = 0;
  for (size_t j = 0; j < kept_columns.size(); ++j) {
    if (mask & (1ULL << kept_columns[j])) out |= (1ULL << j);
  }
  return out;
}

std::string ElectedRepText(const AnnotationResolver& resolver, AnnId ann) {
  auto text = resolver(ann);
  if (!text.ok()) return "(representative unavailable)";
  std::string t = std::move(text).ValueOrDie();
  if (t.size() > kClusterRepMaxChars) t.resize(kClusterRepMaxChars);
  return t;
}

Result<SummaryObject> ProjectObject(const SummaryObject& obj,
                                    const std::vector<size_t>& kept_columns,
                                    const AnnotationResolver& resolver) {
  SummaryObject out = obj;
  for (size_t i = 0; i < out.elements.size(); ++i) {
    std::vector<ElementRef> kept;
    kept.reserve(out.elements[i].size());
    for (const ElementRef& e : out.elements[i]) {
      const uint64_t mask = RemapMask(e.column_mask, kept_columns);
      if (mask != 0) kept.push_back(ElementRef{e.ann_id, mask});
    }
    out.elements[i] = std::move(kept);
    switch (out.type) {
      case SummaryType::kClassifier:
        out.reps[i].count = static_cast<int64_t>(out.elements[i].size());
        break;
      case SummaryType::kSnippet:
        break;  // Empty element list marks the snippet for removal below.
      case SummaryType::kCluster: {
        out.reps[i].count = static_cast<int64_t>(out.elements[i].size());
        // Re-elect the representative if it was eliminated.
        if (!out.elements[i].empty()) {
          const AnnId rep_ann = out.reps[i].source_ann;
          const bool rep_alive =
              std::any_of(out.elements[i].begin(), out.elements[i].end(),
                          [&](const ElementRef& e) {
                            return e.ann_id == rep_ann;
                          });
          if (!rep_alive) {
            const AnnId elected = out.elements[i].front().ann_id;
            out.reps[i].source_ann = elected;
            out.reps[i].text = ElectedRepText(resolver, elected);
          }
        }
        break;
      }
    }
  }
  // Drop empty snippets and empty cluster groups; classifier labels stay
  // (with count 0 — see Figure 3's (Other, 0)).
  if (out.type != SummaryType::kClassifier) {
    size_t write = 0;
    for (size_t i = 0; i < out.reps.size(); ++i) {
      if (!out.elements[i].empty()) {
        if (write != i) {
          out.reps[write] = std::move(out.reps[i]);
          out.elements[write] = std::move(out.elements[i]);
        }
        ++write;
      }
    }
    out.reps.resize(write);
    out.elements.resize(write);
  }
  INSIGHT_RETURN_NOT_OK(out.CheckInvariants());
  return out;
}

// Deduplicates an element list by annotation id, OR-ing column masks of
// duplicate references.
std::vector<ElementRef> DedupElements(std::vector<ElementRef> elems) {
  std::map<AnnId, uint64_t> merged;
  for (const ElementRef& e : elems) merged[e.ann_id] |= e.column_mask;
  std::vector<ElementRef> out;
  out.reserve(merged.size());
  for (const auto& [id, mask] : merged) out.push_back(ElementRef{id, mask});
  return out;
}

void ShiftMasks(SummaryObject* obj, size_t shift) {
  if (shift == 0) return;
  for (auto& elems : obj->elements) {
    for (ElementRef& e : elems) e.column_mask <<= shift;
  }
}

Result<SummaryObject> MergeClassifiers(const SummaryObject& left,
                                       const SummaryObject& right) {
  if (left.reps.size() != right.reps.size()) {
    return Status::Internal("classifier label sets differ for instance " +
                            left.instance_name);
  }
  SummaryObject out = left;
  for (size_t i = 0; i < out.reps.size(); ++i) {
    std::vector<ElementRef> combined = out.elements[i];
    combined.insert(combined.end(), right.elements[i].begin(),
                    right.elements[i].end());
    out.elements[i] = DedupElements(std::move(combined));
    out.reps[i].count = static_cast<int64_t>(out.elements[i].size());
  }
  return out;
}

Result<SummaryObject> MergeSnippets(const SummaryObject& left,
                                    const SummaryObject& right) {
  SummaryObject out = left;
  std::set<AnnId> seen;
  for (const auto& elems : out.elements) {
    for (const ElementRef& e : elems) seen.insert(e.ann_id);
  }
  for (size_t i = 0; i < right.reps.size(); ++i) {
    const AnnId src = right.elements[i].front().ann_id;
    if (seen.count(src) > 0) {
      // Same annotation summarized on both sides: merge the masks into
      // the existing entry.
      for (size_t j = 0; j < out.elements.size(); ++j) {
        if (out.elements[j].front().ann_id == src) {
          out.elements[j].front().column_mask |=
              right.elements[i].front().column_mask;
          break;
        }
      }
      continue;
    }
    seen.insert(src);
    out.reps.push_back(right.reps[i]);
    out.elements.push_back(right.elements[i]);
  }
  return out;
}

Result<SummaryObject> MergeClusters(const SummaryObject& left,
                                    const SummaryObject& right) {
  // Union-find over groups keyed by shared annotation ids: overlapping
  // groups combine; disjoint groups propagate separately (Example 1).
  struct Group {
    Representative rep;
    std::vector<ElementRef> elems;
    bool from_left;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < left.reps.size(); ++i) {
    groups.push_back(Group{left.reps[i], left.elements[i], true});
  }
  for (size_t i = 0; i < right.reps.size(); ++i) {
    groups.push_back(Group{right.reps[i], right.elements[i], false});
  }
  std::vector<size_t> parent(groups.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<AnnId, size_t> owner;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const ElementRef& e : groups[g].elems) {
      auto [it, inserted] = owner.emplace(e.ann_id, g);
      if (!inserted) parent[find(g)] = find(it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t g = 0; g < groups.size(); ++g) {
    components[find(g)].push_back(g);
  }

  SummaryObject out = left;
  out.reps.clear();
  out.elements.clear();
  for (const auto& [root, members] : components) {
    std::vector<ElementRef> elems;
    // Prefer a left-side representative so propagation is deterministic
    // and matches the figure (A1+B5 keep A1's representative).
    const Group* rep_group = nullptr;
    for (size_t g : members) {
      elems.insert(elems.end(), groups[g].elems.begin(),
                   groups[g].elems.end());
      if (rep_group == nullptr || (groups[g].from_left &&
                                   !rep_group->from_left)) {
        rep_group = &groups[g];
      }
    }
    elems = DedupElements(std::move(elems));
    Representative rep = rep_group->rep;
    rep.count = static_cast<int64_t>(elems.size());
    out.reps.push_back(std::move(rep));
    out.elements.push_back(std::move(elems));
  }
  return out;
}

}  // namespace

Result<SummarySet> ProjectSummaries(const SummarySet& set,
                                    const std::vector<size_t>& kept_columns,
                                    const AnnotationResolver& resolver) {
  std::vector<SummaryObject> out;
  out.reserve(set.objects().size());
  for (const SummaryObject& obj : set.objects()) {
    INSIGHT_ASSIGN_OR_RETURN(SummaryObject projected,
                             ProjectObject(obj, kept_columns, resolver));
    // Objects that lost every contributing annotation still propagate
    // (a classifier with all-zero labels is meaningful: "no annotations
    // on the projected columns"); snippet/cluster objects with no
    // representatives left are dropped.
    if (projected.type == SummaryType::kClassifier ||
        !projected.reps.empty()) {
      out.push_back(std::move(projected));
    }
  }
  return SummarySet(std::move(out));
}

Result<SummarySet> MergeSummaries(const SummarySet& left,
                                  const SummarySet& right,
                                  size_t left_arity) {
  std::vector<SummaryObject> out;
  std::set<uint32_t> right_merged;
  for (const SummaryObject& lobj : left.objects()) {
    const SummaryObject* robj = nullptr;
    for (const SummaryObject& candidate : right.objects()) {
      if (candidate.instance_id == lobj.instance_id) {
        robj = &candidate;
        break;
      }
    }
    if (robj == nullptr) {
      out.push_back(lobj);  // No counterpart: propagate unchanged.
      continue;
    }
    right_merged.insert(robj->instance_id);
    SummaryObject shifted_right = *robj;
    ShiftMasks(&shifted_right, left_arity);
    SummaryObject merged;
    switch (lobj.type) {
      case SummaryType::kClassifier: {
        INSIGHT_ASSIGN_OR_RETURN(merged,
                                 MergeClassifiers(lobj, shifted_right));
        break;
      }
      case SummaryType::kSnippet: {
        INSIGHT_ASSIGN_OR_RETURN(merged, MergeSnippets(lobj, shifted_right));
        break;
      }
      case SummaryType::kCluster: {
        INSIGHT_ASSIGN_OR_RETURN(merged, MergeClusters(lobj, shifted_right));
        break;
      }
    }
    merged.tuple_id = kInvalidOid;  // Merged objects span tuples.
    INSIGHT_RETURN_NOT_OK(merged.CheckInvariants());
    out.push_back(std::move(merged));
  }
  for (const SummaryObject& robj : right.objects()) {
    if (right_merged.count(robj.instance_id) > 0) continue;
    SummaryObject shifted = robj;
    ShiftMasks(&shifted, left_arity);
    out.push_back(std::move(shifted));
  }
  return SummarySet(std::move(out));
}

}  // namespace insight
