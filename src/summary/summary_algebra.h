#ifndef INSIGHTNOTES_SUMMARY_SUMMARY_ALGEBRA_H_
#define INSIGHTNOTES_SUMMARY_SUMMARY_ALGEBRA_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "summary/summary_object.h"

namespace insight {

/// Fetches a raw annotation's text by id — used to elect a replacement
/// cluster representative when projection drops the current one
/// (Example 1: A5 replaces A2). A point lookup, not a scan.
using AnnotationResolver = std::function<Result<std::string>(AnnId)>;

/// Resolver that never finds anything; callers that cannot reach raw
/// storage get "(representative unavailable)" texts instead of failures.
AnnotationResolver NullResolver();

/// Projection semantics over summaries (Theorems 1-2 of the base paper:
/// annotation effects must be eliminated *before* any merge). Given the
/// list of input-column positions that survive the projection (in output
/// order), rewrites each object:
///   - every element's column mask is remapped to output positions;
///     elements whose mask becomes empty are eliminated
///   - Classifier: per-label counts drop; empty labels stay with count 0
///   - Snippet: snippets of eliminated annotations are removed
///   - Cluster: group sizes drop; dropped representatives are re-elected
///     from surviving members via `resolver`; empty groups are removed
Result<SummarySet> ProjectSummaries(const SummarySet& set,
                                    const std::vector<size_t>& kept_columns,
                                    const AnnotationResolver& resolver);

/// Merge semantics for joins and grouping. Objects of instances present on
/// only one side propagate unchanged; objects of the same instance merge
/// with common annotations counted once (the paper's double-counting
/// guard) and, for clusters, overlapping groups (sharing any annotation)
/// combined while disjoint groups propagate separately.
///
/// `left_arity` is the number of data columns of the left input: right-side
/// element masks are shifted by it so masks index the concatenated output
/// row. Pass 0 for same-schema merges (grouping/aggregation, duplicate
/// elimination), where both sides' masks already share one column space.
Result<SummarySet> MergeSummaries(const SummarySet& left,
                                  const SummarySet& right, size_t left_arity);

}  // namespace insight

#endif  // INSIGHTNOTES_SUMMARY_SUMMARY_ALGEBRA_H_
