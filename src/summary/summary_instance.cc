#include "summary/summary_instance.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "mining/clustream.h"

namespace insight {

namespace {
std::atomic<uint32_t> g_next_instance_id{1};
}  // namespace

uint32_t SummaryInstance::NextId() { return g_next_instance_id.fetch_add(1); }

SummaryInstance::SummaryInstance(std::string name, SummaryType type)
    : id_(NextId()), name_(std::move(name)), type_(type) {}

SummaryInstance SummaryInstance::Classifier(
    std::string name, std::vector<std::string> labels,
    std::shared_ptr<NaiveBayesClassifier> model) {
  INSIGHT_CHECK(!labels.empty()) << "classifier instance without labels";
  SummaryInstance inst(std::move(name), SummaryType::kClassifier);
  inst.labels_ = std::move(labels);
  inst.classifier_ = std::move(model);
  return inst;
}

SummaryInstance SummaryInstance::Snippet(std::string name,
                                         SnippetSummarizer::Options options) {
  SummaryInstance inst(std::move(name), SummaryType::kSnippet);
  inst.summarizer_ = std::make_shared<SnippetSummarizer>(options);
  return inst;
}

SummaryInstance SummaryInstance::Cluster(std::string name,
                                         double min_similarity) {
  SummaryInstance inst(std::move(name), SummaryType::kCluster);
  inst.min_similarity_ = min_similarity;
  return inst;
}

SummaryObject SummaryInstance::NewObject(Oid tuple, uint64_t obj_id) const {
  SummaryObject obj;
  obj.obj_id = obj_id;
  obj.instance_id = id_;
  obj.tuple_id = tuple;
  obj.type = type_;
  obj.instance_name = name_;
  if (type_ == SummaryType::kClassifier) {
    obj.reps.reserve(labels_.size());
    obj.elements.resize(labels_.size());
    for (const std::string& label : labels_) {
      obj.reps.push_back(Representative{label, 0, 0});
    }
  }
  return obj;
}

Status SummaryInstance::ApplyAdd(SummaryObject* obj, AnnId ann,
                                 const std::string& text,
                                 uint64_t mask) const {
  if (obj->instance_id != id_) {
    return Status::InvalidArgument("object belongs to another instance");
  }
  switch (type_) {
    case SummaryType::kClassifier: {
      const size_t idx = classifier_ != nullptr
                             ? classifier_->ClassifyIndex(text)
                             : labels_.size() - 1;
      // Already-present annotation (attached to more cells): OR masks.
      for (ElementRef& e : obj->elements[idx]) {
        if (e.ann_id == ann) {
          e.column_mask |= mask;
          return Status::OK();
        }
      }
      obj->elements[idx].push_back(ElementRef{ann, mask});
      obj->reps[idx].count =
          static_cast<int64_t>(obj->elements[idx].size());
      return Status::OK();
    }
    case SummaryType::kSnippet: {
      if (!summarizer_->ShouldSummarize(text)) return Status::OK();
      for (auto& elems : obj->elements) {
        if (elems.front().ann_id == ann) {
          elems.front().column_mask |= mask;
          return Status::OK();
        }
      }
      Representative rep;
      rep.text = summarizer_->Summarize(text);
      rep.source_ann = ann;
      obj->reps.push_back(std::move(rep));
      obj->elements.push_back({ElementRef{ann, mask}});
      return Status::OK();
    }
    case SummaryType::kCluster: {
      for (size_t i = 0; i < obj->elements.size(); ++i) {
        for (ElementRef& e : obj->elements[i]) {
          if (e.ann_id == ann) {
            e.column_mask |= mask;
            return Status::OK();
          }
        }
      }
      const TextFeature feature = FeaturizeText(text);
      size_t best = obj->reps.size();
      double best_sim = min_similarity_;
      for (size_t i = 0; i < obj->reps.size(); ++i) {
        const double sim =
            CosineSimilarity(feature, FeaturizeText(obj->reps[i].text));
        if (sim >= best_sim) {
          best_sim = sim;
          best = i;
        }
      }
      if (best < obj->reps.size()) {
        obj->elements[best].push_back(ElementRef{ann, mask});
        obj->reps[best].count =
            static_cast<int64_t>(obj->elements[best].size());
      } else {
        Representative rep;
        rep.text = text.substr(0, kClusterRepMaxChars);
        rep.count = 1;
        rep.source_ann = ann;
        obj->reps.push_back(std::move(rep));
        obj->elements.push_back({ElementRef{ann, mask}});
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status SummaryInstance::ApplyRemove(SummaryObject* obj, AnnId ann,
                                    const AnnotationResolver& resolver) const {
  if (obj->instance_id != id_) {
    return Status::InvalidArgument("object belongs to another instance");
  }
  for (size_t i = 0; i < obj->elements.size(); ++i) {
    auto& elems = obj->elements[i];
    auto it = std::find_if(elems.begin(), elems.end(), [&](const ElementRef& e) {
      return e.ann_id == ann;
    });
    if (it == elems.end()) continue;
    elems.erase(it);
    switch (type_) {
      case SummaryType::kClassifier:
        obj->reps[i].count = static_cast<int64_t>(elems.size());
        break;
      case SummaryType::kSnippet:
        obj->reps.erase(obj->reps.begin() + i);
        obj->elements.erase(obj->elements.begin() + i);
        break;
      case SummaryType::kCluster:
        if (elems.empty()) {
          obj->reps.erase(obj->reps.begin() + i);
          obj->elements.erase(obj->elements.begin() + i);
        } else {
          obj->reps[i].count = static_cast<int64_t>(elems.size());
          if (obj->reps[i].source_ann == ann) {
            const AnnId elected = elems.front().ann_id;
            obj->reps[i].source_ann = elected;
            auto text = resolver(elected);
            std::string t = text.ok() ? std::move(text).ValueOrDie()
                                      : "(representative unavailable)";
            if (t.size() > kClusterRepMaxChars) t.resize(kClusterRepMaxChars);
            obj->reps[i].text = std::move(t);
          }
        }
        break;
    }
    return Status::OK();
  }
  return Status::NotFound("annotation " + std::to_string(ann) +
                          " not in object " + obj->instance_name);
}

}  // namespace insight
