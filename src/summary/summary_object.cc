#include "summary/summary_object.h"

#include <set>

#include "common/string_util.h"

namespace insight {

const char* SummaryTypeToString(SummaryType t) {
  switch (t) {
    case SummaryType::kClassifier:
      return "Classifier";
    case SummaryType::kSnippet:
      return "Snippet";
    case SummaryType::kCluster:
      return "Cluster";
  }
  return "?";
}

int64_t SummaryObject::TotalAnnotations() const {
  std::set<AnnId> distinct;
  for (const auto& elems : elements) {
    for (const ElementRef& e : elems) distinct.insert(e.ann_id);
  }
  return static_cast<int64_t>(distinct.size());
}

Result<std::string> SummaryObject::GetLabelName(size_t i) const {
  if (type != SummaryType::kClassifier) {
    return Status::TypeError("getLabelName on " + std::string(
                                 SummaryTypeToString(type)));
  }
  if (i >= reps.size()) return Status::OutOfRange("label index");
  return reps[i].text;
}

Result<int64_t> SummaryObject::GetLabelValue(size_t i) const {
  if (type != SummaryType::kClassifier) {
    return Status::TypeError("getLabelValue on " + std::string(
                                 SummaryTypeToString(type)));
  }
  if (i >= reps.size()) return Status::OutOfRange("label index");
  return reps[i].count;
}

Result<size_t> SummaryObject::GetLabelIndex(std::string_view label) const {
  if (type != SummaryType::kClassifier) {
    return Status::TypeError("getLabelIndex on " + std::string(
                                 SummaryTypeToString(type)));
  }
  for (size_t i = 0; i < reps.size(); ++i) {
    if (EqualsIgnoreCase(reps[i].text, label)) return i;
  }
  return Status::NotFound("no class label " + std::string(label));
}

Result<int64_t> SummaryObject::GetLabelValue(std::string_view label) const {
  auto exact = GetLabelIndex(label);
  if (exact.ok()) return reps[*exact].count;
  // Hierarchical lookup: an inner label sums its subtree of leaves.
  const std::string prefix = ToLower(std::string(label)) + "/";
  int64_t sum = 0;
  bool found = false;
  for (const Representative& rep : reps) {
    if (StartsWith(ToLower(rep.text), prefix)) {
      sum += rep.count;
      found = true;
    }
  }
  if (found) return sum;
  return exact.status();
}

Result<std::string> SummaryObject::GetSnippet(size_t i) const {
  if (type != SummaryType::kSnippet) {
    return Status::TypeError("getSnippet on " + std::string(
                                 SummaryTypeToString(type)));
  }
  if (i >= reps.size()) return Status::OutOfRange("snippet index");
  return reps[i].text;
}

bool SummaryObject::ContainsSingle(
    const std::vector<std::string>& keywords) const {
  for (const Representative& rep : reps) {
    bool all = true;
    for (const std::string& kw : keywords) {
      if (!ContainsWord(rep.text, kw)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool SummaryObject::ContainsUnion(
    const std::vector<std::string>& keywords) const {
  for (const std::string& kw : keywords) {
    bool found = false;
    for (const Representative& rep : reps) {
      if (ContainsWord(rep.text, kw)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<std::string> SummaryObject::GetRepresentative(size_t i) const {
  if (type != SummaryType::kCluster) {
    return Status::TypeError("getRepresentative on " + std::string(
                                 SummaryTypeToString(type)));
  }
  if (i >= reps.size()) return Status::OutOfRange("group index");
  return reps[i].text;
}

Result<int64_t> SummaryObject::GetGroupSize(size_t i) const {
  if (type != SummaryType::kCluster) {
    return Status::TypeError("getGroupSize on " + std::string(
                                 SummaryTypeToString(type)));
  }
  if (i >= reps.size()) return Status::OutOfRange("group index");
  return reps[i].count;
}

Status SummaryObject::CheckInvariants() const {
  if (reps.size() != elements.size()) {
    return Status::Internal("rep/element arity mismatch in " + instance_name);
  }
  for (size_t i = 0; i < reps.size(); ++i) {
    switch (type) {
      case SummaryType::kClassifier:
      case SummaryType::kCluster:
        if (reps[i].count != static_cast<int64_t>(elements[i].size())) {
          return Status::Internal(
              "count " + std::to_string(reps[i].count) + " != elements " +
              std::to_string(elements[i].size()) + " in " + instance_name);
        }
        break;
      case SummaryType::kSnippet:
        if (elements[i].size() != 1) {
          return Status::Internal("snippet rep with " +
                                  std::to_string(elements[i].size()) +
                                  " source annotations");
        }
        break;
    }
    // Cluster groups must contain their representative.
    if (type == SummaryType::kCluster && !elements[i].empty()) {
      bool found = false;
      for (const ElementRef& e : elements[i]) {
        if (e.ann_id == reps[i].source_ann) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("cluster representative not in its group");
      }
    }
  }
  return Status::OK();
}

void SummaryObject::Serialize(std::string* dst) const {
  PutU8(dst, static_cast<uint8_t>(type));
  PutU64(dst, obj_id);
  PutU32(dst, instance_id);
  PutU64(dst, tuple_id);
  PutString(dst, instance_name);
  PutU32(dst, static_cast<uint32_t>(reps.size()));
  for (size_t i = 0; i < reps.size(); ++i) {
    PutString(dst, reps[i].text);
    PutI64(dst, reps[i].count);
    PutU64(dst, reps[i].source_ann);
    PutU32(dst, static_cast<uint32_t>(elements[i].size()));
    for (const ElementRef& e : elements[i]) {
      PutU64(dst, e.ann_id);
      PutU64(dst, e.column_mask);
    }
  }
}

Result<SummaryObject> SummaryObject::Deserialize(SerdeReader* reader) {
  SummaryObject obj;
  uint8_t type;
  if (!reader->ReadU8(&type)) return Status::Corruption("sobj: type");
  if (type < 1 || type > 3) return Status::Corruption("sobj: bad type");
  obj.type = static_cast<SummaryType>(type);
  if (!reader->ReadU64(&obj.obj_id)) return Status::Corruption("sobj: id");
  if (!reader->ReadU32(&obj.instance_id)) {
    return Status::Corruption("sobj: instance");
  }
  uint64_t tuple_id;
  if (!reader->ReadU64(&tuple_id)) return Status::Corruption("sobj: tuple");
  obj.tuple_id = tuple_id;
  if (!reader->ReadString(&obj.instance_name)) {
    return Status::Corruption("sobj: name");
  }
  uint32_t nreps;
  if (!reader->ReadU32(&nreps)) return Status::Corruption("sobj: reps");
  if (nreps > (1u << 20)) return Status::Corruption("sobj: implausible reps");
  obj.reps.reserve(nreps);
  obj.elements.reserve(nreps);
  for (uint32_t i = 0; i < nreps; ++i) {
    Representative rep;
    if (!reader->ReadString(&rep.text)) return Status::Corruption("rep text");
    if (!reader->ReadI64(&rep.count)) return Status::Corruption("rep count");
    if (!reader->ReadU64(&rep.source_ann)) {
      return Status::Corruption("rep source");
    }
    uint32_t nelems;
    if (!reader->ReadU32(&nelems)) return Status::Corruption("rep elems");
    if (nelems > (1u << 24)) return Status::Corruption("implausible elems");
    std::vector<ElementRef> elems;
    elems.reserve(nelems);
    for (uint32_t j = 0; j < nelems; ++j) {
      ElementRef e;
      if (!reader->ReadU64(&e.ann_id)) return Status::Corruption("elem id");
      if (!reader->ReadU64(&e.column_mask)) {
        return Status::Corruption("elem mask");
      }
      elems.push_back(e);
    }
    obj.reps.push_back(std::move(rep));
    obj.elements.push_back(std::move(elems));
  }
  return obj;
}

std::string SummaryObject::ToString() const {
  std::string out = instance_name;
  out += " [";
  for (size_t i = 0; i < reps.size(); ++i) {
    if (i > 0) out += ", ";
    switch (type) {
      case SummaryType::kClassifier:
        out += "(" + reps[i].text + ", " + std::to_string(reps[i].count) + ")";
        break;
      case SummaryType::kSnippet:
        out += "\"" + reps[i].text.substr(0, 40) +
               (reps[i].text.size() > 40 ? "..." : "") + "\"";
        break;
      case SummaryType::kCluster:
        out += "(\"" + reps[i].text.substr(0, 30) +
               (reps[i].text.size() > 30 ? "..." : "") + "\", " +
               std::to_string(reps[i].count) + ")";
        break;
    }
  }
  out += "]";
  return out;
}

bool SummaryObject::operator==(const SummaryObject& other) const {
  if (type != other.type || instance_id != other.instance_id ||
      reps.size() != other.reps.size()) {
    return false;
  }
  for (size_t i = 0; i < reps.size(); ++i) {
    if (reps[i].text != other.reps[i].text ||
        reps[i].count != other.reps[i].count ||
        !(elements[i] == other.elements[i])) {
      return false;
    }
  }
  return true;
}

const SummaryObject* SummarySet::GetSummaryObject(
    std::string_view name) const {
  for (const SummaryObject& obj : objects_) {
    if (EqualsIgnoreCase(obj.instance_name, name)) return &obj;
  }
  return nullptr;
}

SummaryObject* SummarySet::GetSummaryObject(std::string_view name) {
  for (SummaryObject& obj : objects_) {
    if (EqualsIgnoreCase(obj.instance_name, name)) return &obj;
  }
  return nullptr;
}

void SummarySet::Serialize(std::string* dst) const {
  PutU32(dst, static_cast<uint32_t>(objects_.size()));
  for (const SummaryObject& obj : objects_) obj.Serialize(dst);
}

Result<SummarySet> SummarySet::Deserialize(std::string_view buf) {
  SerdeReader reader(buf);
  uint32_t n;
  if (!reader.ReadU32(&n)) return Status::Corruption("sset: count");
  if (n > (1u << 16)) return Status::Corruption("sset: implausible count");
  std::vector<SummaryObject> objects;
  objects.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    INSIGHT_ASSIGN_OR_RETURN(SummaryObject obj,
                             SummaryObject::Deserialize(&reader));
    objects.push_back(std::move(obj));
  }
  return SummarySet(std::move(objects));
}

std::string SummarySet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (i > 0) out += "; ";
    out += objects_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace insight
