#ifndef INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
#define INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/catalog.h"
#include "txn/txn.h"
#include "types/tuple.h"

namespace insight {

/// Identifier of a raw annotation. Globally unique across all relations
/// (like a PostgreSQL-wide OID): summary-merge deduplication keys on it,
/// so two different annotations must never share an id even when they
/// live in different relations' annotation tables.
using AnnId = uint64_t;

/// Which parts of which tuple an annotation is attached to. The paper's
/// combinatorial attachment model (cells, rows, columns, arbitrary sets)
/// reduces to a set of (tuple, column-bitmask) pairs:
///   one cell            -> one target, single bit
///   whole row           -> one target, all column bits
///   whole column        -> one target per tuple, same single bit
///   arbitrary cell sets -> any combination of targets/masks
struct AnnotationTarget {
  Oid oid = kInvalidOid;
  uint64_t column_mask = 0;
};

/// Bitmask helpers. Relations are limited to 64 columns (the paper's
/// largest table has 12).
inline uint64_t CellMask(size_t column) { return 1ULL << column; }
uint64_t RowMask(size_t num_columns);

/// The next AnnId the process-wide allocator would hand out (checkpoint
/// snapshots record it so ids never repeat across restarts).
AnnId PeekNextAnnId();

/// Raises the process-wide allocator to at least `next` (recovery floor).
void EnsureAnnIdAtLeast(AnnId next);

struct Annotation {
  AnnId id = 0;
  std::string text;
  std::vector<AnnotationTarget> targets;
};

/// Raw-annotation storage for one user relation: an `<rel>_Annotations`
/// heap table (text) plus an `<rel>_AnnLinks` table (ann_id, tuple oid,
/// column mask) with B-Tree indexes on both link columns, supporting
/// zoom-in (tuple -> annotations) and deletion (annotation -> links).
class AnnotationStore {
 public:
  /// Creates the side tables in `catalog`. `relation` is the annotated
  /// user table's name; `num_columns` its column count.
  static Result<std::unique_ptr<AnnotationStore>> Create(
      Catalog* catalog, const std::string& relation, size_t num_columns);

  /// Stores an annotation attached to `targets` (at least one). Returns
  /// its id.
  Result<AnnId> Add(const std::string& text,
                    const std::vector<AnnotationTarget>& targets);

  /// Stores an annotation under a caller-chosen id and bumps the global
  /// allocator past it (WAL replay reproduces original ids this way).
  Status AddWithId(AnnId id, const std::string& text,
                   const std::vector<AnnotationTarget>& targets);

  /// Enumerates every stored annotation in the annotations table's heap
  /// order (checkpoint snapshots serialize through this).
  Status ForEachAnnotation(
      const std::function<Status(const Annotation&)>& fn) const;

  Result<std::string> GetText(AnnId id,
                              const Snapshot& snap = Snapshot::Latest()) const;

  /// All annotations attached (fully or partially) to a tuple — the
  /// zoom-in path. Sees the versions visible to `snap`.
  Result<std::vector<Annotation>> ForTuple(
      Oid oid, const Snapshot& snap = Snapshot::Latest()) const;

  /// The column mask with which annotation `id` is attached to `oid`
  /// (0 when not attached).
  Result<uint64_t> MaskFor(AnnId id, Oid oid,
                           const Snapshot& snap = Snapshot::Latest()) const;

  /// Distinct tuples annotation `id` is attached to.
  Result<std::vector<Oid>> TuplesFor(
      AnnId id, const Snapshot& snap = Snapshot::Latest()) const;

  /// Removes the annotation and all its links.
  Status Delete(AnnId id);

  uint64_t num_annotations() const { return annotations_->num_rows(); }

  /// Total bytes of raw-annotation storage (text + links + indexes).
  uint64_t storage_bytes() const;

  size_t num_columns() const { return num_columns_; }

 private:
  AnnotationStore(size_t num_columns) : num_columns_(num_columns) {}

  /// Row OID in the annotations table for a given (global) annotation id,
  /// restricted to rows visible to `snap` (index hits for invisible
  /// versions are filtered out).
  Result<Oid> RowFor(AnnId id, const Snapshot& snap) const;

  size_t num_columns_;
  Table* annotations_ = nullptr;  // (ann_id INT, text STRING)
  Table* links_ = nullptr;        // (ann_id INT, tuple_oid INT, mask INT)
};

}  // namespace insight

#endif  // INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
