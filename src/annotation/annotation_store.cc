#include "annotation/annotation_store.h"

#include <atomic>

#include "common/logging.h"
#include "index/key_codec.h"

namespace insight {

namespace {
// Process-wide annotation id allocator (see AnnId's uniqueness contract).
std::atomic<uint64_t> g_next_ann_id{1};
}  // namespace

AnnId PeekNextAnnId() { return g_next_ann_id.load(); }

void EnsureAnnIdAtLeast(AnnId next) {
  uint64_t seen = g_next_ann_id.load();
  while (seen < next && !g_next_ann_id.compare_exchange_weak(seen, next)) {
  }
}

uint64_t RowMask(size_t num_columns) {
  INSIGHT_CHECK(num_columns <= 64) << "relations limited to 64 columns";
  if (num_columns == 64) return ~0ULL;
  return (1ULL << num_columns) - 1;
}

Result<std::unique_ptr<AnnotationStore>> AnnotationStore::Create(
    Catalog* catalog, const std::string& relation, size_t num_columns) {
  if (num_columns == 0 || num_columns > 64) {
    return Status::InvalidArgument("unsupported column count");
  }
  auto store =
      std::unique_ptr<AnnotationStore>(new AnnotationStore(num_columns));
  INSIGHT_ASSIGN_OR_RETURN(
      store->annotations_,
      catalog->CreateTable(relation + "_Annotations",
                           Schema({{"ann_id", ValueType::kInt64},
                                   {"text", ValueType::kString}})));
  INSIGHT_RETURN_NOT_OK(store->annotations_->CreateColumnIndex("ann_id"));
  INSIGHT_ASSIGN_OR_RETURN(
      store->links_,
      catalog->CreateTable(relation + "_AnnLinks",
                           Schema({{"ann_id", ValueType::kInt64},
                                   {"tuple_oid", ValueType::kInt64},
                                   {"mask", ValueType::kInt64}})));
  INSIGHT_RETURN_NOT_OK(store->links_->CreateColumnIndex("ann_id"));
  INSIGHT_RETURN_NOT_OK(store->links_->CreateColumnIndex("tuple_oid"));
  return store;
}

Result<AnnId> AnnotationStore::Add(
    const std::string& text, const std::vector<AnnotationTarget>& targets) {
  if (targets.empty()) {
    return Status::InvalidArgument("annotation needs at least one target");
  }
  for (const AnnotationTarget& t : targets) {
    if (t.oid == kInvalidOid || t.column_mask == 0) {
      return Status::InvalidArgument("invalid annotation target");
    }
    if ((t.column_mask & ~RowMask(num_columns_)) != 0) {
      return Status::InvalidArgument("target mask references columns past " +
                                     std::to_string(num_columns_));
    }
  }
  const AnnId ann_id = g_next_ann_id.fetch_add(1);
  INSIGHT_RETURN_NOT_OK(
      annotations_
          ->Insert(Tuple({Value::Int(static_cast<int64_t>(ann_id)),
                          Value::String(text)}))
          .status());
  for (const AnnotationTarget& t : targets) {
    INSIGHT_RETURN_NOT_OK(
        links_
            ->Insert(Tuple({Value::Int(static_cast<int64_t>(ann_id)),
                            Value::Int(static_cast<int64_t>(t.oid)),
                            Value::Int(static_cast<int64_t>(t.column_mask))}))
            .status());
  }
  return ann_id;
}

Status AnnotationStore::AddWithId(
    AnnId id, const std::string& text,
    const std::vector<AnnotationTarget>& targets) {
  if (id == 0) return Status::InvalidArgument("invalid annotation id 0");
  if (targets.empty()) {
    return Status::InvalidArgument("annotation needs at least one target");
  }
  for (const AnnotationTarget& t : targets) {
    if (t.oid == kInvalidOid || t.column_mask == 0) {
      return Status::InvalidArgument("invalid annotation target");
    }
    if ((t.column_mask & ~RowMask(num_columns_)) != 0) {
      return Status::InvalidArgument("target mask references columns past " +
                                     std::to_string(num_columns_));
    }
  }
  {
    Transaction* txn = CurrentTxn();
    const Snapshot snap =
        txn != nullptr ? txn->snapshot() : Snapshot::Latest();
    if (RowFor(id, snap).ok()) {
      return Status::AlreadyExists("annotation " + std::to_string(id));
    }
  }
  INSIGHT_RETURN_NOT_OK(
      annotations_
          ->Insert(Tuple({Value::Int(static_cast<int64_t>(id)),
                          Value::String(text)}))
          .status());
  for (const AnnotationTarget& t : targets) {
    INSIGHT_RETURN_NOT_OK(
        links_
            ->Insert(Tuple({Value::Int(static_cast<int64_t>(id)),
                            Value::Int(static_cast<int64_t>(t.oid)),
                            Value::Int(static_cast<int64_t>(t.column_mask))}))
            .status());
  }
  EnsureAnnIdAtLeast(id + 1);
  return Status::OK();
}

Status AnnotationStore::ForEachAnnotation(
    const std::function<Status(const Annotation&)>& fn) const {
  Table::Iterator it = annotations_->Scan();
  Oid row_oid;
  Tuple row;
  while (it.Next(&row_oid, &row)) {
    Annotation ann;
    ann.id = static_cast<AnnId>(row.at(0).AsInt());
    ann.text = row.at(1).AsString();
    INSIGHT_ASSIGN_OR_RETURN(std::vector<Oid> tuples, TuplesFor(ann.id));
    for (Oid oid : tuples) {
      INSIGHT_ASSIGN_OR_RETURN(uint64_t mask, MaskFor(ann.id, oid));
      ann.targets.push_back(AnnotationTarget{oid, mask});
    }
    INSIGHT_RETURN_NOT_OK(fn(ann));
  }
  return Status::OK();
}

Result<Oid> AnnotationStore::RowFor(AnnId id, const Snapshot& snap) const {
  const BTree* by_id = annotations_->GetColumnIndex("ann_id");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> hits,
      by_id->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(id)))));
  for (uint64_t hit : hits) {
    // Index entries may outlive (or precede) the versions visible to this
    // snapshot; confirm the row resolves before trusting the hit.
    auto row = annotations_->Get(static_cast<Oid>(hit), snap);
    if (!row.ok()) {
      if (row.status().IsNotFound()) continue;
      return row.status();
    }
    if (static_cast<AnnId>(row.ValueOrDie().at(0).AsInt()) != id) continue;
    return static_cast<Oid>(hit);
  }
  return Status::NotFound("annotation " + std::to_string(id));
}

Result<std::string> AnnotationStore::GetText(AnnId id,
                                             const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(Oid row_oid, RowFor(id, snap));
  INSIGHT_ASSIGN_OR_RETURN(Tuple row, annotations_->Get(row_oid, snap));
  return row.at(1).AsString();
}

Result<std::vector<Annotation>> AnnotationStore::ForTuple(
    Oid oid, const Snapshot& snap) const {
  const BTree* by_tuple = links_->GetColumnIndex("tuple_oid");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> link_oids,
      by_tuple->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(oid)))));
  std::vector<Annotation> out;
  out.reserve(link_oids.size());
  for (uint64_t link_oid : link_oids) {
    auto link_or = links_->Get(link_oid, snap);
    if (!link_or.ok()) {
      if (link_or.status().IsNotFound()) continue;  // Invisible version.
      return link_or.status();
    }
    const Tuple& link = link_or.ValueOrDie();
    if (static_cast<Oid>(link.at(1).AsInt()) != oid) continue;
    Annotation ann;
    ann.id = static_cast<AnnId>(link.at(0).AsInt());
    INSIGHT_ASSIGN_OR_RETURN(ann.text, GetText(ann.id, snap));
    ann.targets.push_back(AnnotationTarget{
        oid, static_cast<uint64_t>(link.at(2).AsInt())});
    out.push_back(std::move(ann));
  }
  return out;
}

Result<uint64_t> AnnotationStore::MaskFor(AnnId id, Oid oid,
                                          const Snapshot& snap) const {
  const BTree* by_ann = links_->GetColumnIndex("ann_id");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> link_oids,
      by_ann->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(id)))));
  for (uint64_t link_oid : link_oids) {
    auto link_or = links_->Get(link_oid, snap);
    if (!link_or.ok()) {
      if (link_or.status().IsNotFound()) continue;
      return link_or.status();
    }
    const Tuple& link = link_or.ValueOrDie();
    if (static_cast<AnnId>(link.at(0).AsInt()) != id) continue;
    if (static_cast<Oid>(link.at(1).AsInt()) == oid) {
      return static_cast<uint64_t>(link.at(2).AsInt());
    }
  }
  return 0ULL;
}

Result<std::vector<Oid>> AnnotationStore::TuplesFor(
    AnnId id, const Snapshot& snap) const {
  const BTree* by_ann = links_->GetColumnIndex("ann_id");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> link_oids,
      by_ann->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(id)))));
  std::vector<Oid> out;
  out.reserve(link_oids.size());
  for (uint64_t link_oid : link_oids) {
    auto link_or = links_->Get(link_oid, snap);
    if (!link_or.ok()) {
      if (link_or.status().IsNotFound()) continue;
      return link_or.status();
    }
    const Tuple& link = link_or.ValueOrDie();
    if (static_cast<AnnId>(link.at(0).AsInt()) != id) continue;
    const Oid oid = static_cast<Oid>(link.at(1).AsInt());
    bool seen = false;
    for (Oid existing : out) {
      if (existing == oid) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(oid);
  }
  return out;
}

Status AnnotationStore::Delete(AnnId id) {
  Transaction* txn = CurrentTxn();
  const Snapshot snap = txn != nullptr ? txn->snapshot() : Snapshot::Latest();
  const BTree* by_ann = links_->GetColumnIndex("ann_id");
  INSIGHT_ASSIGN_OR_RETURN(
      std::vector<uint64_t> link_oids,
      by_ann->Lookup(EncodeIndexKey(Value::Int(static_cast<int64_t>(id)))));
  for (uint64_t link_oid : link_oids) {
    const Status st = links_->Delete(link_oid);
    // Stale index hits (dead versions, rows already gone) are fine;
    // conflicts (kAborted) and real failures are not.
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  INSIGHT_ASSIGN_OR_RETURN(Oid row_oid, RowFor(id, snap));
  return annotations_->Delete(row_oid);
}

uint64_t AnnotationStore::storage_bytes() const {
  return annotations_->heap_bytes() + annotations_->oid_index_bytes() +
         links_->heap_bytes() + links_->oid_index_bytes();
}

}  // namespace insight
