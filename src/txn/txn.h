#ifndef INSIGHTNOTES_TXN_TXN_H_
#define INSIGHTNOTES_TXN_TXN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace insight {

/// Commit timestamp / version stamp. Committed versions carry plain
/// timestamps in [1, kTsInfinity); an uncommitted version written by
/// transaction T carries `kTxnBit | T` until commit restamps it.
using Ts = uint64_t;

/// High bit marks "stamp is a transaction id, not a timestamp".
inline constexpr Ts kTxnBit = 1ull << 63;

/// End stamp of a live version: "never deleted". Also the exclusive upper
/// bound of real commit timestamps.
inline constexpr Ts kTsInfinity = kTxnBit - 1;

/// Read timestamp that sees every committed version and no uncommitted
/// one — the legacy "latest state" view used by non-transactional code
/// (WAL replay, embedded direct API, checkpoint snapshots).
inline constexpr Ts kLatestTs = kTsInfinity - 1;

inline constexpr bool IsTxnStamp(Ts ts) { return (ts & kTxnBit) != 0; }
inline constexpr uint64_t StampTxnId(Ts ts) { return ts & ~kTxnBit; }
inline constexpr Ts MakeTxnStamp(uint64_t txn_id) { return kTxnBit | txn_id; }

/// What one reader is allowed to see: every version committed at or
/// before `read_ts`, plus the uncommitted writes of its own transaction.
/// Copyable by value; threaded through scans and index probes.
struct Snapshot {
  Ts read_ts = kLatestTs;
  uint64_t txn_id = 0;  // 0 = not inside a transaction.

  /// Latest-committed-state view (non-transactional reads).
  static Snapshot Latest() { return Snapshot{}; }
};

/// MVCC visibility check: is a version stamped [begin, end) visible to
/// `snap`? A version is visible iff it was created by the snapshot's own
/// transaction or committed at/before read_ts, AND it was not yet deleted
/// at read_ts (deletions by the snapshot's own transaction count).
inline bool VersionVisible(Ts begin, Ts end, const Snapshot& snap) {
  if (IsTxnStamp(begin)) {
    if (StampTxnId(begin) != snap.txn_id) return false;
  } else if (begin > snap.read_ts) {
    return false;
  }
  if (IsTxnStamp(end)) {
    // Deleted by an uncommitted transaction: still visible to everyone
    // except that transaction itself.
    return StampTxnId(end) != snap.txn_id;
  }
  return end > snap.read_ts;
}

/// One open transaction. Storage layers register physical side effects on
/// it while applying writes; TransactionManager drains those lists at
/// commit (restamp + schedule GC) or abort (undo, reverse order).
///
/// Not thread-safe: a transaction belongs to one session and the engine
/// serializes write application, so registration is single-threaded.
class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  Transaction(uint64_t id, Ts read_ts) : id_(id), read_ts_(read_ts) {}

  uint64_t id() const { return id_; }
  Ts read_ts() const { return read_ts_; }
  State state() const { return state_; }
  /// Stamp carried by this transaction's uncommitted versions.
  Ts stamp() const { return MakeTxnStamp(id_); }
  Snapshot snapshot() const { return Snapshot{read_ts_, id_}; }

  /// Runs at commit with the allocated commit timestamp (restamping).
  void OnCommit(std::function<void(Ts commit_ts)> fn) {
    commit_ops_.push_back(std::move(fn));
  }
  /// Runs at abort, in reverse registration order (physical undo).
  void OnAbort(std::function<void()> fn) {
    abort_ops_.push_back(std::move(fn));
  }
  /// Runs after commit once no live snapshot can still see the version
  /// this write superseded (physical reclamation of dead versions). The
  /// closure receives the GC horizon: reclaim only versions whose
  /// committed end stamp is <= horizon.
  void OnGc(std::function<Status(Ts horizon)> fn) {
    gc_ops_.push_back(std::move(fn));
  }

  size_t num_writes() const { return commit_ops_.size() + abort_ops_.size(); }

 private:
  friend class TransactionManager;

  const uint64_t id_;
  const Ts read_ts_;
  State state_ = State::kActive;
  std::vector<std::function<void(Ts)>> commit_ops_;
  std::vector<std::function<void()>> abort_ops_;
  std::vector<std::function<Status(Ts)>> gc_ops_;
};

/// The transaction the current thread is applying writes under, or null.
/// Table and Summary-BTree write paths consult this to decide between
/// versioned (transactional) and immediately-committed (legacy) behavior.
Transaction* CurrentTxn();

/// RAII scope that installs a transaction as the thread's current one.
class TxnScope {
 public:
  explicit TxnScope(Transaction* txn);
  ~TxnScope();

  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;

 private:
  Transaction* prev_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TXN_TXN_H_
