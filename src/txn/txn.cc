#include "txn/txn.h"

namespace insight {

namespace {
thread_local Transaction* t_current_txn = nullptr;
}  // namespace

Transaction* CurrentTxn() { return t_current_txn; }

TxnScope::TxnScope(Transaction* txn) : prev_(t_current_txn) {
  t_current_txn = txn;
}

TxnScope::~TxnScope() { t_current_txn = prev_; }

}  // namespace insight
