#ifndef INSIGHTNOTES_TXN_TRANSACTION_MANAGER_H_
#define INSIGHTNOTES_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/result.h"
#include "txn/txn.h"

namespace insight {

class TransactionManager;

/// RAII lease on a read timestamp. While alive, the epoch-based garbage
/// collector will not reclaim any version the leased snapshot can see.
/// Every reader — an open transaction or a single autonomous statement —
/// holds one for the duration of its reads.
class SnapshotLease {
 public:
  SnapshotLease() = default;
  SnapshotLease(TransactionManager* mgr, Ts read_ts);
  ~SnapshotLease();

  SnapshotLease(SnapshotLease&& other) noexcept;
  SnapshotLease& operator=(SnapshotLease&& other) noexcept;
  SnapshotLease(const SnapshotLease&) = delete;
  SnapshotLease& operator=(const SnapshotLease&) = delete;

  Ts read_ts() const { return read_ts_; }
  void Release();

 private:
  TransactionManager* mgr_ = nullptr;
  Ts read_ts_ = 0;
};

/// Owns MVCC policy for one database: timestamp allocation, snapshot
/// acquisition, transaction lifecycle (first-writer-wins conflicts are
/// detected in the storage layers and surface as kAborted), and
/// epoch-based garbage collection of dead versions.
///
/// Concurrency contract:
///   - `write_mu()` is THE write gate: every statement that mutates data
///     holds it while applying, as do commit, abort, GC, and checkpoint.
///     Writes are serialized; that is the design point — readers never
///     take it, which is what retires the old statement gate.
///   - It is recursive because write application can trigger a WAL
///     auto-checkpoint, which re-enters to quiesce writers.
///   - Readers only touch the atomic clock and the lease registry.
class TransactionManager {
 public:
  /// Durability hooks supplied by the WAL-owning layer. `commit` must
  /// append the commit record and force it durable before returning OK;
  /// a failed commit hook aborts the transaction. Null hooks are no-ops
  /// (in-memory / replay operation).
  struct WalHooks {
    std::function<Status(const Transaction&)> begin;
    std::function<Status(const Transaction&, Ts commit_ts)> commit;
    std::function<Status(const Transaction&)> abort;
  };

  TransactionManager() = default;
  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  void SetWalHooks(WalHooks hooks) { hooks_ = std::move(hooks); }

  /// Opens a transaction with a snapshot of the current committed state.
  Result<Transaction*> Begin();

  /// Looks up an open transaction by id (null when unknown/finished).
  Transaction* Find(uint64_t txn_id);

  /// Commits: allocates the commit timestamp, makes the commit record
  /// durable, restamps the write set, then publishes the new clock so
  /// readers see the transaction atomically. Schedules dead versions for
  /// GC. The transaction handle is invalid afterwards.
  Status Commit(uint64_t txn_id);

  /// Rolls back: undoes the write set in reverse order and logs an abort
  /// record. The transaction handle is invalid afterwards.
  Status Abort(uint64_t txn_id);

  /// Snapshot of the latest committed state (autonomous statements).
  /// NOTE: carries no GC lease — between this call and a later Lease()
  /// a concurrent commit may advance the clock and reclaim versions the
  /// snapshot still needs. Readers must use BeginLease() instead; this
  /// remains only for non-reading callers (EXPLAIN planning).
  Snapshot LatestSnapshot() const {
    return Snapshot{clock_.load(std::memory_order_acquire), 0};
  }

  /// Atomically reads the committed clock and registers a GC lease at
  /// that timestamp, in one lock acquisition, so no commit can slip in
  /// between and garbage-collect versions the new snapshot can see.
  /// Fills `snap_out` (if non-null) with the leased snapshot.
  SnapshotLease BeginLease(Snapshot* snap_out);

  /// Leases `read_ts` against garbage collection. Only safe for a
  /// timestamp that is already protected (an open transaction's read_ts);
  /// fresh readers must use BeginLease().
  SnapshotLease Lease(Ts read_ts);

  /// The write gate (see class comment).
  std::recursive_mutex& write_mu() { return write_mu_; }

  /// Runs every GC closure whose dead-since timestamp is no longer
  /// visible to any leased snapshot. Called under write_mu() after
  /// commit/abort; callable explicitly from tests.
  void RunReadyGc();

  /// Last committed timestamp.
  Ts clock() const { return clock_.load(std::memory_order_acquire); }

  uint64_t txns_begun() const { return txns_begun_; }
  uint64_t txns_committed() const { return txns_committed_; }
  uint64_t txns_aborted() const { return txns_aborted_; }
  size_t active_txns() const;
  size_t gc_pending() const;
  uint64_t gc_runs() const { return gc_runs_; }

 private:
  friend class SnapshotLease;

  void ReleaseLease(Ts read_ts);
  /// Oldest read timestamp any live snapshot may use; clock when idle.
  Ts MinActiveReadTs() const;
  Status FinishAbortLocked(Transaction* txn);

  WalHooks hooks_;

  std::recursive_mutex write_mu_;

  // Last committed timestamp; published only after the committing
  // transaction's versions are fully restamped.
  std::atomic<Ts> clock_{0};
  std::atomic<uint64_t> next_txn_id_{1};

  mutable std::mutex mu_;  // Guards txns_ and leases_.
  std::map<uint64_t, std::unique_ptr<Transaction>> txns_;
  std::multiset<Ts> leases_;

  // Dead versions awaiting reclamation, keyed by the commit timestamp
  // that killed them. Drained under write_mu_.
  std::multimap<Ts, std::function<Status(Ts)>> gc_queue_;

  uint64_t txns_begun_ = 0;
  uint64_t txns_committed_ = 0;
  uint64_t txns_aborted_ = 0;
  uint64_t gc_runs_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TXN_TRANSACTION_MANAGER_H_
