#include "txn/transaction_manager.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace insight {

SnapshotLease::SnapshotLease(TransactionManager* mgr, Ts read_ts)
    : mgr_(mgr), read_ts_(read_ts) {}

SnapshotLease::~SnapshotLease() { Release(); }

SnapshotLease::SnapshotLease(SnapshotLease&& other) noexcept
    : mgr_(other.mgr_), read_ts_(other.read_ts_) {
  other.mgr_ = nullptr;
}

SnapshotLease& SnapshotLease::operator=(SnapshotLease&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    read_ts_ = other.read_ts_;
    other.mgr_ = nullptr;
  }
  return *this;
}

void SnapshotLease::Release() {
  if (mgr_ != nullptr) {
    mgr_->ReleaseLease(read_ts_);
    mgr_ = nullptr;
  }
}

TransactionManager::~TransactionManager() {
  // Open transactions at shutdown are implicitly aborted: their versions
  // were never restamped, so they are invisible to every future snapshot
  // and recovery ignores their WAL records (no commit record).
  std::lock_guard<std::mutex> lk(mu_);
  if (!txns_.empty()) {
    INSIGHT_LOG(Warn) << "transaction manager destroyed with "
                      << txns_.size() << " open transaction(s)";
  }
}

Result<Transaction*> TransactionManager::Begin() {
  const uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Transaction* raw = nullptr;
  Ts read_ts = 0;
  {
    // Read the clock and register the lease in ONE critical section:
    // a commit that publishes a newer clock in between would run GC
    // with no lease covering this reader, reclaiming versions its
    // snapshot still needs.
    std::lock_guard<std::mutex> lk(mu_);
    read_ts = clock_.load(std::memory_order_acquire);
    auto txn = std::make_unique<Transaction>(id, read_ts);
    raw = txn.get();
    txns_.emplace(id, std::move(txn));
    leases_.insert(read_ts);
    ++txns_begun_;
  }
  if (hooks_.begin) {
    const Status st = hooks_.begin(*raw);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      leases_.erase(leases_.find(read_ts));
      txns_.erase(id);
      return st;
    }
  }
  return raw;
}

Transaction* TransactionManager::Find(uint64_t txn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = txns_.find(txn_id);
  return it == txns_.end() ? nullptr : it->second.get();
}

Status TransactionManager::Commit(uint64_t txn_id) {
  std::lock_guard<std::recursive_mutex> wlk(write_mu_);
  Transaction* txn = Find(txn_id);
  if (txn == nullptr || txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("no active transaction " +
                                   std::to_string(txn_id));
  }

  const Ts commit_ts = clock_.load(std::memory_order_acquire) + 1;

  // Durability first: once the commit record is on disk the transaction
  // wins recovery regardless of where the process dies below.
  if (hooks_.commit) {
    const Status st = hooks_.commit(*txn, commit_ts);
    if (!st.ok()) {
      INSIGHT_LOG(Warn) << "commit hook failed, rolling back txn " << txn_id
                        << ": " << st.ToString();
      INSIGHT_RETURN_NOT_OK(FinishAbortLocked(txn));
      return st;
    }
  }

  // Restamp the write set with the real commit timestamp. Readers cannot
  // observe a half-restamped transaction: their read_ts is at most the
  // published clock, which still precedes commit_ts.
  for (auto& fn : txn->commit_ops_) fn(commit_ts);
  txn->commit_ops_.clear();
  txn->abort_ops_.clear();
  txn->state_ = Transaction::State::kCommitted;

  // Publish: from here on, new snapshots see the transaction in full.
  clock_.store(commit_ts, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& fn : txn->gc_ops_) {
      gc_queue_.emplace(commit_ts, std::move(fn));
    }
    txn->gc_ops_.clear();
    leases_.erase(leases_.find(txn->read_ts_));
    txns_.erase(txn_id);
    ++txns_committed_;
  }
  RunReadyGc();
  return Status::OK();
}

Status TransactionManager::Abort(uint64_t txn_id) {
  std::lock_guard<std::recursive_mutex> wlk(write_mu_);
  Transaction* txn = Find(txn_id);
  if (txn == nullptr || txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("no active transaction " +
                                   std::to_string(txn_id));
  }
  return FinishAbortLocked(txn);
}

Status TransactionManager::FinishAbortLocked(Transaction* txn) {
  // Undo in reverse order so later writes (which may depend on earlier
  // ones, e.g. an index entry for an inserted row) unwind first.
  for (auto it = txn->abort_ops_.rbegin(); it != txn->abort_ops_.rend();
       ++it) {
    (*it)();
  }
  txn->abort_ops_.clear();
  txn->commit_ops_.clear();
  txn->gc_ops_.clear();
  txn->state_ = Transaction::State::kAborted;
  Status wal_st;
  if (hooks_.abort) wal_st = hooks_.abort(*txn);
  {
    std::lock_guard<std::mutex> lk(mu_);
    leases_.erase(leases_.find(txn->read_ts_));
    txns_.erase(txn->id_);
    ++txns_aborted_;
  }
  RunReadyGc();
  return wal_st;
}

SnapshotLease TransactionManager::BeginLease(Snapshot* snap_out) {
  std::lock_guard<std::mutex> lk(mu_);
  // Clock read and lease insertion share mu_ with commit's GC scheduling
  // and horizon computation, so either the lease lands before the commit
  // drains its GC queue (old versions protected) or the reader observes
  // the new clock (and only needs the new versions).
  const Ts read_ts = clock_.load(std::memory_order_acquire);
  leases_.insert(read_ts);
  if (snap_out != nullptr) *snap_out = Snapshot{read_ts, 0};
  return SnapshotLease(this, read_ts);
}

SnapshotLease TransactionManager::Lease(Ts read_ts) {
  std::lock_guard<std::mutex> lk(mu_);
  leases_.insert(read_ts);
  return SnapshotLease(this, read_ts);
}

void TransactionManager::ReleaseLease(Ts read_ts) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = leases_.find(read_ts);
  if (it != leases_.end()) leases_.erase(it);
}

Ts TransactionManager::MinActiveReadTs() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (leases_.empty()) return clock_.load(std::memory_order_acquire);
  return *leases_.begin();
}

void TransactionManager::RunReadyGc() {
  // Caller holds write_mu_. A version deleted at timestamp E is garbage
  // once no live snapshot reads below E (read_ts >= E means the deletion
  // is already visible, so the old version can never be returned again).
  const Ts horizon = MinActiveReadTs();
  std::vector<std::function<Status(Ts)>> ready;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto end = gc_queue_.upper_bound(horizon);
    for (auto it = gc_queue_.begin(); it != end; ++it) {
      ready.push_back(std::move(it->second));
    }
    gc_queue_.erase(gc_queue_.begin(), end);
    if (!ready.empty()) ++gc_runs_;
  }
  for (auto& fn : ready) {
    const Status st = fn(horizon);
    if (!st.ok()) {
      // Reclamation failures leak a dead version (correctness is
      // unaffected: it is invisible to every snapshot). Log and go on.
      INSIGHT_LOG(Warn) << "version GC: " << st.ToString();
    }
  }
}

size_t TransactionManager::active_txns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return txns_.size();
}

size_t TransactionManager::gc_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return gc_queue_.size();
}

}  // namespace insight
