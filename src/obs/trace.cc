#include "obs/trace.h"

namespace insight {

double QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

double SlowQueryLog::threshold_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return threshold_ms_;
}

void SlowQueryLog::set_threshold_ms(double ms) {
  std::lock_guard<std::mutex> lk(mu_);
  threshold_ms_ = ms;
}

size_t SlowQueryLog::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return capacity_;
}

void SlowQueryLog::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = n == 0 ? 1 : n;
  while (entries_.size() > capacity_) entries_.pop_front();
}

bool SlowQueryLog::Record(QueryTrace trace) {
  std::lock_guard<std::mutex> lk(mu_);
  if (trace.total_ms() < threshold_ms_) return false;
  entries_.push_back(std::move(trace));
  while (entries_.size() > capacity_) entries_.pop_front();
  return true;
}

std::vector<QueryTrace> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<QueryTrace>(entries_.begin(), entries_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

}  // namespace insight
