#include "obs/metrics.h"

#include <cstdio>
#include <cstring>

namespace insight {

namespace obs_internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace obs_internal

bool MetricsEnabled() { return obs_internal::Enabled(); }

void SetMetricsEnabled(bool enabled) {
  obs_internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------- Histogram ----------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  if (!obs_internal::Enabled()) return;
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double cur;
    std::memcpy(&cur, &seen, 8);
    cur += v;
    uint64_t next;
    std::memcpy(&next, &cur, 8);
    if (sum_bits_.compare_exchange_weak(seen, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double out;
  std::memcpy(&out, &bits, 8);
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// ---------- MetricsRegistry ----------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = Find(name)) return e->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = std::move(help);
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = Find(name)) return e->gauge.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = std::move(help);
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = Find(name)) return e->histogram.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = std::move(help);
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

namespace {

void AppendNumber(std::string* out, double v) {
  char buf[48];
  // Integral values render without a fraction so counters read naturally.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& entry : entries_) {
    if (!entry->help.empty()) {
      out += "# HELP " + entry->name + " " + entry->help + "\n";
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += "# TYPE " + entry->name + " counter\n" + entry->name + " ";
        AppendNumber(&out, static_cast<double>(entry->counter->value()));
        out += "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + entry->name + " gauge\n" + entry->name + " ";
        AppendNumber(&out, static_cast<double>(entry->gauge->value()));
        out += "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out += entry->name + "_bucket{le=\"";
          AppendNumber(&out, h.bounds()[i]);
          out += "\"} ";
          AppendNumber(&out, static_cast<double>(cumulative));
          out += "\n";
        }
        out += entry->name + "_bucket{le=\"+Inf\"} ";
        AppendNumber(&out, static_cast<double>(h.count()));
        out += "\n" + entry->name + "_sum ";
        AppendNumber(&out, h.sum());
        out += "\n" + entry->name + "_count ";
        AppendNumber(&out, static_cast<double>(h.count()));
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string counters, gauges, histograms;
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "\"" + entry->name + "\":";
        AppendNumber(&counters, static_cast<double>(entry->counter->value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += "\"" + entry->name + "\":";
        AppendNumber(&gauges, static_cast<double>(entry->gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        if (!histograms.empty()) histograms += ",";
        histograms += "\"" + entry->name + "\":{\"count\":";
        AppendNumber(&histograms, static_cast<double>(h.count()));
        histograms += ",\"sum\":";
        AppendNumber(&histograms, h.sum());
        histograms += ",\"buckets\":[";
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) histograms += ",";
          histograms += "[";
          if (i < h.bounds().size()) {
            AppendNumber(&histograms, h.bounds()[i]);
          } else {
            histograms += "\"+Inf\"";
          }
          histograms += ",";
          AppendNumber(&histograms, static_cast<double>(h.bucket(i)));
          histograms += "]";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->Reset();
        break;
      case Kind::kGauge:
        entry->gauge->Reset();
        break;
      case Kind::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

// ---------- EngineMetrics ----------

EngineMetrics& EngineMetrics::Get() {
  static EngineMetrics* metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->bufferpool_hits =
        r.GetCounter("insight_bufferpool_hits_total",
                     "Page requests served from the buffer pool");
    m->bufferpool_misses =
        r.GetCounter("insight_bufferpool_misses_total",
                     "Page requests that read from the backing store");
    m->bufferpool_evictions =
        r.GetCounter("insight_bufferpool_evictions_total",
                     "Valid frames evicted by the clock sweep");
    m->bufferpool_writebacks =
        r.GetCounter("insight_bufferpool_writebacks_total",
                     "Dirty pages written back on eviction or flush");
    m->bufferpool_allocations =
        r.GetCounter("insight_bufferpool_allocations_total",
                     "New pages allocated through the pool");
    m->bufferpool_latch_waits =
        r.GetCounter("insight_bufferpool_latch_waits_total",
                     "Page latch acquisitions that had to block");
    m->wal_appends = r.GetCounter("insight_wal_appends_total",
                                  "Records appended to the log tail");
    m->wal_append_bytes = r.GetCounter("insight_wal_append_bytes_total",
                                       "Framed bytes appended to the log");
    m->wal_fsyncs = r.GetCounter("insight_wal_fsyncs_total",
                                 "Group-commit leader fsyncs");
    m->wal_group_commit_records = r.GetHistogram(
        "insight_wal_group_commit_records", {1, 2, 4, 8, 16, 32, 64, 128, 256},
        "Records made durable per group-commit fsync");
    m->wal_sync_micros = r.GetHistogram(
        "insight_wal_sync_micros",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000},
        "Leader write+fsync latency in microseconds");
    m->wal_durable_lag =
        r.GetGauge("insight_wal_durable_lag",
                   "Appended-but-not-durable records (last - durable LSN)");
    m->scheduler_submits = r.GetCounter("insight_scheduler_submits_total",
                                        "Tasks submitted to the scheduler");
    m->scheduler_steals =
        r.GetCounter("insight_scheduler_steals_total",
                     "Tasks taken from another worker's deque");
    m->scheduler_tasks_run = r.GetCounter("insight_scheduler_tasks_run_total",
                                          "Tasks dequeued for execution");
    m->scheduler_queue_depth =
        r.GetGauge("insight_scheduler_queue_depth",
                   "Queued (not yet started) scheduler tasks");
    m->sbtree_probes = r.GetCounter("insight_sbtree_probes_total",
                                    "Summary-BTree probe evaluations");
    m->sbtree_backward_derefs =
        r.GetCounter("insight_sbtree_backward_derefs_total",
                     "Backward-pointer heap dereferences");
    m->sbtree_key_inserts = r.GetCounter("insight_sbtree_key_inserts_total",
                                         "Maintenance key inserts");
    m->sbtree_key_deletes = r.GetCounter("insight_sbtree_key_deletes_total",
                                         "Maintenance key deletes");
    m->sbtree_rebuilds = r.GetCounter("insight_sbtree_rebuilds_total",
                                      "Count-width widening rebuilds");
    m->btree_probes = r.GetCounter("insight_btree_probes_total",
                                   "Data B-Tree lookups and range scans");
    m->heap_pages_scanned = r.GetCounter("insight_heap_pages_scanned_total",
                                         "Heap pages visited by scans");
    m->scan_pages_skipped =
        r.GetCounter("insight_scan_pages_skipped_total",
                     "Heap pages skipped by zone-map pruning");
    m->zonemap_widenings =
        r.GetCounter("insight_zonemap_widenings_total",
                     "Page-zone bound widenings on the write path");
    m->zonemap_stale_marks =
        r.GetCounter("insight_zonemap_stale_marks_total",
                     "Pages marked stale for bound re-derivation");
    m->zonemap_page_rebuilds =
        r.GetCounter("insight_zonemap_page_rebuilds_total",
                     "Stale pages re-derived by zone-map maintenance");
    m->queries_total =
        r.GetCounter("insight_queries_total", "SELECT statements executed");
    m->slow_queries_total = r.GetCounter(
        "insight_slow_queries_total",
        "Queries at or above the slow-query threshold");
    m->query_millis = r.GetHistogram(
        "insight_query_millis", {1, 5, 10, 50, 100, 500, 1000, 5000},
        "SELECT wall time in milliseconds");
    m->plan_qerror = r.GetHistogram(
        "insight_plan_qerror", {1, 2, 4, 8, 16, 32, 64, 128},
        "Per-operator estimated-vs-actual cardinality q-error");
    m->net_connections_opened =
        r.GetCounter("insight_net_connections_opened_total",
                     "Client connections accepted and adopted by a loop");
    m->net_connections_closed =
        r.GetCounter("insight_net_connections_closed_total",
                     "Client connections closed (any reason)");
    m->net_connections_rejected =
        r.GetCounter("insight_net_connections_rejected_total",
                     "Connections turned away by admission control");
    m->net_active_connections =
        r.GetGauge("insight_net_active_connections",
                   "Currently admitted client sessions");
    m->net_requests_total = r.GetCounter(
        "insight_net_requests_total", "Query frames executed by the server");
    m->net_request_errors =
        r.GetCounter("insight_net_request_errors_total",
                     "Query frames that returned an Error frame");
    m->net_frames_corrupt =
        r.GetCounter("insight_net_frames_corrupt_total",
                     "Frames rejected for bad CRC, unknown type, or size");
    m->net_idle_disconnects =
        r.GetCounter("insight_net_idle_disconnects_total",
                     "Sessions closed by the idle-timeout sweep");
    m->net_bytes_received = r.GetCounter("insight_net_bytes_received_total",
                                         "Bytes read from client sockets");
    m->net_bytes_sent = r.GetCounter("insight_net_bytes_sent_total",
                                     "Bytes written to client sockets");
    m->net_request_millis = r.GetHistogram(
        "insight_net_request_millis", {1, 5, 10, 50, 100, 500, 1000, 5000},
        "Server-side statement wall time in milliseconds");
    m->repl_subscribers = r.GetGauge("insight_repl_subscribers",
                                     "Live replica subscriptions");
    m->repl_records_shipped =
        r.GetCounter("insight_repl_records_shipped_total",
                     "WAL records shipped to replicas");
    m->repl_records_applied =
        r.GetCounter("insight_repl_records_applied_total",
                     "Replicated WAL records applied locally");
    m->repl_ship_lag =
        r.GetGauge("insight_repl_ship_lag",
                   "Durable LSN minus the smallest replica-acked LSN");
    m->repl_applied_lsn = r.GetGauge(
        "insight_repl_applied_lsn", "Durable applied frontier on a replica");
    m->repl_reconnects = r.GetCounter("insight_repl_reconnects_total",
                                      "Replica feed reconnect attempts");
    m->repl_wait_lsn_waits =
        r.GetCounter("insight_repl_wait_lsn_waits_total",
                     "Statements that blocked waiting for a replicated LSN");
    m->stats_sketch_updates =
        r.GetCounter("insight_stats_sketch_updates_total",
                     "DML and summary ops absorbed by the online sketches");
    m->stats_sketch_estimates =
        r.GetCounter("insight_stats_sketch_estimates_total",
                     "Operators whose cardinality came from the sketch tier");
    m->stats_histogram_estimates = r.GetCounter(
        "insight_stats_histogram_estimates_total",
        "Operators whose cardinality came from the ANALYZE histograms");
    m->stats_rescans_skipped = r.GetCounter(
        "insight_stats_rescans_skipped_total",
        "Feedback re-ANALYZEs skipped because sketches reported low churn");
    return m;
  }();
  return *metrics;
}

}  // namespace insight
