#ifndef INSIGHTNOTES_OBS_TRACE_H_
#define INSIGHTNOTES_OBS_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace insight {

/// Symmetric relative error of a cardinality estimate, floored at 1 row
/// on both sides so empty results stay finite:
///   q = max(est, actual) / min(est, actual), with est, actual >= 1.
/// q == 1 is a perfect estimate; the optimizer's feedback loop treats
/// large q as "statistics are lying, refresh them".
double QError(double estimated, double actual);

/// One operator's slice of a query trace, built from the physical plan
/// after execution: the plan-time cardinality estimate frozen next to the
/// runtime counters it is judged against.
struct TraceSpan {
  std::string op;          // PhysicalOperator::Describe().
  int depth = 0;           // Plan-tree depth (root = 0).
  double est_rows = -1;    // < 0: the optimizer produced no estimate.
  uint64_t actual_rows = 0;
  uint64_t time_ns = 0;    // Inclusive open + next time.

  bool has_estimate() const { return est_rows >= 0; }
  double qerror() const {
    return has_estimate()
               ? QError(est_rows, static_cast<double>(actual_rows))
               : -1;
  }
};

/// Everything observed about one executed statement. Hung off the
/// ExecutionContext for the duration of the query, then fed to the
/// slow-query log and the cardinality-feedback loop.
struct QueryTrace {
  std::string statement;
  uint64_t total_ns = 0;
  std::vector<TraceSpan> spans;  // Pre-order over the plan tree.
  std::string plan;              // EXPLAIN ANALYZE rendering.

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  /// Worst per-operator q-error (1 when no operator carries an estimate).
  double max_qerror() const {
    double worst = 1;
    for (const TraceSpan& span : spans) {
      if (span.has_estimate()) worst = std::max(worst, span.qerror());
    }
    return worst;
  }
};

/// Bounded in-memory log of the slowest statements, with plan capture.
/// Record() keeps a trace only when it meets the threshold; the ring
/// drops the oldest entry past capacity. Thread-safe.
class SlowQueryLog {
 public:
  double threshold_ms() const;
  void set_threshold_ms(double ms);
  size_t capacity() const;
  void set_capacity(size_t n);

  /// Files `trace` when trace.total_ms() >= threshold; returns whether it
  /// was kept.
  bool Record(QueryTrace trace);

  std::vector<QueryTrace> Snapshot() const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::deque<QueryTrace> entries_;
  double threshold_ms_ = 100;
  size_t capacity_ = 32;
};

}  // namespace insight

#endif  // INSIGHTNOTES_OBS_TRACE_H_
