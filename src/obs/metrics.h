#ifndef INSIGHTNOTES_OBS_METRICS_H_
#define INSIGHTNOTES_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace insight {

/// Process-wide instrumentation switch. Every Counter/Gauge/Histogram
/// mutation checks it first with one relaxed atomic load, so a disabled
/// engine pays a predictable branch per instrumentation point and the
/// metric cells are never written (the "untouched when disabled"
/// guarantee the tests pin down). Reads (value(), dumps) work either way.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace obs_internal {

extern std::atomic<bool> g_metrics_enabled;

inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Stable small per-thread index used to spread counter increments across
/// cache lines (sharded counters).
inline size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace obs_internal

/// Monotonic event counter, sharded across cache lines so concurrent
/// workers (buffer-pool shards, WAL group commit, morsel workers) do not
/// serialize on one cache line.
class Counter {
 public:
  static constexpr size_t kShards = 8;  // Power of two.

  void Add(uint64_t n = 1) {
    if (!obs_internal::Enabled()) return;
    cells_[obs_internal::ThreadSlot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Last-value metric (queue depth, durable-LSN lag).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!obs_internal::Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!obs_internal::Enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency/size histogram: cumulative-style buckets with
/// caller-chosen finite upper bounds plus an implicit +Inf bucket. Lock
/// free; Observe is a linear probe over a handful of bounds plus two
/// relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  std::vector<double> bounds_;  // Ascending, finite.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds+1 cells.
  std::atomic<uint64_t> count_{0};
  /// Sum kept as bit-cast double updated by CAS (works without C++20
  /// atomic<double>::fetch_add support on every toolchain).
  std::atomic<uint64_t> sum_bits_{0};
};

/// Named metric registry with Prometheus-style text and JSON snapshot
/// rendering. Registration is idempotent (same name returns the same
/// object) and cheap enough for construction paths; hot paths cache the
/// returned pointer (metrics are never deregistered, so pointers stay
/// valid for the process lifetime).
class MetricsRegistry {
 public:
  /// The engine-wide registry every subsystem publishes into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, std::string help = "");
  Gauge* GetGauge(const std::string& name, std::string help = "");
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          std::string help = "");

  bool enabled() const { return MetricsEnabled(); }
  void set_enabled(bool enabled) { SetMetricsEnabled(enabled); }

  /// Prometheus text exposition (# HELP / # TYPE / samples).
  std::string ToPrometheus() const;
  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string ToJson() const;

  /// Zeroes every registered metric (tests and bench arms).
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // Registration order.
};

/// One handle per engine instrumentation point, resolved once from the
/// global registry. Subsystems call e.g.
/// `EngineMetrics::Get().bufferpool_hits->Add(1)`; when metrics are
/// disabled the Add is a single branch.
struct EngineMetrics {
  // Buffer pool.
  Counter* bufferpool_hits;
  Counter* bufferpool_misses;
  Counter* bufferpool_evictions;
  Counter* bufferpool_writebacks;
  Counter* bufferpool_allocations;
  Counter* bufferpool_latch_waits;
  // Write-ahead log.
  Counter* wal_appends;
  Counter* wal_append_bytes;
  Counter* wal_fsyncs;
  Histogram* wal_group_commit_records;  // Records made durable per fsync.
  Histogram* wal_sync_micros;           // Leader write+fsync latency.
  Gauge* wal_durable_lag;               // last_lsn - durable_lsn.
  // Task scheduler.
  Counter* scheduler_submits;
  Counter* scheduler_steals;
  Counter* scheduler_tasks_run;
  Gauge* scheduler_queue_depth;
  // Summary-BTree.
  Counter* sbtree_probes;
  Counter* sbtree_backward_derefs;
  Counter* sbtree_key_inserts;
  Counter* sbtree_key_deletes;
  Counter* sbtree_rebuilds;
  // Data access paths.
  Counter* btree_probes;
  Counter* heap_pages_scanned;
  Counter* scan_pages_skipped;      // Heap pages pruned by zone maps.
  Counter* zonemap_widenings;       // Page-zone bound widenings on write.
  Counter* zonemap_stale_marks;     // Pages flagged for bound re-derivation.
  Counter* zonemap_page_rebuilds;   // Stale pages re-derived by maintenance.
  // Online statistics (src/stats).
  Counter* stats_sketch_updates;    // DML/summary ops absorbed by sketches.
  Counter* stats_sketch_estimates;  // Operators estimated from the sketch
                                    // tier (EXPLAIN ANALYZE src=sketch).
  Counter* stats_histogram_estimates;  // Operators estimated from the
                                       // ANALYZE histograms.
  Counter* stats_rescans_skipped;  // Feedback re-ANALYZEs skipped because
                                   // the sketches reported low churn.
  // Query layer.
  Counter* queries_total;
  Counter* slow_queries_total;
  Histogram* query_millis;
  Histogram* plan_qerror;  // Estimated-vs-actual q-error per operator.
  // Network service (insightd).
  Counter* net_connections_opened;
  Counter* net_connections_closed;
  Counter* net_connections_rejected;  // Admission-control turn-aways.
  Gauge* net_active_connections;
  Counter* net_requests_total;
  Counter* net_request_errors;
  Counter* net_frames_corrupt;  // Bad CRC / unknown type / oversized.
  Counter* net_idle_disconnects;
  Counter* net_bytes_received;
  Counter* net_bytes_sent;
  Histogram* net_request_millis;

  Gauge* repl_subscribers;        // Live replica subscriptions (primary).
  Counter* repl_records_shipped;  // WAL records sent to replicas.
  Counter* repl_records_applied;  // WAL records applied (replica).
  Gauge* repl_ship_lag;           // durable_lsn - min acked LSN (primary).
  Gauge* repl_applied_lsn;        // Durable applied frontier (replica).
  Counter* repl_reconnects;       // Feed reconnect attempts (replica).
  Counter* repl_wait_lsn_waits;   // Statements that blocked on wait_lsn.

  static EngineMetrics& Get();
};

}  // namespace insight

#endif  // INSIGHTNOTES_OBS_METRICS_H_
