#ifndef INSIGHTNOTES_ENGINE_ROW_H_
#define INSIGHTNOTES_ENGINE_ROW_H_

#include <string>

#include "summary/summary_object.h"
#include "types/tuple.h"

namespace insight {

/// The unit flowing through the query pipeline: a data tuple plus its
/// attached summary set (the paper's r = <a1..an, {s1..sk}>). `oid` is
/// the source tuple's identifier while the row is still base-table-shaped;
/// joins and aggregates clear it.
struct Row {
  Oid oid = kInvalidOid;
  Tuple data;
  SummarySet summaries;

  std::string ToString() const {
    std::string out = data.ToString();
    if (!summaries.empty()) {
      out += " $";
      out += summaries.ToString();
    }
    return out;
  }

  /// Serialized form for external-sort spill files.
  void Serialize(std::string* dst) const {
    PutU64(dst, oid);
    data.Serialize(dst);
    summaries.Serialize(dst);
  }

  static Result<Row> Deserialize(std::string_view buf) {
    SerdeReader reader(buf);
    Row row;
    uint64_t oid;
    if (!reader.ReadU64(&oid)) return Status::Corruption("row: oid");
    row.oid = oid;
    INSIGHT_ASSIGN_OR_RETURN(row.data, Tuple::Deserialize(&reader));
    // SummarySet::Deserialize consumes a standalone buffer; re-slice.
    std::string rest(buf.substr(reader.position()));
    INSIGHT_ASSIGN_OR_RETURN(row.summaries, SummarySet::Deserialize(rest));
    return row;
  }
};

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_ROW_H_
