#include "engine/column_batch.h"

#include <algorithm>

namespace insight {

void ColumnVector::Clear() {
  size_ = 0;
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  strings_.clear();
  values_.clear();
  null_words_.clear();
  type_ = ValueType::kNull;  // Re-latch on the next non-NULL append.
  generic_ = false;
}

void ColumnVector::Reserve(size_t n) {
  null_words_.reserve((n + 63) / 64);
  if (generic_) {
    values_.reserve(n);
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kBool:
      bools_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

void ColumnVector::SetNullBit(size_t i, bool null) {
  const size_t word = i >> 6;
  if (word >= null_words_.size()) null_words_.resize(word + 1, 0);
  if (null) {
    null_words_[word] |= (uint64_t{1} << (i & 63));
  } else {
    null_words_[word] &= ~(uint64_t{1} << (i & 63));
  }
}

void ColumnVector::Degrade() {
  values_.clear();
  values_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    if (IsNull(i)) {
      values_.push_back(Value::Null());
      continue;
    }
    switch (type_) {
      case ValueType::kInt64:
        values_.push_back(Value::Int(ints_[i]));
        break;
      case ValueType::kDouble:
        values_.push_back(Value::Double(doubles_[i]));
        break;
      case ValueType::kBool:
        values_.push_back(Value::Bool(bools_[i] != 0));
        break;
      case ValueType::kString:
        values_.push_back(Value::String(strings_[i]));
        break;
      case ValueType::kNull:
        values_.push_back(Value::Null());
        break;
    }
  }
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  strings_.clear();
  generic_ = true;
}

void ColumnVector::AppendNull() {
  const size_t i = size_++;
  SetNullBit(i, true);
  if (generic_) {
    values_.push_back(Value::Null());
    return;
  }
  // Placeholder keeps typed arrays index-aligned.
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kBool:
      bools_.push_back(0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kNull:
      break;  // Untyped column: the bitmap alone carries the row.
  }
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (generic_) {
    SetNullBit(size_++, false);
    values_.push_back(v);
    return;
  }
  const ValueType vt = v.type();
  if (type_ == ValueType::kNull) {
    // Latch the column type; backfill placeholders for leading NULLs.
    type_ = vt;
    switch (vt) {
      case ValueType::kInt64:
        ints_.assign(size_, 0);
        break;
      case ValueType::kDouble:
        doubles_.assign(size_, 0.0);
        break;
      case ValueType::kBool:
        bools_.assign(size_, 0);
        break;
      case ValueType::kString:
        strings_.assign(size_, std::string());
        break;
      case ValueType::kNull:
        break;
    }
  } else if (vt != type_) {
    Degrade();
    SetNullBit(size_++, false);
    values_.push_back(v);
    return;
  }
  SetNullBit(size_++, false);
  switch (vt) {
    case ValueType::kInt64:
      ints_.push_back(v.AsInt());
      break;
    case ValueType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case ValueType::kBool:
      bools_.push_back(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kString:
      strings_.push_back(v.AsString());
      break;
    case ValueType::kNull:
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  if (generic_) return values_[i];
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int(ints_[i]);
    case ValueType::kDouble:
      return Value::Double(doubles_[i]);
    case ValueType::kBool:
      return Value::Bool(bools_[i] != 0);
    case ValueType::kString:
      return Value::String(strings_[i]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

namespace {

template <typename T>
void FilterVec(std::vector<T>* vec, const std::vector<uint8_t>& keep) {
  if (vec->empty()) return;
  size_t out = 0;
  for (size_t i = 0; i < vec->size(); ++i) {
    if (keep[i]) {
      if (out != i) (*vec)[out] = std::move((*vec)[i]);
      ++out;
    }
  }
  vec->resize(out);
}

}  // namespace

void ColumnVector::Filter(const std::vector<uint8_t>& keep) {
  FilterVec(&ints_, keep);
  FilterVec(&doubles_, keep);
  FilterVec(&bools_, keep);
  FilterVec(&strings_, keep);
  FilterVec(&values_, keep);
  std::vector<uint64_t> words((size_ + 63) / 64, 0);
  size_t out = 0;
  for (size_t i = 0; i < size_; ++i) {
    if (!keep[i]) continue;
    if (IsNull(i)) words[out >> 6] |= (uint64_t{1} << (out & 63));
    ++out;
  }
  words.resize((out + 63) / 64);
  null_words_ = std::move(words);
  size_ = out;
}

void ColumnVector::Truncate(size_t n) {
  if (n >= size_) return;
  size_ = n;
  if (!ints_.empty()) ints_.resize(n);
  if (!doubles_.empty()) doubles_.resize(n);
  if (!bools_.empty()) bools_.resize(n);
  if (!strings_.empty()) strings_.resize(n);
  if (!values_.empty()) values_.resize(n);
  null_words_.resize((n + 63) / 64);
}

void ColumnBatch::Reset(const Schema* schema, size_t capacity) {
  schema_ = schema;
  capacity_ = capacity == 0 ? kDefaultCapacity : capacity;
  const size_t cols = schema != nullptr ? schema->num_columns() : 0;
  if (columns_.size() != cols) {
    columns_.assign(cols, ColumnVector());
  }
  Clear();
}

void ColumnBatch::Clear() {
  for (ColumnVector& col : columns_) col.Clear();
  oids_.clear();
  summaries_.clear();
  num_rows_ = 0;
}

void ColumnBatch::AppendTuple(Oid oid, const Tuple& tuple,
                              SummarySet summaries) {
  const size_t n = std::min(columns_.size(), tuple.size());
  for (size_t i = 0; i < n; ++i) {
    columns_[i].Append(tuple.at(i));
  }
  // Short tuples (never produced by the scan paths, but legal input)
  // pad with NULLs to keep the columns aligned.
  for (size_t i = n; i < columns_.size(); ++i) {
    columns_[i].AppendNull();
  }
  oids_.push_back(oid);
  summaries_.push_back(std::move(summaries));
  ++num_rows_;
}

void ColumnBatch::AppendRow(const Row& row) {
  AppendTuple(row.oid, row.data, row.summaries);
}

Row ColumnBatch::GetRow(size_t i) const {
  Row row;
  row.oid = oids_[i];
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    values.push_back(col.GetValue(i));
  }
  row.data = Tuple(std::move(values));
  row.summaries = summaries_[i];
  return row;
}

void ColumnBatch::ToRowBatch(RowBatch* out) const {
  for (size_t i = 0; i < num_rows_; ++i) {
    out->Push(GetRow(i));
  }
}

void ColumnBatch::FromRowBatch(const RowBatch& in, const Schema* schema) {
  Reset(schema, std::max(in.size(), capacity_));
  for (const Row& row : in.rows()) {
    AppendRow(row);
  }
}

void ColumnBatch::Filter(const std::vector<uint8_t>& keep) {
  for (ColumnVector& col : columns_) col.Filter(keep);
  size_t out = 0;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (!keep[i]) continue;
    if (out != i) {
      oids_[out] = oids_[i];
      summaries_[out] = std::move(summaries_[i]);
    }
    ++out;
  }
  oids_.resize(out);
  summaries_.resize(out);
  num_rows_ = out;
}

void ColumnBatch::AssumeProjected(ColumnBatch&& in,
                                  const std::vector<size_t>& indices) {
  columns_.resize(indices.size());
  // A repeated source column (SELECT a, a) moves once, then copies from
  // the already-moved destination.
  std::vector<size_t> first_dst(in.columns_.size(), SIZE_MAX);
  for (size_t j = 0; j < indices.size(); ++j) {
    const size_t src = indices[j];
    if (src >= in.columns_.size()) {
      columns_[j].Clear();
      continue;
    }
    if (first_dst[src] == SIZE_MAX) {
      columns_[j] = std::move(in.columns_[src]);
      first_dst[src] = j;
    } else {
      columns_[j] = columns_[first_dst[src]];
    }
  }
  oids_ = std::move(in.oids_);
  summaries_ = std::move(in.summaries_);
  num_rows_ = in.num_rows_;
  in.Clear();
}

void ColumnBatch::Truncate(size_t n) {
  if (n >= num_rows_) return;
  for (ColumnVector& col : columns_) col.Truncate(n);
  oids_.resize(n);
  summaries_.resize(n);
  num_rows_ = n;
}

}  // namespace insight
