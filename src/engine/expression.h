#ifndef INSIGHTNOTES_ENGINE_EXPRESSION_H_
#define INSIGHTNOTES_ENGINE_EXPRESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/column_batch.h"
#include "engine/row.h"
#include "engine/row_batch.h"
#include "types/schema.h"

namespace insight {

/// Comparison operators for predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CompareOpToString(CompareOp op);
bool EvalCompare(CompareOp op, int cmp);

/// Scalar expression over a Row: data columns, literals, comparisons,
/// boolean connectives, LIKE, and the paper's summary manipulation
/// functions (Section 3.1). Expressions are immutable; Clone() copies.
class Expression {
 public:
  virtual ~Expression() = default;

  virtual Result<Value> Eval(const Row& row, const Schema& schema) const = 0;
  virtual std::string ToString() const = 0;
  virtual std::unique_ptr<Expression> Clone() const = 0;

  /// Data column names referenced (for pushdown legality).
  virtual void CollectColumns(std::vector<std::string>* out) const {
    (void)out;
  }
  /// Summary instance names referenced (for Rules 2, 7, 10, 11).
  virtual void CollectInstances(std::vector<std::string>* out) const {
    (void)out;
  }

  /// True when the expression touches any summary object.
  bool IsSummaryBased() const {
    std::vector<std::string> instances;
    CollectInstances(&instances);
    return !instances.empty();
  }

  /// Evaluates as a predicate; non-boolean truthiness is an error,
  /// NULL is false (SQL semantics).
  Result<bool> EvalBool(const Row& row, const Schema& schema) const;

  /// Batch evaluation: appends one Value per row of `batch` to `out`.
  /// The default loops Eval(); subexpressions that can amortize per-row
  /// work across the batch override it (ColumnExpr resolves its column
  /// index once per batch instead of once per row).
  virtual Status EvalBatch(const RowBatch& batch, const Schema& schema,
                           std::vector<Value>* out) const;

  /// Batch predicate evaluation with EvalBool's SQL semantics (NULL is
  /// false, non-boolean is a type error): appends one flag per row.
  Status EvalBoolBatch(const RowBatch& batch, const Schema& schema,
                       std::vector<uint8_t>* out) const;

  /// Columnar predicate evaluation: appends one three-valued flag
  /// (kTriTrue / kTriFalse / kTriNull) per batch row. NULL collapses to
  /// false only at the final filter decision, never here — Kleene
  /// semantics flow through AND/OR/NOT so the columnar path agrees with
  /// Eval() row by row. Non-boolean results are type errors. The default
  /// pivots rows out one at a time; comparisons and boolean connectives
  /// override it with tight per-column loops.
  virtual Status EvalPredColumnar(const ColumnBatch& batch,
                                  const Schema& schema,
                                  TriVector* out) const;
};

using ExprPtr = std::unique_ptr<Expression>;

/// Constant value.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Result<Value> Eval(const Row&, const Schema&) const override {
    return value_;
  }
  Status EvalBatch(const RowBatch& batch, const Schema&,
                   std::vector<Value>* out) const override {
    out->insert(out->end(), batch.size(), value_);
    return Status::OK();
  }
  Status EvalPredColumnar(const ColumnBatch& batch, const Schema& schema,
                          TriVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Named data column.
class ColumnExpr : public Expression {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  /// Resolves the column index once for the whole batch.
  Status EvalBatch(const RowBatch& batch, const Schema& schema,
                   std::vector<Value>* out) const override;
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnExpr>(name_);
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// left <op> right.
class CompareExpr : public Expression {
 public:
  CompareExpr(ExprPtr left, CompareOp op, ExprPtr right)
      : left_(std::move(left)), op_(op), right_(std::move(right)) {}
  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  Status EvalBatch(const RowBatch& batch, const Schema& schema,
                   std::vector<Value>* out) const override;
  /// Typed tight loop over the probed ColumnVector for the
  /// column-vs-literal shapes; per-row fallback otherwise.
  Status EvalPredColumnar(const ColumnBatch& batch, const Schema& schema,
                          TriVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<CompareExpr>(left_->Clone(), op_,
                                         right_->Clone());
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  void CollectInstances(std::vector<std::string>* out) const override {
    left_->CollectInstances(out);
    right_->CollectInstances(out);
  }
  const Expression* left() const { return left_.get(); }
  const Expression* right() const { return right_.get(); }
  CompareOp op() const { return op_; }

 private:
  ExprPtr left_;
  CompareOp op_;
  ExprPtr right_;
};

/// AND / OR over two operands.
class LogicalExpr : public Expression {
 public:
  enum class Kind { kAnd, kOr };
  LogicalExpr(Kind kind, ExprPtr left, ExprPtr right)
      : kind_(kind), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  /// Evaluates the left side batch-wise; the right side runs only for
  /// rows the left side leaves undecided, preserving Eval()'s
  /// short-circuit semantics exactly.
  Status EvalBatch(const RowBatch& batch, const Schema& schema,
                   std::vector<Value>* out) const override;
  /// Kleene combine of the two sides' tri-vectors. When the right side
  /// fails batch-wide, falls back to per-row evaluation of undecided
  /// rows only, so error behavior matches Eval()'s short-circuit.
  Status EvalPredColumnar(const ColumnBatch& batch, const Schema& schema,
                          TriVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LogicalExpr>(kind_, left_->Clone(),
                                         right_->Clone());
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  void CollectInstances(std::vector<std::string>* out) const override {
    left_->CollectInstances(out);
    right_->CollectInstances(out);
  }
  Kind kind() const { return kind_; }
  const Expression* left() const { return left_.get(); }
  const Expression* right() const { return right_.get(); }

 private:
  Kind kind_;
  ExprPtr left_;
  ExprPtr right_;
};

/// NOT operand.
class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  Status EvalBatch(const RowBatch& batch, const Schema& schema,
                   std::vector<Value>* out) const override;
  Status EvalPredColumnar(const ColumnBatch& batch, const Schema& schema,
                          TriVector* out) const override;
  std::string ToString() const override {
    return "NOT (" + operand_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(operand_->Clone());
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  void CollectInstances(std::vector<std::string>* out) const override {
    operand_->CollectInstances(out);
  }
  const Expression* operand() const { return operand_.get(); }

 private:
  ExprPtr operand_;
};

/// column LIKE 'pattern' with % and _ wildcards.
class LikeExpr : public Expression {
 public:
  LikeExpr(ExprPtr operand, std::string pattern)
      : operand_(std::move(operand)), pattern_(std::move(pattern)) {}
  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  std::string ToString() const override {
    return operand_->ToString() + " LIKE '" + pattern_ + "'";
  }
  ExprPtr Clone() const override {
    return std::make_unique<LikeExpr>(operand_->Clone(), pattern_);
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    operand_->CollectColumns(out);
  }

 private:
  ExprPtr operand_;
  std::string pattern_;
};

/// The summary manipulation functions usable inside expressions. All are
/// evaluated against row.summaries (the `$` variable).
enum class SummaryFuncKind {
  kSetSize,         // $.getSize()
  kObjectSize,      // $.getSummaryObject(I).getSize()
  kLabelValue,      // $.getSummaryObject(I).getLabelValue(label)
  kContainsSingle,  // $.getSummaryObject(I).containsSingle(kw...)
  kContainsUnion,   // $.getSummaryObject(I).containsUnion(kw...)
  kHasObject,       // $.getSummaryObject(I) IS NOT NULL
  kLabelName,       // $.getSummaryObject(I).getLabelName(i)
  kLabelValueAt,    // $.getSummaryObject(I).getLabelValue(i)
  kSnippetAt,       // $.getSummaryObject(I).getSnippet(i)
  kGroupSizeAt,     // $.getSummaryObject(I).getGroupSize(i)
  kRepresentative,  // $.getSummaryObject(I).getRepresentative(i)
};

/// Summary-function expression. Missing objects yield NULL for value
/// functions (so predicates on them are false) and false for the
/// contains/has functions, mirroring the paper's getSummaryObject()
/// returning Null.
class SummaryFuncExpr : public Expression {
 public:
  /// kSetSize.
  SummaryFuncExpr() : kind_(SummaryFuncKind::kSetSize) {}
  /// kObjectSize / kHasObject.
  SummaryFuncExpr(SummaryFuncKind kind, std::string instance)
      : kind_(kind), instance_(std::move(instance)) {}
  /// kLabelValue.
  SummaryFuncExpr(std::string instance, std::string label)
      : kind_(SummaryFuncKind::kLabelValue),
        instance_(std::move(instance)),
        label_(std::move(label)) {}
  /// kContainsSingle / kContainsUnion.
  SummaryFuncExpr(SummaryFuncKind kind, std::string instance,
                  std::vector<std::string> keywords)
      : kind_(kind),
        instance_(std::move(instance)),
        keywords_(std::move(keywords)) {}

  /// Positional functions (kLabelName, kLabelValueAt, kSnippetAt,
  /// kGroupSizeAt, kRepresentative).
  SummaryFuncExpr(SummaryFuncKind kind, std::string instance, size_t index)
      : kind_(kind), instance_(std::move(instance)), index_(index) {}

  Result<Value> Eval(const Row& row, const Schema& schema) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<SummaryFuncExpr>(*this);
  }
  void CollectInstances(std::vector<std::string>* out) const override {
    if (!instance_.empty()) out->push_back(instance_);
  }

  SummaryFuncKind kind() const { return kind_; }
  const std::string& instance() const { return instance_; }
  const std::string& label() const { return label_; }
  const std::vector<std::string>& keywords() const { return keywords_; }
  size_t index() const { return index_; }

  /// Table-alias qualifier ("v1" in `v1.$.getSummaryObject(...)`). Only
  /// meaningful during binding: the SQL binder routes predicates whose two
  /// sides carry different qualifiers into summary-join predicates.
  /// Evaluation always works on the incoming row's own summary set.
  const std::string& qualifier() const { return qualifier_; }
  void set_qualifier(std::string q) { qualifier_ = std::move(q); }

 private:
  SummaryFuncKind kind_;
  std::string instance_;
  std::string label_;
  std::vector<std::string> keywords_;
  size_t index_ = 0;
  std::string qualifier_;
};

// ---- Convenience builders ----

ExprPtr Lit(Value v);
ExprPtr Col(std::string name);
ExprPtr Cmp(ExprPtr l, CompareOp op, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Like(ExprPtr operand, std::string pattern);
/// $.getSummaryObject(instance).getLabelValue(label).
ExprPtr LabelValue(std::string instance, std::string label);
ExprPtr ContainsSingle(std::string instance,
                       std::vector<std::string> keywords);
ExprPtr ContainsUnion(std::string instance,
                      std::vector<std::string> keywords);

/// An indexable classifier predicate in the form
/// "instance.label <Op> constant" (the Summary-BTree's target query).
struct IndexablePredicate {
  std::string instance;
  std::string label;
  CompareOp op;
  int64_t constant;
};

/// Extracts an IndexablePredicate when `expr` matches the target shape
/// (a comparison between LabelValue and an integer literal, either side).
std::optional<IndexablePredicate> MatchIndexablePredicate(
    const Expression* expr);

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_EXPRESSION_H_
