#include <chrono>
#include <cstdio>

#include "common/string_util.h"
#include "engine/operators.h"
#include "index/key_codec.h"
#include "obs/trace.h"

namespace insight {

Status PhysicalOperator::Open() {
  const auto start = std::chrono::steady_clock::now();
  Status st = OpenImpl();  // Calls ResetExec(), zeroing stats_ first.
  stats_.open_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return st;
}

Result<bool> PhysicalOperator::NextBatch(RowBatch* batch) {
  const auto start = std::chrono::steady_clock::now();
  batch->Clear();
  Result<bool> result = NextBatchImpl(batch);
  stats_.next_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (result.ok() && *result) {
    ++stats_.batches;
    stats_.rows += batch->size();
  }
  batch->set_schema(&schema());
  return result;
}

Result<bool> PhysicalOperator::NextBatchImpl(RowBatch* batch) {
  // Default adapter: drain the row-at-a-time interface. Next() maintains
  // rows_produced_ itself.
  Row row;
  while (!batch->full()) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, Next(&row));
    if (!has) break;
    batch->Push(std::move(row));
    row = Row();
  }
  return !batch->empty();
}

Result<bool> PhysicalOperator::NextColumnBatch(ColumnBatch* batch) {
  const auto start = std::chrono::steady_clock::now();
  batch->Reset(&schema(), batch_capacity());
  Result<bool> result = NextColumnBatchImpl(batch);
  stats_.next_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (result.ok() && *result) {
    ++stats_.batches;
    stats_.rows += batch->size();
  }
  return result;
}

Result<bool> PhysicalOperator::NextColumnBatchImpl(ColumnBatch* batch) {
  // Default adapter: pull one row batch and pivot it in. Row-only
  // operators stay usable from columnar consumers this way.
  RowBatch rows;
  rows.set_capacity(batch->capacity());
  INSIGHT_ASSIGN_OR_RETURN(bool has, NextBatchImpl(&rows));
  if (!has) return false;
  for (const Row& row : rows) batch->AppendRow(row);
  return true;
}

void PhysicalOperator::AttachContext(ExecutionContext* ctx) {
  exec_ctx_ = ctx;
  for (PhysicalOperator* child : children()) child->AttachContext(ctx);
}

std::string PhysicalOperator::ExplainTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PhysicalOperator* child : children()) {
    out += child->ExplainTree(indent + 1);
  }
  return out;
}

const char* EstimateSourceName(EstimateSource source) {
  switch (source) {
    case EstimateSource::kHistogram:
      return "histogram";
    case EstimateSource::kSketch:
      return "sketch";
    case EstimateSource::kFeedback:
      return "feedback";
    case EstimateSource::kNone:
      break;
  }
  return "";
}

std::string PhysicalOperator::ExplainAnalyzeTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  char counters[96];
  std::snprintf(counters, sizeof(counters),
                "  (rows=%llu batches=%llu time=%.3fms)",
                static_cast<unsigned long long>(stats_.rows),
                static_cast<unsigned long long>(stats_.batches),
                static_cast<double>(stats_.total_ns()) / 1e6);
  out += counters;
  if (has_estimate()) {
    char est[96];
    if (est_source_ != EstimateSource::kNone) {
      std::snprintf(est, sizeof(est),
                    "  (est=%.0f actual=%llu q-err=%.2f src=%s)", est_rows_,
                    static_cast<unsigned long long>(stats_.rows),
                    QError(est_rows_, static_cast<double>(stats_.rows)),
                    EstimateSourceName(est_source_));
    } else {
      std::snprintf(est, sizeof(est), "  (est=%.0f actual=%llu q-err=%.2f)",
                    est_rows_, static_cast<unsigned long long>(stats_.rows),
                    QError(est_rows_, static_cast<double>(stats_.rows)));
    }
    out += est;
  }
  out += AnalyzeAnnotation();
  out += "\n";
  for (const PhysicalOperator* child : children()) {
    out += child->ExplainAnalyzeTree(indent + 1);
  }
  return out;
}

Result<std::vector<Row>> CollectRows(PhysicalOperator* root) {
  INSIGHT_RETURN_NOT_OK(root->Open());
  std::vector<Row> rows;
  RowBatch batch;
  batch.set_capacity(root->batch_capacity());
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, root->NextBatch(&batch));
    if (!has) break;
    rows.reserve(rows.size() + batch.size());
    for (Row& row : batch) rows.push_back(std::move(row));
  }
  root->Close();
  return rows;
}

// ---------- SeqScanOp ----------

SeqScanOp::SeqScanOp(Table* table, SummaryManager* mgr, bool propagate)
    : table_(table), mgr_(mgr), propagate_(propagate && mgr != nullptr) {}

SeqScanOp::SeqScanOp(ExecutionContext* ctx, Table* table, bool propagate)
    : SeqScanOp(table, ctx->ManagerFor(table->name()), propagate) {
  exec_ctx_ = ctx;
}

Status SeqScanOp::OpenImpl() {
  ResetExec();
  pages_skipped_ = 0;
  it_.emplace(table_->Scan(snapshot()));
  if (!zone_pred_.empty() && table_->zone_maps() != nullptr) {
    it_->EnableZonePruning(table_->zone_maps(), zone_pred_, &pages_skipped_);
  }
  return Status::OK();
}

Result<bool> SeqScanOp::Next(Row* row) {
  Oid oid;
  Tuple tuple;
  if (!it_->Next(&oid, &tuple)) return false;
  row->oid = oid;
  row->data = std::move(tuple);
  row->summaries = SummarySet();
  if (propagate_) {
    INSIGHT_ASSIGN_OR_RETURN(row->summaries,
                             mgr_->GetSummaries(oid, snapshot()));
  }
  ++rows_produced_;
  return true;
}

Result<bool> SeqScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full()) {
    Oid oid;
    Tuple tuple;
    if (!it_->Next(&oid, &tuple)) break;
    Row row;
    row.oid = oid;
    row.data = std::move(tuple);
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row.summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->Push(std::move(row));
    ++rows_produced_;
  }
  return !batch->empty();
}

Result<bool> SeqScanOp::NextColumnBatchImpl(ColumnBatch* batch) {
  // Native columnar fill: tuples pivot into the column vectors here, at
  // the storage boundary, and stay columnar through filter/project.
  while (!batch->full()) {
    Oid oid;
    Tuple tuple;
    if (!it_->Next(&oid, &tuple)) break;
    SummarySet summaries;
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->AppendTuple(oid, tuple, std::move(summaries));
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string SeqScanOp::AnalyzeAnnotation() const {
  return "  pages_skipped=" + std::to_string(pages_skipped_);
}

std::string SeqScanOp::Describe() const {
  return "SeqScan(" + table_->name() +
         (propagate_ ? ", propagate" : "") + ")";
}

// ---------- IndexScanOp ----------

IndexScanOp::IndexScanOp(Table* table, std::string column,
                         std::optional<Value> lower, bool lower_inclusive,
                         std::optional<Value> upper, bool upper_inclusive,
                         SummaryManager* mgr, bool propagate)
    : table_(table),
      column_(std::move(column)),
      lower_(std::move(lower)),
      lower_inclusive_(lower_inclusive),
      upper_(std::move(upper)),
      upper_inclusive_(upper_inclusive),
      mgr_(mgr),
      propagate_(propagate && mgr != nullptr) {}

IndexScanOp::IndexScanOp(ExecutionContext* ctx, Table* table,
                         std::string column, std::optional<Value> lower,
                         bool lower_inclusive, std::optional<Value> upper,
                         bool upper_inclusive, bool propagate)
    : IndexScanOp(table, std::move(column), std::move(lower),
                  lower_inclusive, std::move(upper), upper_inclusive,
                  ctx->ManagerFor(table->name()), propagate) {
  exec_ctx_ = ctx;
}

Status IndexScanOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  oids_.clear();
  const BTree* index = table_->GetColumnIndex(column_);
  if (index == nullptr) {
    return Status::InvalidArgument("no index on " + table_->name() + "." +
                                   column_);
  }
  INSIGHT_ASSIGN_OR_RETURN(col_pos_, table_->schema().IndexOf(column_));
  // Type-class sentinels when a bound is missing.
  const Value& probe = lower_.has_value() ? *lower_ : *upper_;
  const bool string_typed = probe.type() == ValueType::kString;
  lower_key_ = lower_.has_value()
                   ? EncodeIndexKey(*lower_)
                   : (string_typed ? MinStringKey() : MinNumericKey());
  upper_key_ = upper_.has_value()
                   ? EncodeIndexKey(*upper_)
                   : (string_typed ? MaxStringKey() : MaxNumericKey());
  INSIGHT_ASSIGN_OR_RETURN(
      BTree::Iterator it,
      index->RangeScan(lower_key_, lower_inclusive_, upper_key_,
                       upper_inclusive_));
  for (; it.Valid(); it.Next()) oids_.push_back(it.value());
  return it.status();
}

Result<bool> IndexScanOp::FetchVisible(Oid oid, Tuple* tuple) const {
  auto row = table_->Get(oid, snapshot());
  if (!row.ok()) {
    if (row.status().IsNotFound()) return false;  // Stale index entry.
    return row.status();
  }
  // Re-verify against the probed range: the index holds entries for
  // every stored version of the row; the one visible here may carry a
  // different column value.
  const std::string key = EncodeIndexKey(row.ValueOrDie().at(col_pos_));
  if (key < lower_key_ || (key == lower_key_ && !lower_inclusive_)) {
    return false;
  }
  if (key > upper_key_ || (key == upper_key_ && !upper_inclusive_)) {
    return false;
  }
  *tuple = std::move(row.ValueOrDie());
  return true;
}

Result<bool> IndexScanOp::Next(Row* row) {
  while (pos_ < oids_.size()) {
    const Oid oid = oids_[pos_++];
    Tuple tuple;
    INSIGHT_ASSIGN_OR_RETURN(bool visible, FetchVisible(oid, &tuple));
    if (!visible) continue;
    row->data = std::move(tuple);
    row->oid = oid;
    row->summaries = SummarySet();
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row->summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    ++rows_produced_;
    return true;
  }
  return false;
}

Result<bool> IndexScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full() && pos_ < oids_.size()) {
    const Oid oid = oids_[pos_++];
    Tuple tuple;
    INSIGHT_ASSIGN_OR_RETURN(bool visible, FetchVisible(oid, &tuple));
    if (!visible) continue;
    Row row;
    row.data = std::move(tuple);
    row.oid = oid;
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row.summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->Push(std::move(row));
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string IndexScanOp::Describe() const {
  std::string out = "IndexScan(" + table_->name() + "." + column_;
  if (lower_.has_value()) {
    out += lower_inclusive_ ? ", >= " : ", > ";
    out += lower_->ToString();
  }
  if (upper_.has_value()) {
    out += upper_inclusive_ ? ", <= " : ", < ";
    out += upper_->ToString();
  }
  if (propagate_) out += ", propagate";
  return out + ")";
}

// ---------- SummaryIndexScanOp ----------

SummaryIndexScanOp::SummaryIndexScanOp(const SummaryBTree* index,
                                       ClassifierProbe probe,
                                       SummaryManager* mgr, bool propagate)
    : index_(index), probe_(std::move(probe)), mgr_(mgr),
      propagate_(propagate) {}

SummaryIndexScanOp::SummaryIndexScanOp(ExecutionContext* ctx,
                                       const SummaryBTree* index,
                                       ClassifierProbe probe,
                                       const std::string& table,
                                       bool propagate)
    : SummaryIndexScanOp(index, std::move(probe), ctx->ManagerFor(table),
                         propagate) {
  exec_ctx_ = ctx;
}

const Schema& SummaryIndexScanOp::schema() const {
  return mgr_->base()->schema();
}

Status SummaryIndexScanOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  INSIGHT_ASSIGN_OR_RETURN(hits_, index_->Search(probe_, snapshot()));
  return Status::OK();
}

Result<bool> SummaryIndexScanOp::Next(Row* row) {
  if (pos_ >= hits_.size()) return false;
  const SummaryIndexHit& hit = hits_[pos_++];
  Oid oid = kInvalidOid;
  row->summaries = SummarySet();
  if (propagate_) {
    // Propagation reads the de-normalized storage — never re-constructs
    // objects (Section 6). Conventional pointers reuse the storage row
    // they resolve through.
    INSIGHT_ASSIGN_OR_RETURN(
        row->data, index_->FetchDataTupleWithSummaries(hit, &row->summaries,
                                                       &oid, snapshot()));
  } else {
    INSIGHT_ASSIGN_OR_RETURN(row->data,
                             index_->FetchDataTuple(hit, &oid, snapshot()));
  }
  row->oid = oid;
  ++rows_produced_;
  return true;
}

Result<bool> SummaryIndexScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full() && pos_ < hits_.size()) {
    const SummaryIndexHit& hit = hits_[pos_++];
    Oid oid = kInvalidOid;
    Row row;
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(
          row.data, index_->FetchDataTupleWithSummaries(hit, &row.summaries,
                                                        &oid, snapshot()));
    } else {
      INSIGHT_ASSIGN_OR_RETURN(row.data,
                               index_->FetchDataTuple(hit, &oid, snapshot()));
    }
    row.oid = oid;
    batch->Push(std::move(row));
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string SummaryIndexScanOp::Describe() const {
  std::string out = "SummaryIndexScan(" + probe_.label;
  if (probe_.lower.has_value()) {
    out += probe_.lower_inclusive ? " >= " : " > ";
    out += std::to_string(*probe_.lower);
  }
  if (probe_.upper.has_value()) {
    out += probe_.upper_inclusive ? " <= " : " < ";
    out += std::to_string(*probe_.upper);
  }
  if (propagate_) out += ", propagate";
  out += index_->pointer_mode() == SummaryBTree::PointerMode::kBackward
             ? ", backward-ptrs"
             : ", conventional-ptrs";
  return out + ")";
}

// ---------- BaselineIndexScanOp ----------

BaselineIndexScanOp::BaselineIndexScanOp(
    const BaselineClassifierIndex* index, ClassifierProbe probe,
    SummaryManager* mgr, bool propagate, bool reconstruct_summaries)
    : index_(index),
      probe_(std::move(probe)),
      mgr_(mgr),
      propagate_(propagate),
      reconstruct_summaries_(reconstruct_summaries) {}

const Schema& BaselineIndexScanOp::schema() const {
  return mgr_->base()->schema();
}

Status BaselineIndexScanOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  INSIGHT_ASSIGN_OR_RETURN(hits_, index_->Search(probe_));
  return Status::OK();
}

Result<bool> BaselineIndexScanOp::Next(Row* row) {
  if (pos_ >= hits_.size()) return false;
  const SummaryIndexHit& hit = hits_[pos_++];
  Oid oid = kInvalidOid;
  INSIGHT_ASSIGN_OR_RETURN(row->data, index_->FetchDataTuple(hit, &oid));
  row->oid = oid;
  row->summaries = SummarySet();
  if (propagate_) {
    if (reconstruct_summaries_) {
      // Fig. 12 arm: re-form the object from its normalized primitives.
      INSIGHT_ASSIGN_OR_RETURN(SummaryObject obj,
                               index_->ReconstructObject(oid));
      row->summaries = SummarySet({std::move(obj)});
    } else {
      INSIGHT_ASSIGN_OR_RETURN(row->summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
  }
  ++rows_produced_;
  return true;
}

std::string BaselineIndexScanOp::Describe() const {
  std::string out = "BaselineIndexScan(" + probe_.label;
  if (propagate_) {
    out += reconstruct_summaries_ ? ", propagate:reconstruct"
                                  : ", propagate:denormalized";
  }
  return out + ")";
}

// ---------- KeywordIndexScanOp ----------

KeywordIndexScanOp::KeywordIndexScanOp(const SnippetKeywordIndex* index,
                                       std::vector<std::string> keywords,
                                       SummaryManager* mgr, bool propagate)
    : index_(index),
      keywords_(std::move(keywords)),
      mgr_(mgr),
      propagate_(propagate) {}

KeywordIndexScanOp::KeywordIndexScanOp(ExecutionContext* ctx,
                                       const SnippetKeywordIndex* index,
                                       std::vector<std::string> keywords,
                                       const std::string& table,
                                       bool propagate)
    : KeywordIndexScanOp(index, std::move(keywords), ctx->ManagerFor(table),
                         propagate) {
  exec_ctx_ = ctx;
}

const Schema& KeywordIndexScanOp::schema() const {
  return mgr_->base()->schema();
}

Status KeywordIndexScanOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  INSIGHT_ASSIGN_OR_RETURN(oids_, index_->SearchAll(keywords_));
  return Status::OK();
}

Result<bool> KeywordIndexScanOp::Next(Row* row) {
  while (pos_ < oids_.size()) {
    const Oid oid = oids_[pos_++];
    auto data = mgr_->base()->Get(oid, snapshot());
    if (!data.ok()) {
      if (data.status().IsNotFound()) continue;  // Stale posting entry.
      return data.status();
    }
    row->data = std::move(data.ValueOrDie());
    row->oid = oid;
    row->summaries = SummarySet();
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row->summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    ++rows_produced_;
    return true;
  }
  return false;
}

Result<bool> KeywordIndexScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full() && pos_ < oids_.size()) {
    const Oid oid = oids_[pos_++];
    auto data = mgr_->base()->Get(oid, snapshot());
    if (!data.ok()) {
      if (data.status().IsNotFound()) continue;
      return data.status();
    }
    Row row;
    row.data = std::move(data.ValueOrDie());
    row.oid = oid;
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row.summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->Push(std::move(row));
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string KeywordIndexScanOp::Describe() const {
  return "KeywordIndexScan(" + Join(keywords_, ", ") +
         (propagate_ ? ", propagate)" : ")");
}

std::string VectorSourceOp::Describe() const {
  return "VectorSource(" + std::to_string(rows_.size()) + " rows)";
}

// ---------- Selection family ----------

namespace {

/// Shared batch filter loop for SelectOp / SummarySelectOp: pull child
/// batches, evaluate the predicate batch-wise (amortized column
/// resolution), and move the passing rows into `batch` until it fills.
Result<bool> FilterNextBatch(PhysicalOperator* child,
                             const Expression* predicate, size_t capacity,
                             RowBatch* input, std::vector<uint8_t>* flags,
                             size_t* input_pos, uint64_t* rows_produced,
                             RowBatch* batch) {
  if (input->capacity() != capacity) input->set_capacity(capacity);
  while (!batch->full()) {
    if (*input_pos >= input->size()) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, child->NextBatch(input));
      if (!has) break;
      flags->clear();
      INSIGHT_RETURN_NOT_OK(
          predicate->EvalBoolBatch(*input, child->schema(), flags));
      *input_pos = 0;
    }
    for (; *input_pos < input->size() && !batch->full(); ++*input_pos) {
      if ((*flags)[*input_pos] != 0) {
        batch->Push(std::move(input->rows()[*input_pos]));
        ++*rows_produced;
      }
    }
  }
  return !batch->empty();
}

}  // namespace

SelectOp::SelectOp(OpPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status SelectOp::OpenImpl() {
  ResetExec();
  input_.Clear();
  input_pos_ = 0;
  return child_->Open();
}

Result<bool> SelectOp::FilterColumnar(ColumnBatch* batch) {
  // One (possibly short) filtered batch per child batch; loop past
  // batches the predicate empties entirely, since returning false means
  // end-of-stream to the caller.
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextColumnBatch(batch));
    if (!has) return false;
    tri_.clear();
    INSIGHT_RETURN_NOT_OK(
        predicate_->EvalPredColumnar(*batch, child_->schema(), &tri_));
    // The filter decision is where NULL finally collapses to false (SQL
    // WHERE semantics); Kleene NULLs survive up to this point.
    for (uint8_t& t : tri_) t = t == kTriTrue ? 1 : 0;
    batch->Filter(tri_);
    if (!batch->empty()) return true;
  }
}

Result<bool> SelectOp::NextColumnBatchImpl(ColumnBatch* batch) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, FilterColumnar(batch));
  if (!has) return false;
  rows_produced_ += batch->size();
  return true;
}

Result<bool> SelectOp::NextBatchImpl(RowBatch* batch) {
  if (child_->ColumnarCapable()) {
    // Columnar filter, then pivot only the survivors out to rows — this
    // is the row/column boundary for plans with a row-based consumer
    // above the filter.
    INSIGHT_ASSIGN_OR_RETURN(bool has, FilterColumnar(&col_scratch_));
    if (!has) return false;
    col_scratch_.ToRowBatch(batch);
    rows_produced_ += batch->size();
    return true;
  }
  return FilterNextBatch(child_.get(), predicate_.get(), batch_capacity(),
                         &input_, &flags_, &input_pos_, &rows_produced_,
                         batch);
}

Result<bool> SelectOp::Next(Row* row) {
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    INSIGHT_ASSIGN_OR_RETURN(bool pass,
                             predicate_->EvalBool(*row, child_->schema()));
    if (pass) {
      ++rows_produced_;
      return true;
    }
  }
}

std::string SelectOp::Describe() const {
  return "Select[\xcf\x83](" + predicate_->ToString() + ")";
}

SummarySelectOp::SummarySelectOp(OpPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status SummarySelectOp::OpenImpl() {
  ResetExec();
  input_.Clear();
  input_pos_ = 0;
  return child_->Open();
}

Result<bool> SummarySelectOp::NextBatchImpl(RowBatch* batch) {
  return FilterNextBatch(child_.get(), predicate_.get(), batch_capacity(),
                         &input_, &flags_, &input_pos_, &rows_produced_,
                         batch);
}

Result<bool> SummarySelectOp::Next(Row* row) {
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    INSIGHT_ASSIGN_OR_RETURN(bool pass,
                             predicate_->EvalBool(*row, child_->schema()));
    if (pass) {
      ++rows_produced_;
      return true;
    }
  }
}

std::string SummarySelectOp::Describe() const {
  return "SummarySelect[S](" + predicate_->ToString() + ")";
}

bool ObjectPredicate::Matches(const SummaryObject& obj) const {
  if (instance_name.has_value() &&
      !EqualsIgnoreCase(obj.instance_name, *instance_name)) {
    return false;
  }
  if (type.has_value() && obj.type != *type) return false;
  if (custom != nullptr && !custom(obj)) return false;
  return true;
}

std::string ObjectPredicate::ToString() const {
  std::vector<std::string> parts;
  if (instance_name.has_value()) {
    parts.push_back("getSummaryName() = '" + *instance_name + "'");
  }
  if (type.has_value()) {
    parts.push_back(std::string("getSummaryType() = '") +
                    SummaryTypeToString(*type) + "'");
  }
  if (custom != nullptr) parts.push_back("<custom>");
  return parts.empty() ? "true" : Join(parts, " AND ");
}

SummaryFilterOp::SummaryFilterOp(OpPtr child, ObjectPredicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status SummaryFilterOp::OpenImpl() {
  ResetExec();
  return child_->Open();
}

Result<bool> SummaryFilterOp::Next(Row* row) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  std::vector<SummaryObject> kept;
  for (SummaryObject& obj : row->summaries.objects()) {
    if (predicate_.Matches(obj)) kept.push_back(std::move(obj));
  }
  row->summaries = SummarySet(std::move(kept));
  ++rows_produced_;
  return true;
}

Result<bool> SummaryFilterOp::NextBatchImpl(RowBatch* batch) {
  // 1:1 transform: filter each row's summary set in place.
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
  if (!has) return false;
  for (Row& row : *batch) {
    std::vector<SummaryObject> kept;
    for (SummaryObject& obj : row.summaries.objects()) {
      if (predicate_.Matches(obj)) kept.push_back(std::move(obj));
    }
    row.summaries = SummarySet(std::move(kept));
  }
  rows_produced_ += batch->size();
  return true;
}

std::string SummaryFilterOp::Describe() const {
  return "SummaryFilter[F](" + predicate_.ToString() + ")";
}

// ---------- Projection ----------

ProjectOp::ProjectOp(OpPtr child, std::vector<std::string> columns,
                     AnnotationResolver resolver)
    : child_(std::move(child)),
      columns_(std::move(columns)),
      resolver_(std::move(resolver)) {
  for (const std::string& name : columns_) {
    auto idx = child_->schema().IndexOf(name);
    INSIGHT_CHECK(idx.ok()) << "projection of unknown column " << name;
    indices_.push_back(*idx);
  }
  schema_ = child_->schema().Project(indices_);
}

Status ProjectOp::OpenImpl() {
  ResetExec();
  return child_->Open();
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* batch) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
  if (!has) return false;
  for (Row& row : *batch) {
    row.data = row.data.Project(indices_);
    if (!row.summaries.empty()) {
      INSIGHT_ASSIGN_OR_RETURN(
          row.summaries,
          ProjectSummaries(row.summaries, indices_, resolver_));
    }
  }
  rows_produced_ += batch->size();
  return true;
}

Result<bool> ProjectOp::NextColumnBatchImpl(ColumnBatch* batch) {
  if (!child_->ColumnarCapable()) {
    return PhysicalOperator::NextColumnBatchImpl(batch);
  }
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextColumnBatch(&col_input_));
  if (!has) return false;
  // Column-subset projection: the kept columns move, nothing pivots.
  batch->AssumeProjected(std::move(col_input_), indices_);
  for (SummarySet& s : batch->summaries()) {
    if (s.empty()) continue;
    auto projected = ProjectSummaries(s, indices_, resolver_);
    if (!projected.ok()) return projected.status();
    s = std::move(projected.ValueOrDie());
  }
  rows_produced_ += batch->size();
  return true;
}

Result<bool> ProjectOp::Next(Row* row) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  row->data = row->data.Project(indices_);
  if (!row->summaries.empty()) {
    INSIGHT_ASSIGN_OR_RETURN(
        row->summaries,
        ProjectSummaries(row->summaries, indices_, resolver_));
  }
  ++rows_produced_;
  return true;
}

std::string ProjectOp::Describe() const {
  return "Project[\xcf\x80](" + Join(columns_, ", ") + ")";
}

RenameOp::RenameOp(OpPtr child, const std::string& alias)
    : child_(std::move(child)), alias_(alias) {
  for (const Column& col : child_->schema().columns()) {
    // Re-qualify: strip any existing prefix, then apply the alias.
    const size_t dot = col.name.rfind('.');
    const std::string base =
        dot == std::string::npos ? col.name : col.name.substr(dot + 1);
    schema_.AddColumn({alias_ + "." + base, col.type}).ok();
  }
}

Result<bool> LimitOp::Next(Row* row) {
  if (emitted_ >= limit_) return false;
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++emitted_;
  ++rows_produced_;
  return true;
}

Result<bool> LimitOp::NextBatchImpl(RowBatch* batch) {
  if (emitted_ >= limit_) return false;
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
  if (!has) return false;
  batch->Truncate(static_cast<size_t>(limit_ - emitted_));
  emitted_ += batch->size();
  rows_produced_ += batch->size();
  return !batch->empty();
}

Result<bool> LimitOp::NextColumnBatchImpl(ColumnBatch* batch) {
  if (emitted_ >= limit_) return false;
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextColumnBatch(batch));
  if (!has) return false;
  batch->Truncate(static_cast<size_t>(limit_ - emitted_));
  emitted_ += batch->size();
  rows_produced_ += batch->size();
  return !batch->empty();
}

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

}  // namespace insight
