#ifndef INSIGHTNOTES_ENGINE_COLUMN_BATCH_H_
#define INSIGHTNOTES_ENGINE_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/row.h"
#include "engine/row_batch.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace insight {

/// One column of a ColumnBatch: a typed value array plus a packed null
/// bitmap. The array type latches onto the first non-NULL value appended;
/// a later value of a different type degrades the vector to a generic
/// Value array (mixed columns are legal in this engine's dynamically
/// typed tuples), so appends never fail — kernels check `generic()` and
/// take the per-value path when the fast typed loop doesn't apply.
class ColumnVector {
 public:
  size_t size() const { return size_; }
  ValueType type() const { return type_; }
  bool generic() const { return generic_; }

  void Clear();
  void Reserve(size_t n);

  void Append(const Value& v);
  void AppendNull();

  bool IsNull(size_t i) const {
    return (null_words_[i >> 6] >> (i & 63)) & 1u;
  }
  Value GetValue(size_t i) const;

  /// Typed raw arrays (valid only in the matching non-generic state;
  /// entries at NULL positions hold unspecified placeholders).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<Value>& values() const { return values_; }

  /// In-place compaction: retains positions where keep[i] != 0.
  void Filter(const std::vector<uint8_t>& keep);
  void Truncate(size_t n);

 private:
  void Degrade();  // Typed array -> generic Value array.
  void SetNullBit(size_t i, bool null);

  ValueType type_ = ValueType::kNull;  // Latched on first non-NULL.
  bool generic_ = false;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;          // Generic fallback storage.
  std::vector<uint64_t> null_words_;   // Packed bitmap, 1 = NULL.
};

/// Column-major sibling of RowBatch: per-column ColumnVectors plus the
/// row-level sidecars (OID, summary set) the engine carries through
/// scans. Pivot adapters (`FromRowBatch`/`ToRowBatch`) sit at the
/// boundary between columnar and legacy row operators; the scan→filter→
/// project spine runs natively columnar and pivots once, after
/// filtering, where a row consumer takes over.
class ColumnBatch {
 public:
  static constexpr size_t kDefaultCapacity = RowBatch::kDefaultCapacity;

  /// (Re)binds the batch to a schema and clears it. Reuses column
  /// buffers across calls when the column count matches.
  void Reset(const Schema* schema, size_t capacity);

  const Schema* schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  size_t capacity() const { return capacity_; }
  bool full() const { return num_rows_ >= capacity_; }

  void Clear();

  /// Appends one row, pivoting its tuple into the columns.
  void AppendRow(const Row& row);
  void AppendTuple(Oid oid, const Tuple& tuple, SummarySet summaries);

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }
  const std::vector<Oid>& oids() const { return oids_; }
  const std::vector<SummarySet>& summaries() const { return summaries_; }
  std::vector<SummarySet>& summaries() { return summaries_; }

  /// Re-materializes row `i` (pivot out).
  Row GetRow(size_t i) const;
  /// Appends every row to `out` (pivot out, bulk).
  void ToRowBatch(RowBatch* out) const;
  /// Clears and refills from a row batch (pivot in, bulk).
  void FromRowBatch(const RowBatch& in, const Schema* schema);

  /// In-place compaction of all columns + sidecars.
  void Filter(const std::vector<uint8_t>& keep);
  void Truncate(size_t n);

  /// Columnar projection: takes the selected columns of `in` (moving
  /// each source column at most once) plus its sidecars. `this` must
  /// already be Reset to the projected schema.
  void AssumeProjected(ColumnBatch&& in, const std::vector<size_t>& indices);

 private:
  const Schema* schema_ = nullptr;
  size_t capacity_ = kDefaultCapacity;
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  std::vector<Oid> oids_;
  std::vector<SummarySet> summaries_;
};

/// Three-valued logic vector: one entry per batch row.
using TriVector = std::vector<uint8_t>;
inline constexpr uint8_t kTriFalse = 0;
inline constexpr uint8_t kTriTrue = 1;
inline constexpr uint8_t kTriNull = 2;

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_COLUMN_BATCH_H_
