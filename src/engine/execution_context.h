#ifndef INSIGHTNOTES_ENGINE_EXECUTION_CONTEXT_H_
#define INSIGHTNOTES_ENGINE_EXECUTION_CONTEXT_H_

#include <cstddef>
#include <map>
#include <string>

#include "engine/row_batch.h"
#include "txn/txn.h"

namespace insight {

class BufferPool;
class StorageManager;
class SummaryManager;
class TaskScheduler;

/// Shared runtime state threaded through a physical plan: the storage
/// handles, the per-table summary managers, and the batch-size knob.
/// Operators resolve their wiring here instead of each constructor
/// re-plumbing `BufferPool*` / `StorageManager*` / `SummaryManager*`
/// parameters, and the batch executor reads its capacity from here so one
/// knob tunes a whole plan.
///
/// The parallelism knob sets the number of morsel workers the optimizer
/// plans for (1 = serial; the default). Parallel plans execute on
/// `scheduler()` — when unset, GatherOp falls back to the process-wide
/// TaskScheduler::Default().
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(StorageManager* storage, BufferPool* pool,
                   size_t batch_size = RowBatch::kDefaultCapacity)
      : storage_(storage), pool_(pool) {
    set_batch_size(batch_size);
  }

  StorageManager* storage() const { return storage_; }
  BufferPool* pool() const { return pool_; }

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t batch_size) {
    batch_size_ = batch_size == 0 ? RowBatch::kDefaultCapacity : batch_size;
  }

  /// Morsel workers the optimizer plans for; 1 disables parallelism.
  size_t parallelism() const { return parallelism_; }
  void set_parallelism(size_t parallelism) {
    parallelism_ = parallelism == 0 ? 1 : parallelism;
  }

  /// Worker pool parallel plans run on (null = process default).
  TaskScheduler* scheduler() const { return scheduler_; }
  void set_scheduler(TaskScheduler* scheduler) { scheduler_ = scheduler; }

  /// Registers / replaces the summary manager of `table`.
  void RegisterManager(const std::string& table, SummaryManager* mgr);
  void UnregisterManager(const std::string& table);

  /// The summary manager of `table` (case-insensitive); null when the
  /// relation is plain.
  SummaryManager* ManagerFor(const std::string& table) const;

  /// MVCC snapshot every scan/probe in the plan reads at. The executor
  /// stamps a per-query copy of the context with the session's snapshot
  /// (the transaction's, or latest-committed for autocommit reads).
  const Snapshot& snapshot() const { return snapshot_; }
  void set_snapshot(const Snapshot& snap) { snapshot_ = snap; }

 private:
  StorageManager* storage_ = nullptr;
  BufferPool* pool_ = nullptr;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  size_t parallelism_ = 1;
  TaskScheduler* scheduler_ = nullptr;
  Snapshot snapshot_ = Snapshot::Latest();
  std::map<std::string, SummaryManager*> managers_;  // Lower-cased keys.
};

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_EXECUTION_CONTEXT_H_
