#include "engine/execution_context.h"

#include "common/string_util.h"

namespace insight {

void ExecutionContext::RegisterManager(const std::string& table,
                                       SummaryManager* mgr) {
  managers_[ToLower(table)] = mgr;
}

void ExecutionContext::UnregisterManager(const std::string& table) {
  managers_.erase(ToLower(table));
}

SummaryManager* ExecutionContext::ManagerFor(const std::string& table) const {
  auto it = managers_.find(ToLower(table));
  return it == managers_.end() ? nullptr : it->second;
}

}  // namespace insight
