#ifndef INSIGHTNOTES_ENGINE_PARALLEL_OPS_H_
#define INSIGHTNOTES_ENGINE_PARALLEL_OPS_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "engine/operators.h"

namespace insight {

/// Atomic dispenser of page-range morsels over one heap file's extent.
/// Every ParallelScanOp partition of a plan shares one source, so the
/// workers self-balance: a worker that lands on cheap pages simply pulls
/// the next morsel sooner (classic morsel-driven scheduling).
class MorselSource {
 public:
  static constexpr PageId kDefaultMorselPages = 16;  // 256 KiB of heap.

  explicit MorselSource(PageId num_pages,
                        PageId morsel_pages = kDefaultMorselPages)
      : num_pages_(num_pages),
        morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages
                                        : morsel_pages) {}

  /// Claims the next page range [begin, end); false when the extent is
  /// exhausted or the source was halted.
  bool Next(PageId* begin, PageId* end) {
    if (halted_.load(std::memory_order_relaxed)) return false;
    const PageId start = next_.fetch_add(morsel_pages_);
    if (start >= num_pages_) return false;
    *begin = start;
    *end = std::min<PageId>(num_pages_, start + morsel_pages_);
    return true;
  }

  /// Early-termination signal (LIMIT satisfied): every subsequent Next()
  /// returns false on every worker. Cleared by Reset().
  void Halt() { halted_.store(true, std::memory_order_relaxed); }
  bool halted() const { return halted_.load(std::memory_order_relaxed); }

  /// Rewinds for re-execution (GatherOp::Open).
  void Reset() {
    next_.store(0);
    halted_.store(false, std::memory_order_relaxed);
  }

  PageId num_pages() const { return num_pages_; }
  PageId morsel_pages() const { return morsel_pages_; }

 private:
  std::atomic<PageId> next_{0};
  std::atomic<bool> halted_{false};
  PageId num_pages_;
  PageId morsel_pages_;
};

/// One worker partition of a parallel heap scan: repeatedly claims a
/// page-range morsel from the shared source and emits the live tuples of
/// that range. Summary objects propagate exactly like SeqScanOp.
class ParallelScanOp : public PhysicalOperator {
 public:
  ParallelScanOp(Table* table, SummaryManager* mgr, bool propagate,
                 std::shared_ptr<MorselSource> morsels);
  /// Context form: resolves the table's SummaryManager from `ctx`.
  ParallelScanOp(ExecutionContext* ctx, Table* table, bool propagate,
                 std::shared_ptr<MorselSource> morsels);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return table_->schema(); }
  std::string Describe() const override;
  bool ColumnarCapable() const override { return true; }
  /// Same zone-map pruning as SeqScanOp, applied per claimed morsel.
  void SetZonePredicate(ZonePredicate pred) { zone_pred_ = std::move(pred); }
  std::string AnalyzeAnnotation() const override;
  uint64_t pages_skipped() const { return pages_skipped_; }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  Result<bool> NextColumnBatchImpl(ColumnBatch* batch) override;

 private:
  /// Positions it_ on a claimed morsel, zone pruning armed.
  void OpenMorsel(PageId begin, PageId end);

  Table* table_;
  SummaryManager* mgr_;
  bool propagate_;
  std::shared_ptr<MorselSource> morsels_;
  std::optional<Table::Iterator> it_;  // Current morsel's iterator.
  ZonePredicate zone_pred_;
  uint64_t pages_skipped_ = 0;
};

/// Worker-side boundary of a parallel region: a pass-through tagging one
/// partition pipeline with its worker id. Its runtime counters ARE the
/// per-worker statistics (rows, wall time) EXPLAIN ANALYZE renders.
class ExchangeOp : public PhysicalOperator {
 public:
  ExchangeOp(OpPtr child, size_t worker_id);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

  size_t worker_id() const { return worker_id_; }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  OpPtr child_;
  size_t worker_id_;
};

/// Merge side of a parallel region. Open() schedules every partition on
/// the task scheduler, each worker draining its pipeline into a private
/// buffer; the gather barrier joins them, and the merged union streams
/// upward. Row order across partitions is nondeterministic — the
/// optimizer only plans gathers where order does not matter (never under
/// a sort / O).
class GatherOp : public PhysicalOperator {
 public:
  /// `morsels` may be null (partitions that self-partition some other
  /// way); when set it is Reset() on every Open so re-execution works.
  GatherOp(std::vector<OpPtr> partitions,
           std::shared_ptr<MorselSource> morsels);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const Schema& schema() const override { return partitions_[0]->schema(); }
  std::string Describe() const override;
  /// EXPLAIN ANALYZE extra: per-worker drain wall times.
  std::string AnalyzeAnnotation() const override;
  std::vector<PhysicalOperator*> children() const override;

  size_t num_workers() const { return partitions_.size(); }
  /// Per-worker drain wall time, filled by Open().
  const std::vector<uint64_t>& worker_ns() const { return worker_ns_; }

  /// LIMIT pushdown hint: once the workers have gathered this many rows
  /// in total, the drain halts the morsel source and winds down instead
  /// of scanning the rest of the table (0 = no limit). Legal because
  /// gather order is nondeterministic — any `limit` rows satisfy the
  /// query; residual predicates above the gather must NOT use this.
  void set_limit(uint64_t limit) { limit_hint_ = limit; }
  uint64_t limit_hint() const { return limit_hint_; }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  TaskScheduler* scheduler() const;

  std::vector<OpPtr> partitions_;
  std::shared_ptr<MorselSource> morsels_;
  std::vector<std::vector<Row>> results_;  // One buffer per worker.
  std::vector<uint64_t> worker_ns_;
  size_t worker_pos_ = 0;
  size_t row_pos_ = 0;
  uint64_t limit_hint_ = 0;
  std::atomic<uint64_t> gathered_{0};  // Drain-phase early-stop counter.
};

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_PARALLEL_OPS_H_
