#include "engine/parallel_ops.h"

#include <chrono>
#include <cstdio>

namespace insight {

// ---------- ParallelScanOp ----------

ParallelScanOp::ParallelScanOp(Table* table, SummaryManager* mgr,
                               bool propagate,
                               std::shared_ptr<MorselSource> morsels)
    : table_(table),
      mgr_(mgr),
      propagate_(propagate && mgr != nullptr),
      morsels_(std::move(morsels)) {
  INSIGHT_CHECK(morsels_ != nullptr) << "parallel scan without morsels";
}

ParallelScanOp::ParallelScanOp(ExecutionContext* ctx, Table* table,
                               bool propagate,
                               std::shared_ptr<MorselSource> morsels)
    : ParallelScanOp(table, ctx->ManagerFor(table->name()), propagate,
                     std::move(morsels)) {
  exec_ctx_ = ctx;
}

Status ParallelScanOp::OpenImpl() {
  ResetExec();
  it_.reset();
  pages_skipped_ = 0;
  return Status::OK();
}

void ParallelScanOp::OpenMorsel(PageId begin, PageId end) {
  it_.emplace(table_->ScanRange(begin, end, snapshot()));
  if (!zone_pred_.empty() && table_->zone_maps() != nullptr) {
    it_->EnableZonePruning(table_->zone_maps(), zone_pred_,
                           &pages_skipped_);
  }
}

Result<bool> ParallelScanOp::Next(Row* row) {
  while (true) {
    if (!it_.has_value()) {
      PageId begin, end;
      if (!morsels_->Next(&begin, &end)) return false;
      OpenMorsel(begin, end);
    }
    Oid oid;
    Tuple tuple;
    if (!it_->Next(&oid, &tuple)) {
      it_.reset();  // Morsel drained; claim the next one.
      continue;
    }
    row->oid = oid;
    row->data = std::move(tuple);
    row->summaries = SummarySet();
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row->summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    ++rows_produced_;
    return true;
  }
}

Result<bool> ParallelScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full()) {
    if (!it_.has_value()) {
      PageId begin, end;
      if (!morsels_->Next(&begin, &end)) break;
      OpenMorsel(begin, end);
    }
    Oid oid;
    Tuple tuple;
    if (!it_->Next(&oid, &tuple)) {
      it_.reset();
      continue;
    }
    Row row;
    row.oid = oid;
    row.data = std::move(tuple);
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(row.summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->Push(std::move(row));
    ++rows_produced_;
  }
  return !batch->empty();
}

Result<bool> ParallelScanOp::NextColumnBatchImpl(ColumnBatch* batch) {
  while (!batch->full()) {
    if (!it_.has_value()) {
      PageId begin, end;
      if (!morsels_->Next(&begin, &end)) break;
      OpenMorsel(begin, end);
    }
    Oid oid;
    Tuple tuple;
    if (!it_->Next(&oid, &tuple)) {
      it_.reset();
      continue;
    }
    SummarySet summaries;
    if (propagate_) {
      INSIGHT_ASSIGN_OR_RETURN(summaries,
                               mgr_->GetSummaries(oid, snapshot()));
    }
    batch->AppendTuple(oid, tuple, std::move(summaries));
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string ParallelScanOp::AnalyzeAnnotation() const {
  return "  pages_skipped=" + std::to_string(pages_skipped_);
}

std::string ParallelScanOp::Describe() const {
  return "ParallelScan(" + table_->name() + ", morsel=" +
         std::to_string(morsels_->morsel_pages()) + "p" +
         (propagate_ ? ", propagate" : "") + ")";
}

// ---------- ExchangeOp ----------

ExchangeOp::ExchangeOp(OpPtr child, size_t worker_id)
    : child_(std::move(child)), worker_id_(worker_id) {}

Status ExchangeOp::OpenImpl() {
  ResetExec();
  return child_->Open();
}

Result<bool> ExchangeOp::Next(Row* row) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (has) ++rows_produced_;
  return has;
}

Result<bool> ExchangeOp::NextBatchImpl(RowBatch* batch) {
  INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
  rows_produced_ += batch->size();
  return has;
}

std::string ExchangeOp::Describe() const {
  return "Exchange(worker=" + std::to_string(worker_id_) + ")";
}

// ---------- GatherOp ----------

GatherOp::GatherOp(std::vector<OpPtr> partitions,
                   std::shared_ptr<MorselSource> morsels)
    : partitions_(std::move(partitions)), morsels_(std::move(morsels)) {
  INSIGHT_CHECK(!partitions_.empty()) << "gather without partitions";
  results_.resize(partitions_.size());
  worker_ns_.resize(partitions_.size(), 0);
}

TaskScheduler* GatherOp::scheduler() const {
  if (exec_ctx_ != nullptr && exec_ctx_->scheduler() != nullptr) {
    return exec_ctx_->scheduler();
  }
  return TaskScheduler::Default();
}

Status GatherOp::OpenImpl() {
  ResetExec();
  worker_pos_ = 0;
  row_pos_ = 0;
  gathered_.store(0, std::memory_order_relaxed);
  if (morsels_ != nullptr) morsels_->Reset();
  const size_t n = partitions_.size();
  std::vector<Status> statuses(n, Status::OK());
  for (auto& buffer : results_) buffer.clear();

  // One drain task per partition. Each task touches only its own slots,
  // so the only synchronization needed is the barrier in RunAndWait.
  std::vector<TaskScheduler::Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([this, i, &statuses] {
      const auto start = std::chrono::steady_clock::now();
      PhysicalOperator* part = partitions_[i].get();
      Status st = part->Open();
      if (st.ok()) {
        RowBatch batch;
        batch.set_capacity(part->batch_capacity());
        while (true) {
          // LIMIT pushdown: once the fleet has gathered enough rows,
          // stop pulling batches and halt the morsel source so sibling
          // workers stop claiming new page ranges too.
          if (limit_hint_ > 0 &&
              gathered_.load(std::memory_order_relaxed) >= limit_hint_) {
            if (morsels_ != nullptr) morsels_->Halt();
            break;
          }
          Result<bool> has = part->NextBatch(&batch);
          if (!has.ok()) {
            st = has.status();
            break;
          }
          if (!*has) break;
          auto& buffer = results_[i];
          buffer.reserve(buffer.size() + batch.size());
          for (Row& row : batch) buffer.push_back(std::move(row));
          if (limit_hint_ > 0) {
            const uint64_t total =
                gathered_.fetch_add(batch.size(),
                                    std::memory_order_relaxed) +
                batch.size();
            if (total >= limit_hint_) {
              if (morsels_ != nullptr) morsels_->Halt();
              break;
            }
          }
        }
        part->Close();
      }
      statuses[i] = std::move(st);
      worker_ns_[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    });
  }
  scheduler()->RunAndWait(std::move(tasks));  // The gather barrier.
  for (Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Result<bool> GatherOp::Next(Row* row) {
  while (worker_pos_ < results_.size()) {
    std::vector<Row>& buffer = results_[worker_pos_];
    if (row_pos_ < buffer.size()) {
      *row = std::move(buffer[row_pos_++]);
      ++rows_produced_;
      return true;
    }
    ++worker_pos_;
    row_pos_ = 0;
  }
  return false;
}

Result<bool> GatherOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full() && worker_pos_ < results_.size()) {
    std::vector<Row>& buffer = results_[worker_pos_];
    if (row_pos_ >= buffer.size()) {
      ++worker_pos_;
      row_pos_ = 0;
      continue;
    }
    batch->Push(std::move(buffer[row_pos_++]));
    ++rows_produced_;
  }
  return !batch->empty();
}

void GatherOp::Close() {
  // Partitions were closed by their drain tasks; free the buffers.
  for (auto& buffer : results_) {
    buffer.clear();
    buffer.shrink_to_fit();
  }
}

std::string GatherOp::Describe() const {
  std::string out = "Gather(workers=" + std::to_string(partitions_.size());
  if (morsels_ != nullptr) {
    out += ", morsel=" + std::to_string(morsels_->morsel_pages()) + "p";
  }
  return out + ")";
}

std::string GatherOp::AnalyzeAnnotation() const {
  std::string out = "  workers=" + std::to_string(partitions_.size()) +
                    " worker_ms=[";
  for (size_t i = 0; i < worker_ns_.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(worker_ns_[i]) / 1e6);
    out += buf;
  }
  return out + "]";
}

std::vector<PhysicalOperator*> GatherOp::children() const {
  std::vector<PhysicalOperator*> out;
  out.reserve(partitions_.size());
  for (const OpPtr& partition : partitions_) out.push_back(partition.get());
  return out;
}

}  // namespace insight
