#ifndef INSIGHTNOTES_ENGINE_OPERATORS_H_
#define INSIGHTNOTES_ENGINE_OPERATORS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/column_batch.h"
#include "engine/execution_context.h"
#include "engine/expression.h"
#include "engine/row.h"
#include "engine/row_batch.h"
#include "index/table.h"
#include "sindex/baseline_index.h"
#include "sindex/keyword_index.h"
#include "sindex/summary_btree.h"
#include "summary/summary_algebra.h"
#include "summary/summary_manager.h"

namespace insight {

/// Per-operator runtime counters, maintained by the Open()/NextBatch()
/// wrappers and rendered by EXPLAIN ANALYZE. Both times are inclusive:
/// time spent in this operator's call including its children's.
struct OperatorStats {
  uint64_t rows = 0;     // Rows emitted through NextBatch().
  uint64_t batches = 0;  // Non-empty batches emitted.
  uint64_t next_ns = 0;  // Wall-time inside NextBatch().
  uint64_t open_ns = 0;  // Wall-time inside Open() — pipeline breakers
                         // (sort, joins, aggregate, gather) drain their
                         // input here, so it must be reported too.

  /// Inclusive operator wall time. Monotonic down the tree: every child
  /// Open()/NextBatch() call happens inside the parent's timed calls.
  uint64_t total_ns() const { return open_ns + next_ns; }
};

/// Which statistics tier produced an operator's cardinality estimate.
/// Stamped by the optimizer alongside estimated_rows and rendered by
/// EXPLAIN ANALYZE as `src=histogram|sketch|feedback`.
enum class EstimateSource {
  kNone,       // No estimate / source unknown.
  kHistogram,  // ANALYZE-built histograms (possibly live-folded).
  kSketch,     // Online sketches overrode stale (or missing) histograms.
  kFeedback,   // Histograms rebuilt by the cardinality-feedback loop.
};

/// Lower-case tier name for plan rendering ("histogram", "sketch",
/// "feedback"; empty for kNone).
const char* EstimateSourceName(EstimateSource source);

/// Volcano-style physical operator. Standard SQL operators and the
/// paper's summary-based operators (S, F, J, O) share this interface and
/// mix freely in one plan (Section 3.2).
///
/// Execution is batch-at-a-time: drivers call NextBatch(), which times
/// the call, maintains the runtime counters, and delegates to the
/// virtual NextBatchImpl(). Operators not yet ported inherit the default
/// NextBatchImpl(), which drains the row-at-a-time Next() — so legacy
/// operators keep working inside batch plans, and row-at-a-time drivers
/// keep working against ported operators (every operator retains its
/// Next() implementation).
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Prepares the subtree for execution. Non-virtual: times the call into
  /// stats_.open_ns and delegates to the virtual OpenImpl(), so work a
  /// pipeline breaker does up front (draining and materializing its
  /// input) is visible to EXPLAIN ANALYZE instead of vanishing.
  Status Open();
  /// Produces the next row; false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() {}

  /// Clears `batch` and refills it with up to batch->capacity() rows;
  /// false once the stream is exhausted (the batch comes back empty).
  /// Tags the batch with this operator's output schema. Do not interleave
  /// NextBatch() and Next() calls on one operator within one execution.
  Result<bool> NextBatch(RowBatch* batch);

  /// Column-major sibling of NextBatch(): rebinds `batch` to this
  /// operator's schema and refills it. Works on every operator (the
  /// default pivots the row batch), but only pays off where
  /// ColumnarCapable() holds. Same no-interleaving rule as NextBatch().
  Result<bool> NextColumnBatch(ColumnBatch* batch);

  /// True when this operator produces column batches natively (without
  /// pivoting through rows) — the scan→filter→project spine. Consumers
  /// use it to pick the execution mode per pipeline.
  virtual bool ColumnarCapable() const { return false; }

  virtual const Schema& schema() const = 0;
  /// One-line description for EXPLAIN-style plan dumps.
  virtual std::string Describe() const = 0;
  /// Extra EXPLAIN ANALYZE annotation appended after the counters (e.g.
  /// GatherOp's per-worker wall times). Empty for most operators.
  virtual std::string AnalyzeAnnotation() const { return ""; }
  virtual std::vector<PhysicalOperator*> children() const { return {}; }

  /// Multi-line plan rendering rooted at this operator.
  std::string ExplainTree(int indent = 0) const;
  /// ExplainTree plus per-operator runtime counters (rows, batches,
  /// wall-time); render after the plan has run — EXPLAIN ANALYZE.
  std::string ExplainAnalyzeTree(int indent = 0) const;

  /// Threads the shared ExecutionContext through the whole subtree
  /// (batch-size knob; storage handles for lazily-resolving operators).
  void AttachContext(ExecutionContext* ctx);
  ExecutionContext* exec_context() const { return exec_ctx_; }

  /// Batch capacity this plan runs at (the context's knob, or the
  /// RowBatch default when no context is attached).
  size_t batch_capacity() const {
    return exec_ctx_ != nullptr ? exec_ctx_->batch_size()
                                : RowBatch::kDefaultCapacity;
  }

  /// MVCC snapshot this plan reads at (the context's stamp, or the
  /// latest-committed view when no context is attached).
  Snapshot snapshot() const {
    return exec_ctx_ != nullptr ? exec_ctx_->snapshot() : Snapshot::Latest();
  }

  uint64_t rows_produced() const { return rows_produced_; }
  const OperatorStats& stats() const { return stats_; }

  /// Plan-time cardinality estimate, stamped onto the operator by the
  /// optimizer during lowering and diffed against the runtime row count
  /// by EXPLAIN ANALYZE (< 0: no estimate available).
  void set_estimated_rows(double rows) { est_rows_ = rows; }
  double estimated_rows() const { return est_rows_; }
  bool has_estimate() const { return est_rows_ >= 0; }

  /// Which statistics tier produced the estimate; EXPLAIN ANALYZE renders
  /// it as `src=` next to the q-error so misestimates can be attributed.
  void set_estimate_source(EstimateSource source) { est_source_ = source; }
  EstimateSource estimate_source() const { return est_source_; }

  /// Table whose statistics produced the estimate (access paths only);
  /// the cardinality-feedback loop reports misestimates back to it.
  void set_feedback_table(std::string table) {
    feedback_table_ = std::move(table);
  }
  const std::string& feedback_table() const { return feedback_table_; }

 protected:
  /// Per-operator preparation (what Open() used to be). Implementations
  /// call ResetExec() first, then open their children via the public
  /// Open().
  virtual Status OpenImpl() = 0;
  /// Batch production; `batch` arrives cleared. Implementations append
  /// rows until full() or end-of-stream and return !batch->empty(); they
  /// maintain rows_produced_ exactly like Next() does. The default
  /// adapter loops the row-at-a-time Next().
  virtual Result<bool> NextBatchImpl(RowBatch* batch);
  /// Columnar production; `batch` arrives reset to this operator's
  /// schema. The default adapter pivots one row batch in.
  virtual Result<bool> NextColumnBatchImpl(ColumnBatch* batch);

  /// Resets the per-execution counters; every Open() calls this first.
  void ResetExec() {
    rows_produced_ = 0;
    stats_ = OperatorStats{};
  }

  uint64_t rows_produced_ = 0;
  OperatorStats stats_;
  ExecutionContext* exec_ctx_ = nullptr;
  double est_rows_ = -1;
  EstimateSource est_source_ = EstimateSource::kNone;
  std::string feedback_table_;
};

using OpPtr = std::unique_ptr<PhysicalOperator>;

/// Runs a plan to completion, collecting all rows.
Result<std::vector<Row>> CollectRows(PhysicalOperator* root);

// ---------- Scans ----------

/// Full heap scan of a user relation; propagates summary objects when a
/// SummaryManager is supplied.
class SeqScanOp : public PhysicalOperator {
 public:
  SeqScanOp(Table* table, SummaryManager* mgr, bool propagate);
  /// Context form: resolves the table's SummaryManager from `ctx`.
  SeqScanOp(ExecutionContext* ctx, Table* table, bool propagate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return table_->schema(); }
  std::string Describe() const override;
  bool ColumnarCapable() const override { return true; }
  /// Pages whose zone maps refute this predicate are skipped before the
  /// buffer-pool fetch (optimizer-attached; empty disables pruning).
  void SetZonePredicate(ZonePredicate pred) { zone_pred_ = std::move(pred); }
  /// EXPLAIN ANALYZE: `pages_skipped=` per scan operator.
  std::string AnalyzeAnnotation() const override;
  uint64_t pages_skipped() const { return pages_skipped_; }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  Result<bool> NextColumnBatchImpl(ColumnBatch* batch) override;

 private:
  Table* table_;
  SummaryManager* mgr_;
  bool propagate_;
  std::optional<Table::Iterator> it_;
  ZonePredicate zone_pred_;
  uint64_t pages_skipped_ = 0;
};

/// Data-column B-Tree index scan with an optional [lower, upper] value
/// range (either bound may be absent).
class IndexScanOp : public PhysicalOperator {
 public:
  IndexScanOp(Table* table, std::string column, std::optional<Value> lower,
              bool lower_inclusive, std::optional<Value> upper,
              bool upper_inclusive, SummaryManager* mgr, bool propagate);
  /// Context form: resolves the table's SummaryManager from `ctx`.
  IndexScanOp(ExecutionContext* ctx, Table* table, std::string column,
              std::optional<Value> lower, bool lower_inclusive,
              std::optional<Value> upper, bool upper_inclusive,
              bool propagate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override { return table_->schema(); }
  std::string Describe() const override;

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  /// Resolves one index hit: false when the entry is stale for this
  /// snapshot (no visible version, or the visible version's column value
  /// falls outside the probed range) — MVCC column indexes may carry
  /// entries for versions other snapshots see.
  Result<bool> FetchVisible(Oid oid, Tuple* tuple) const;

  Table* table_;
  std::string column_;
  std::optional<Value> lower_;
  bool lower_inclusive_;
  std::optional<Value> upper_;
  bool upper_inclusive_;
  SummaryManager* mgr_;
  bool propagate_;
  std::vector<Oid> oids_;
  size_t pos_ = 0;
  size_t col_pos_ = 0;
  std::string lower_key_;
  std::string upper_key_;
};

/// Summary-BTree index scan: evaluates a classifier probe and emits the
/// matching data tuples in ascending label-count order — the interesting
/// order Rules 3-6 exploit.
class SummaryIndexScanOp : public PhysicalOperator {
 public:
  SummaryIndexScanOp(const SummaryBTree* index, ClassifierProbe probe,
                     SummaryManager* mgr, bool propagate);
  /// Context form: resolves `table`'s SummaryManager from `ctx`.
  SummaryIndexScanOp(ExecutionContext* ctx, const SummaryBTree* index,
                     ClassifierProbe probe, const std::string& table,
                     bool propagate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override;
  std::string Describe() const override;

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  const SummaryBTree* index_;
  ClassifierProbe probe_;
  SummaryManager* mgr_;
  bool propagate_;
  std::vector<SummaryIndexHit> hits_;
  size_t pos_ = 0;
};

/// Baseline-scheme index scan (Fig. 4(c) comparison arm). When
/// `reconstruct_summaries` is set, the propagated Classifier object is
/// re-formed from the normalized rows instead of read from the
/// de-normalized storage — the slow path measured in Fig. 12.
class BaselineIndexScanOp : public PhysicalOperator {
 public:
  BaselineIndexScanOp(const BaselineClassifierIndex* index,
                      ClassifierProbe probe, SummaryManager* mgr,
                      bool propagate, bool reconstruct_summaries);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override;
  std::string Describe() const override;

 private:
  const BaselineClassifierIndex* index_;
  ClassifierProbe probe_;
  SummaryManager* mgr_;
  bool propagate_;
  bool reconstruct_summaries_;
  std::vector<SummaryIndexHit> hits_;
  size_t pos_ = 0;
};

/// Keyword-index scan: intersects the posting lists of the keywords over
/// a Snippet instance's inverted index and emits the matching tuples.
/// Exact for containsUnion predicates; a candidate superset for
/// containsSingle (the optimizer re-applies the predicate as a residual).
class KeywordIndexScanOp : public PhysicalOperator {
 public:
  KeywordIndexScanOp(const SnippetKeywordIndex* index,
                     std::vector<std::string> keywords, SummaryManager* mgr,
                     bool propagate);
  /// Context form: resolves `table`'s SummaryManager from `ctx`.
  KeywordIndexScanOp(ExecutionContext* ctx, const SnippetKeywordIndex* index,
                     std::vector<std::string> keywords,
                     const std::string& table, bool propagate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  const Schema& schema() const override;
  std::string Describe() const override;

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  const SnippetKeywordIndex* index_;
  std::vector<std::string> keywords_;
  SummaryManager* mgr_;
  bool propagate_;
  std::vector<Oid> oids_;
  size_t pos_ = 0;
};

/// In-memory row source (tests, intermediate materialization).
class VectorSourceOp : public PhysicalOperator {
 public:
  VectorSourceOp(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Status OpenImpl() override {
    ResetExec();
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    ++rows_produced_;
    return true;
  }
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (!batch->full() && pos_ < rows_.size()) {
      batch->Push(rows_[pos_++]);
      ++rows_produced_;
    }
    return !batch->empty();
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ---------- Selection family ----------

/// Standard selection sigma: passes rows whose data predicate holds;
/// summaries propagate unchanged.
class SelectOp : public PhysicalOperator {
 public:
  SelectOp(OpPtr child, ExprPtr predicate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }
  bool ColumnarCapable() const override { return child_->ColumnarCapable(); }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  Result<bool> NextColumnBatchImpl(ColumnBatch* batch) override;

 private:
  /// Columnar filter core: one (possibly short) filtered child batch per
  /// call. Does not touch rows_produced_ — both callers do.
  Result<bool> FilterColumnar(ColumnBatch* batch);

  OpPtr child_;
  ExprPtr predicate_;
  // Batch-path state: buffered child batch, its predicate flags, and the
  // next input row to consume.
  RowBatch input_;
  std::vector<uint8_t> flags_;
  size_t input_pos_ = 0;
  // Columnar-path state.
  ColumnBatch col_scratch_;
  TriVector tri_;
};

/// Summary-based selection S (Section 3.2): passes rows whose
/// summary-based predicate over r.$ holds; all summary objects propagate
/// unchanged. A distinct physical operator (not a UDF) so the optimizer
/// can reason about it.
class SummarySelectOp : public PhysicalOperator {
 public:
  SummarySelectOp(OpPtr child, ExprPtr predicate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }
  const Expression* predicate() const { return predicate_.get(); }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  OpPtr child_;
  ExprPtr predicate_;
  RowBatch input_;
  std::vector<uint8_t> flags_;
  size_t input_pos_ = 0;
};

/// Object-level predicate for the summary-based filter F. Structural
/// predicates (instance name / summary type) are the pushable kind of
/// Rule 8; `custom` marks non-structural content predicates.
struct ObjectPredicate {
  std::optional<std::string> instance_name;
  std::optional<SummaryType> type;
  std::function<bool(const SummaryObject&)> custom;

  bool structural() const { return custom == nullptr; }
  bool Matches(const SummaryObject& obj) const;
  std::string ToString() const;
};

/// Summary-based filter F: every row passes, carrying only the summary
/// objects that satisfy the object predicate.
class SummaryFilterOp : public PhysicalOperator {
 public:
  SummaryFilterOp(OpPtr child, ObjectPredicate predicate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  OpPtr child_;
  ObjectPredicate predicate_;
};

// ---------- Projection ----------

/// Projection pi: keeps the named columns and eliminates the projected-out
/// annotations' effects from every summary object (Theorems 1-2 of the
/// base system; Example 1).
class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(OpPtr child, std::vector<std::string> columns,
            AnnotationResolver resolver);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }
  bool ColumnarCapable() const override { return child_->ColumnarCapable(); }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  Result<bool> NextColumnBatchImpl(ColumnBatch* batch) override;

 private:
  OpPtr child_;
  std::vector<std::string> columns_;
  AnnotationResolver resolver_;
  std::vector<size_t> indices_;
  Schema schema_;
  ColumnBatch col_input_;
};

// ---------- Joins ----------

/// Block nested-loop join on a data predicate over the concatenated
/// schema; summary sets of joining rows merge with common-annotation
/// dedup (Section 2.2). The right input is materialized.
class NestedLoopJoinOp : public PhysicalOperator {
 public:
  NestedLoopJoinOp(OpPtr left, OpPtr right, ExprPtr predicate);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OpPtr left_;
  OpPtr right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row current_left_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Index nested-loop join: probes the inner table's column index with the
/// outer key expression (equi-join). Preserves the outer order — the
/// property Rules 5-6 need.
class IndexNLJoinOp : public PhysicalOperator {
 public:
  IndexNLJoinOp(OpPtr outer, Table* inner, std::string inner_column,
                ExprPtr outer_key, SummaryManager* inner_mgr,
                bool propagate_inner);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { outer_->Close(); }
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {outer_.get()};
  }

 private:
  OpPtr outer_;
  Table* inner_;
  std::string inner_column_;
  ExprPtr outer_key_;
  SummaryManager* inner_mgr_;
  bool propagate_inner_;
  Schema schema_;
  Row current_outer_;
  bool outer_valid_ = false;
  std::vector<Oid> matches_;
  size_t match_pos_ = 0;
  std::string join_key_;  // Encoded probe key; re-checked per version.
};

/// Hash join on one equi-key pair; non-equi residual conjuncts are
/// evaluated per candidate pair. The right (build) side is materialized
/// into a hash table; the left (probe) side streams, so the output
/// preserves the left order (Rule 5 applies, like the other join
/// algorithms here). Summary sets merge as in NestedLoopJoinOp.
class HashJoinOp : public PhysicalOperator {
 public:
  HashJoinOp(OpPtr left, OpPtr right, std::string left_key,
             std::string right_key, ExprPtr residual);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  OpPtr left_;
  OpPtr right_;
  std::string left_key_;
  std::string right_key_;
  ExprPtr residual_;  // May be null.
  Schema schema_;
  size_t left_key_idx_ = 0;
  std::unordered_map<size_t, std::vector<Row>> table_;  // Hash -> rows.
  size_t right_key_idx_ = 0;
  Row current_left_;
  bool left_valid_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  // Batch-path probe-side state.
  RowBatch probe_input_;
  size_t probe_pos_ = 0;
};

/// Join predicate of the summary-based join J: either a comparison of a
/// summary expression evaluated on each side, or a predicate over the
/// would-be merged summary set.
struct SummaryJoinPredicate {
  // Comparison form: left_expr(r.$) <op> right_expr(s.$).
  ExprPtr left_expr;
  CompareOp op = CompareOp::kEq;
  ExprPtr right_expr;
  // Merged form: predicate over the merged row (set after summary merge).
  ExprPtr merged_expr;

  bool merged_form() const { return merged_expr != nullptr; }
  std::string ToString() const;
  SummaryJoinPredicate Clone() const;
  /// Instances referenced by the predicate (Rule 11 legality).
  void CollectInstances(std::vector<std::string>* out) const;
};

/// Summary-based join J (Section 3.2): joins tuples on predicates over
/// their summary sets. Strategies: block nested loop, or an index join
/// probing the inner side's Summary-BTree when the predicate is an
/// equality of classifier label values (the paper's two implementation
/// choices).
class SummaryJoinOp : public PhysicalOperator {
 public:
  /// Nested-loop strategy.
  SummaryJoinOp(OpPtr left, OpPtr right, SummaryJoinPredicate predicate);

  /// Index strategy: `label_instance`/`label` describe the equality
  /// "left.inst.label = right.inst.label" probe against the right table's
  /// Summary-BTree.
  SummaryJoinOp(OpPtr left, Table* right_table, SummaryManager* right_mgr,
                const SummaryBTree* right_index, std::string label_instance,
                std::string label, bool propagate_right);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override;

 private:
  Result<bool> NextNestedLoop(Row* row);
  Result<bool> NextIndex(Row* row);

  OpPtr left_;
  OpPtr right_;  // Nested-loop strategy only.
  SummaryJoinPredicate predicate_;
  Schema schema_;
  // Nested-loop state.
  std::vector<Row> right_rows_;
  Row current_left_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
  // Index strategy state.
  Table* right_table_ = nullptr;
  SummaryManager* right_mgr_ = nullptr;
  const SummaryBTree* right_index_ = nullptr;
  std::string label_instance_;
  std::string label_;
  bool propagate_right_ = true;
  std::vector<SummaryIndexHit> hits_;
  size_t hit_pos_ = 0;
  size_t left_arity_ = 0;
};

// ---------- Sort ----------

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// Sort operator serving both the standard ORDER BY and the paper's
/// summary-based sort O (keys may be summary functions). kMemory sorts
/// in RAM; kExternal spills sorted runs to temporary heap files and
/// k-way-merges them (the Disk arm of Fig. 14).
class SortOp : public PhysicalOperator {
 public:
  enum class Mode { kMemory, kExternal };

  /// `storage`/`pool` are required for kExternal (spill files).
  SortOp(OpPtr child, std::vector<SortKey> keys, Mode mode,
         StorageManager* storage = nullptr, BufferPool* pool = nullptr,
         size_t memory_budget_bytes = 4 << 20);
  /// Context form: storage and pool come from `ctx` (kExternal spills).
  SortOp(ExecutionContext* ctx, OpPtr child, std::vector<SortKey> keys,
         Mode mode, size_t memory_budget_bytes = 4 << 20);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

  bool summary_based() const;
  uint64_t runs_spilled() const { return runs_spilled_; }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  Result<int> CompareRows(const Row& a, const Row& b) const;
  Status SpillRun(std::vector<Row>* run);
  /// K-way merge step (kExternal with spilled runs).
  Result<bool> MergeNext(Row* row);

  OpPtr child_;
  std::vector<SortKey> keys_;
  Mode mode_;
  StorageManager* storage_;
  BufferPool* pool_;
  size_t memory_budget_;
  std::vector<Row> sorted_;  // kMemory result buffer.
  size_t pos_ = 0;
  // kExternal state.
  struct Run {
    std::unique_ptr<HeapFile> file;
    std::optional<HeapFile::Iterator> it;
    std::optional<Row> head;
  };
  std::vector<Run> runs_;
  uint64_t runs_spilled_ = 0;
};

// ---------- Aggregation / distinct / limit ----------

struct AggregateSpec {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind = Kind::kCount;
  ExprPtr arg;  // Null for COUNT(*).
  std::string output_name;
};

/// Hash aggregation with summary propagation: each group's summary set is
/// the merge of its members' sets, each first projected onto the grouping
/// columns (project-before-merge, Theorems 1-2).
class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(OpPtr child, std::vector<std::string> group_columns,
                  std::vector<AggregateSpec> aggregates,
                  AnnotationResolver resolver);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  OpPtr child_;
  std::vector<std::string> group_columns_;
  std::vector<AggregateSpec> aggregates_;
  AnnotationResolver resolver_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Duplicate elimination over the data values; summary sets of collapsed
/// duplicates merge.
class DistinctOp : public PhysicalOperator {
 public:
  explicit DistinctOp(OpPtr child);

  Status OpenImpl() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Pass-through that renames the child's columns (table aliases:
/// `FROM Birds v1` exposes `v1.name`, ...). Rows are untouched.
class RenameOp : public PhysicalOperator {
 public:
  /// Prefixes every child column with `alias.`.
  RenameOp(OpPtr child, const std::string& alias);

  Status OpenImpl() override {
    ResetExec();
    return child_->Open();
  }
  Result<bool> Next(Row* row) override {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++rows_produced_;
    return has;
  }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }
  std::string Describe() const override { return "Rename(" + alias_ + ")"; }
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    rows_produced_ += batch->size();
    return has;
  }

 private:
  OpPtr child_;
  std::string alias_;
  Schema schema_;
};

/// LIMIT n.
class LimitOp : public PhysicalOperator {
 public:
  LimitOp(OpPtr child, uint64_t limit) : child_(std::move(child)),
                                         limit_(limit) {}

  Status OpenImpl() override {
    ResetExec();
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }
  std::string Describe() const override;
  std::vector<PhysicalOperator*> children() const override {
    return {child_.get()};
  }
  bool ColumnarCapable() const override { return child_->ColumnarCapable(); }

 protected:
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  Result<bool> NextColumnBatchImpl(ColumnBatch* batch) override;

 private:
  OpPtr child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_OPERATORS_H_
