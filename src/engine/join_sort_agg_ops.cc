#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/string_util.h"
#include "engine/operators.h"
#include "index/key_codec.h"

namespace insight {

// ---------- NestedLoopJoinOp ----------

NestedLoopJoinOp::NestedLoopJoinOp(OpPtr left, OpPtr right, ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(left_->schema(), right_->schema());
}

Status NestedLoopJoinOp::OpenImpl() {
  ResetExec();
  INSIGHT_RETURN_NOT_OK(left_->Open());
  INSIGHT_RETURN_NOT_OK(right_->Open());
  right_rows_.clear();
  Row row;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    right_rows_.push_back(std::move(row));
    row = Row();
  }
  right_->Close();
  left_valid_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Row* row) {
  const size_t left_arity = left_->schema().num_columns();
  while (true) {
    if (!left_valid_) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
      if (!has) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right = right_rows_[right_pos_++];
      Row candidate;
      candidate.data = Tuple::Concat(current_left_.data, right.data);
      // Evaluate the data predicate before paying for the summary merge.
      INSIGHT_ASSIGN_OR_RETURN(bool pass,
                               predicate_->EvalBool(candidate, schema_));
      if (!pass) continue;
      INSIGHT_ASSIGN_OR_RETURN(
          candidate.summaries,
          MergeSummaries(current_left_.summaries, right.summaries,
                         left_arity));
      *row = std::move(candidate);
      ++rows_produced_;
      return true;
    }
    left_valid_ = false;
  }
}

void NestedLoopJoinOp::Close() {
  left_->Close();
  right_rows_.clear();
}

std::string NestedLoopJoinOp::Describe() const {
  return "NestedLoopJoin(" + predicate_->ToString() + ")";
}

// ---------- IndexNLJoinOp ----------

IndexNLJoinOp::IndexNLJoinOp(OpPtr outer, Table* inner,
                             std::string inner_column, ExprPtr outer_key,
                             SummaryManager* inner_mgr, bool propagate_inner)
    : outer_(std::move(outer)),
      inner_(inner),
      inner_column_(std::move(inner_column)),
      outer_key_(std::move(outer_key)),
      inner_mgr_(inner_mgr),
      propagate_inner_(propagate_inner && inner_mgr != nullptr) {
  schema_ = Schema::Concat(outer_->schema(), inner_->schema());
}

Status IndexNLJoinOp::OpenImpl() {
  ResetExec();
  if (inner_->GetColumnIndex(inner_column_) == nullptr) {
    return Status::InvalidArgument("index join needs an index on " +
                                   inner_->name() + "." + inner_column_);
  }
  outer_valid_ = false;
  match_pos_ = 0;
  matches_.clear();
  return outer_->Open();
}

Result<bool> IndexNLJoinOp::Next(Row* row) {
  const size_t outer_arity = outer_->schema().num_columns();
  const BTree* index = inner_->GetColumnIndex(inner_column_);
  while (true) {
    if (!outer_valid_) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, outer_->Next(&current_outer_));
      if (!has) return false;
      outer_valid_ = true;
      INSIGHT_ASSIGN_OR_RETURN(
          Value key, outer_key_->Eval(current_outer_, outer_->schema()));
      join_key_ = EncodeIndexKey(key);
      INSIGHT_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                               index->Lookup(join_key_));
      matches_.assign(hits.begin(), hits.end());
      match_pos_ = 0;
    }
    if (match_pos_ < matches_.size()) {
      const Oid inner_oid = matches_[match_pos_++];
      // Column indexes keep entries for every stored version; fetch the
      // version visible to this plan's snapshot, skip oids with none, and
      // re-verify the indexed value against the visible version.
      auto fetched = inner_->Get(inner_oid, snapshot());
      if (!fetched.ok()) {
        if (fetched.status().IsNotFound()) continue;
        return fetched.status();
      }
      Tuple inner_tuple = std::move(fetched.ValueOrDie());
      INSIGHT_ASSIGN_OR_RETURN(
          size_t inner_pos, inner_->schema().IndexOf(inner_column_));
      if (EncodeIndexKey(inner_tuple.at(inner_pos)) != join_key_) continue;
      row->oid = kInvalidOid;
      row->data = Tuple::Concat(current_outer_.data, inner_tuple);
      SummarySet inner_summaries;
      if (propagate_inner_) {
        INSIGHT_ASSIGN_OR_RETURN(
            inner_summaries, inner_mgr_->GetSummaries(inner_oid, snapshot()));
      }
      INSIGHT_ASSIGN_OR_RETURN(
          row->summaries,
          MergeSummaries(current_outer_.summaries, inner_summaries,
                         outer_arity));
      ++rows_produced_;
      return true;
    }
    outer_valid_ = false;
  }
}

std::string IndexNLJoinOp::Describe() const {
  return "IndexNLJoin(" + inner_->name() + "." + inner_column_ + " = " +
         outer_key_->ToString() + ")";
}

// ---------- HashJoinOp ----------

HashJoinOp::HashJoinOp(OpPtr left, OpPtr right, std::string left_key,
                       std::string right_key, ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      residual_(std::move(residual)) {
  schema_ = Schema::Concat(left_->schema(), right_->schema());
}

Status HashJoinOp::OpenImpl() {
  ResetExec();
  INSIGHT_ASSIGN_OR_RETURN(left_key_idx_,
                           left_->schema().IndexOf(left_key_));
  INSIGHT_ASSIGN_OR_RETURN(right_key_idx_,
                           right_->schema().IndexOf(right_key_));
  INSIGHT_RETURN_NOT_OK(left_->Open());
  INSIGHT_RETURN_NOT_OK(right_->Open());
  table_.clear();
  // Drain the build side batch-at-a-time.
  RowBatch build;
  build.set_capacity(batch_capacity());
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, right_->NextBatch(&build));
    if (!has) break;
    for (Row& row : build) {
      const Value& key = row.data.at(right_key_idx_);
      if (!key.is_null()) {
        table_[key.Hash()].push_back(std::move(row));
      }
    }
  }
  right_->Close();
  left_valid_ = false;
  bucket_ = nullptr;
  probe_input_.Clear();
  probe_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* row) {
  const size_t left_arity = left_->schema().num_columns();
  while (true) {
    if (!left_valid_) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
      if (!has) return false;
      left_valid_ = true;
      bucket_ = nullptr;
      bucket_pos_ = 0;
      const Value& key = current_left_.data.at(left_key_idx_);
      if (!key.is_null()) {
        auto it = table_.find(key.Hash());
        if (it != table_.end()) bucket_ = &it->second;
      }
    }
    while (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
      const Row& right = (*bucket_)[bucket_pos_++];
      // Re-check equality (hash buckets may mix values).
      if (current_left_.data.at(left_key_idx_)
              .Compare(right.data.at(right_key_idx_)) != 0) {
        continue;
      }
      Row candidate;
      candidate.data = Tuple::Concat(current_left_.data, right.data);
      if (residual_ != nullptr) {
        INSIGHT_ASSIGN_OR_RETURN(bool pass,
                                 residual_->EvalBool(candidate, schema_));
        if (!pass) continue;
      }
      INSIGHT_ASSIGN_OR_RETURN(
          candidate.summaries,
          MergeSummaries(current_left_.summaries, right.summaries,
                         left_arity));
      *row = std::move(candidate);
      ++rows_produced_;
      return true;
    }
    left_valid_ = false;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* batch) {
  const size_t left_arity = left_->schema().num_columns();
  if (probe_input_.capacity() != batch_capacity()) {
    probe_input_.set_capacity(batch_capacity());
  }
  while (!batch->full()) {
    if (!left_valid_) {
      if (probe_pos_ >= probe_input_.size()) {
        INSIGHT_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&probe_input_));
        if (!has) break;
        probe_pos_ = 0;
      }
      current_left_ = std::move(probe_input_.rows()[probe_pos_++]);
      left_valid_ = true;
      bucket_ = nullptr;
      bucket_pos_ = 0;
      const Value& key = current_left_.data.at(left_key_idx_);
      if (!key.is_null()) {
        auto it = table_.find(key.Hash());
        if (it != table_.end()) bucket_ = &it->second;
      }
    }
    while (bucket_ != nullptr && bucket_pos_ < bucket_->size() &&
           !batch->full()) {
      const Row& right = (*bucket_)[bucket_pos_++];
      if (current_left_.data.at(left_key_idx_)
              .Compare(right.data.at(right_key_idx_)) != 0) {
        continue;
      }
      Row candidate;
      candidate.data = Tuple::Concat(current_left_.data, right.data);
      if (residual_ != nullptr) {
        INSIGHT_ASSIGN_OR_RETURN(bool pass,
                                 residual_->EvalBool(candidate, schema_));
        if (!pass) continue;
      }
      INSIGHT_ASSIGN_OR_RETURN(
          candidate.summaries,
          MergeSummaries(current_left_.summaries, right.summaries,
                         left_arity));
      batch->Push(std::move(candidate));
      ++rows_produced_;
    }
    if (bucket_ == nullptr || bucket_pos_ >= bucket_->size()) {
      left_valid_ = false;
    }
  }
  return !batch->empty();
}

void HashJoinOp::Close() {
  left_->Close();
  table_.clear();
}

std::string HashJoinOp::Describe() const {
  std::string out = "HashJoin(" + left_key_ + " = " + right_key_;
  if (residual_ != nullptr) out += " AND " + residual_->ToString();
  return out + ")";
}

// ---------- SummaryJoinOp ----------

std::string SummaryJoinPredicate::ToString() const {
  if (merged_form()) return "merged: " + merged_expr->ToString();
  return left_expr->ToString() + " " + CompareOpToString(op) + " " +
         right_expr->ToString();
}

SummaryJoinPredicate SummaryJoinPredicate::Clone() const {
  SummaryJoinPredicate out;
  if (left_expr != nullptr) out.left_expr = left_expr->Clone();
  out.op = op;
  if (right_expr != nullptr) out.right_expr = right_expr->Clone();
  if (merged_expr != nullptr) out.merged_expr = merged_expr->Clone();
  return out;
}

void SummaryJoinPredicate::CollectInstances(
    std::vector<std::string>* out) const {
  if (left_expr != nullptr) left_expr->CollectInstances(out);
  if (right_expr != nullptr) right_expr->CollectInstances(out);
  if (merged_expr != nullptr) merged_expr->CollectInstances(out);
}

SummaryJoinOp::SummaryJoinOp(OpPtr left, OpPtr right,
                             SummaryJoinPredicate predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(left_->schema(), right_->schema());
}

SummaryJoinOp::SummaryJoinOp(OpPtr left, Table* right_table,
                             SummaryManager* right_mgr,
                             const SummaryBTree* right_index,
                             std::string label_instance, std::string label,
                             bool propagate_right)
    : left_(std::move(left)),
      right_table_(right_table),
      right_mgr_(right_mgr),
      right_index_(right_index),
      label_instance_(std::move(label_instance)),
      label_(std::move(label)),
      propagate_right_(propagate_right) {
  schema_ = Schema::Concat(left_->schema(), right_table_->schema());
}

std::vector<PhysicalOperator*> SummaryJoinOp::children() const {
  if (right_ != nullptr) return {left_.get(), right_.get()};
  return {left_.get()};
}

Status SummaryJoinOp::OpenImpl() {
  ResetExec();
  left_valid_ = false;
  left_arity_ = left_->schema().num_columns();
  INSIGHT_RETURN_NOT_OK(left_->Open());
  if (right_ != nullptr) {
    INSIGHT_RETURN_NOT_OK(right_->Open());
    right_rows_.clear();
    Row row;
    while (true) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
      if (!has) break;
      right_rows_.push_back(std::move(row));
      row = Row();
    }
    right_->Close();
    right_pos_ = 0;
  }
  return Status::OK();
}

Result<bool> SummaryJoinOp::Next(Row* row) {
  return right_ != nullptr ? NextNestedLoop(row) : NextIndex(row);
}

Result<bool> SummaryJoinOp::NextNestedLoop(Row* row) {
  while (true) {
    if (!left_valid_) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
      if (!has) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right = right_rows_[right_pos_++];
      bool pass = false;
      Row merged;
      if (predicate_.merged_form()) {
        merged.data = Tuple::Concat(current_left_.data, right.data);
        INSIGHT_ASSIGN_OR_RETURN(
            merged.summaries,
            MergeSummaries(current_left_.summaries, right.summaries,
                           left_arity_));
        INSIGHT_ASSIGN_OR_RETURN(
            pass, predicate_.merged_expr->EvalBool(merged, schema_));
      } else {
        INSIGHT_ASSIGN_OR_RETURN(
            Value lv,
            predicate_.left_expr->Eval(current_left_, left_->schema()));
        INSIGHT_ASSIGN_OR_RETURN(
            Value rv, predicate_.right_expr->Eval(right, right_->schema()));
        if (!lv.is_null() && !rv.is_null()) {
          pass = EvalCompare(predicate_.op, lv.Compare(rv));
        }
        if (pass) {
          merged.data = Tuple::Concat(current_left_.data, right.data);
          INSIGHT_ASSIGN_OR_RETURN(
              merged.summaries,
              MergeSummaries(current_left_.summaries, right.summaries,
                             left_arity_));
        }
      }
      if (pass) {
        *row = std::move(merged);
        ++rows_produced_;
        return true;
      }
    }
    left_valid_ = false;
  }
}

Result<bool> SummaryJoinOp::NextIndex(Row* row) {
  while (true) {
    if (!left_valid_) {
      INSIGHT_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
      if (!has) return false;
      left_valid_ = true;
      hits_.clear();
      hit_pos_ = 0;
      // Probe: right tuples whose label count equals the left tuple's.
      const SummaryObject* obj =
          current_left_.summaries.GetSummaryObject(label_instance_);
      if (obj != nullptr) {
        auto count = obj->GetLabelValue(label_);
        if (count.ok()) {
          INSIGHT_ASSIGN_OR_RETURN(
              hits_, right_index_->Search(ClassifierProbe::Equal(label_, *count),
                                          snapshot()));
        }
      }
    }
    if (hit_pos_ < hits_.size()) {
      const SummaryIndexHit& hit = hits_[hit_pos_++];
      Oid right_oid = kInvalidOid;
      INSIGHT_ASSIGN_OR_RETURN(
          Tuple right_tuple,
          right_index_->FetchDataTuple(hit, &right_oid, snapshot()));
      row->oid = kInvalidOid;
      row->data = Tuple::Concat(current_left_.data, right_tuple);
      SummarySet right_summaries;
      if (propagate_right_) {
        INSIGHT_ASSIGN_OR_RETURN(
            right_summaries, right_mgr_->GetSummaries(right_oid, snapshot()));
      }
      INSIGHT_ASSIGN_OR_RETURN(
          row->summaries,
          MergeSummaries(current_left_.summaries, right_summaries,
                         left_arity_));
      ++rows_produced_;
      return true;
    }
    left_valid_ = false;
  }
}

void SummaryJoinOp::Close() {
  left_->Close();
  right_rows_.clear();
}

std::string SummaryJoinOp::Describe() const {
  if (right_ != nullptr) {
    return "SummaryJoin[J](" + predicate_.ToString() + ", nested-loop)";
  }
  return "SummaryJoin[J](" + label_instance_ + "." + label_ +
         " equality, index)";
}

// ---------- SortOp ----------

SortOp::SortOp(OpPtr child, std::vector<SortKey> keys, Mode mode,
               StorageManager* storage, BufferPool* pool,
               size_t memory_budget_bytes)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      mode_(mode),
      storage_(storage),
      pool_(pool),
      memory_budget_(memory_budget_bytes) {}

SortOp::SortOp(ExecutionContext* ctx, OpPtr child, std::vector<SortKey> keys,
               Mode mode, size_t memory_budget_bytes)
    : SortOp(std::move(child), std::move(keys), mode, ctx->storage(),
             ctx->pool(), memory_budget_bytes) {
  exec_ctx_ = ctx;
}

bool SortOp::summary_based() const {
  for (const SortKey& key : keys_) {
    if (key.expr->IsSummaryBased()) return true;
  }
  return false;
}

Result<int> SortOp::CompareRows(const Row& a, const Row& b) const {
  for (const SortKey& key : keys_) {
    INSIGHT_ASSIGN_OR_RETURN(Value va, key.expr->Eval(a, child_->schema()));
    INSIGHT_ASSIGN_OR_RETURN(Value vb, key.expr->Eval(b, child_->schema()));
    int c = va.Compare(vb);
    if (key.descending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

namespace {
std::atomic<uint64_t> g_spill_counter{1};
}  // namespace

Status SortOp::SpillRun(std::vector<Row>* run) {
  // Sort the run, then write it to a fresh temporary heap file.
  Status sort_status;
  std::stable_sort(run->begin(), run->end(),
                   [&](const Row& a, const Row& b) {
                     auto c = CompareRows(a, b);
                     if (!c.ok()) {
                       sort_status = c.status();
                       return false;
                     }
                     return *c < 0;
                   });
  INSIGHT_RETURN_NOT_OK(sort_status);
  INSIGHT_ASSIGN_OR_RETURN(
      FileId file,
      storage_->CreateFile("tmp.sort." +
                           std::to_string(g_spill_counter.fetch_add(1))));
  Run r;
  r.file = std::make_unique<HeapFile>(pool_, file);
  for (const Row& row : *run) {
    std::string buf;
    row.Serialize(&buf);
    INSIGHT_RETURN_NOT_OK(r.file->Insert(buf).status());
  }
  runs_.push_back(std::move(r));
  ++runs_spilled_;
  run->clear();
  return Status::OK();
}

Status SortOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  sorted_.clear();
  runs_.clear();
  INSIGHT_RETURN_NOT_OK(child_->Open());
  if (mode_ == Mode::kExternal &&
      (storage_ == nullptr || pool_ == nullptr)) {
    return Status::InvalidArgument("external sort needs storage + pool");
  }
  size_t bytes = 0;
  std::vector<Row> buffer;
  RowBatch input;
  input.set_capacity(batch_capacity());
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&input));
    if (!has) break;
    for (Row& row : input) {
      if (mode_ == Mode::kExternal) {
        std::string tmp;
        row.Serialize(&tmp);
        bytes += tmp.size();
      }
      buffer.push_back(std::move(row));
      if (mode_ == Mode::kExternal && bytes > memory_budget_) {
        INSIGHT_RETURN_NOT_OK(SpillRun(&buffer));
        bytes = 0;
      }
    }
  }
  child_->Close();

  if (mode_ == Mode::kMemory || runs_.empty()) {
    Status sort_status;
    std::stable_sort(buffer.begin(), buffer.end(),
                     [&](const Row& a, const Row& b) {
                       auto c = CompareRows(a, b);
                       if (!c.ok()) {
                         sort_status = c.status();
                         return false;
                       }
                       return *c < 0;
                     });
    INSIGHT_RETURN_NOT_OK(sort_status);
    sorted_ = std::move(buffer);
    return Status::OK();
  }
  // Final partial run, then prime the k-way merge heads.
  if (!buffer.empty()) INSIGHT_RETURN_NOT_OK(SpillRun(&buffer));
  for (Run& run : runs_) {
    run.it.emplace(run.file->Scan());
    RowLocation loc;
    std::string rec;
    if (run.it->Next(&loc, &rec)) {
      INSIGHT_ASSIGN_OR_RETURN(Row head, Row::Deserialize(rec));
      run.head = std::move(head);
    }
  }
  return Status::OK();
}

Result<bool> SortOp::MergeNext(Row* row) {
  // K-way merge: pick the smallest live head.
  size_t best = runs_.size();
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i].head.has_value()) continue;
    if (best == runs_.size()) {
      best = i;
      continue;
    }
    INSIGHT_ASSIGN_OR_RETURN(int c,
                             CompareRows(*runs_[i].head, *runs_[best].head));
    if (c < 0) best = i;
  }
  if (best == runs_.size()) return false;
  *row = std::move(*runs_[best].head);
  runs_[best].head.reset();
  RowLocation loc;
  std::string rec;
  if (runs_[best].it->Next(&loc, &rec)) {
    INSIGHT_ASSIGN_OR_RETURN(Row head, Row::Deserialize(rec));
    runs_[best].head = std::move(head);
  }
  return true;
}

Result<bool> SortOp::Next(Row* row) {
  if (runs_.empty()) {
    if (pos_ >= sorted_.size()) return false;
    *row = sorted_[pos_++];
    ++rows_produced_;
    return true;
  }
  INSIGHT_ASSIGN_OR_RETURN(bool has, MergeNext(row));
  if (has) ++rows_produced_;
  return has;
}

Result<bool> SortOp::NextBatchImpl(RowBatch* batch) {
  if (runs_.empty()) {
    while (!batch->full() && pos_ < sorted_.size()) {
      batch->Push(sorted_[pos_++]);
      ++rows_produced_;
    }
    return !batch->empty();
  }
  Row row;
  while (!batch->full()) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, MergeNext(&row));
    if (!has) break;
    batch->Push(std::move(row));
    row = Row();
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string SortOp::Describe() const {
  std::string out = summary_based() ? "SummarySort[O](" : "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (keys_[i].descending) out += " DESC";
  }
  out += mode_ == Mode::kMemory ? ", memory)" : ", external)";
  return out;
}

// ---------- HashAggregateOp ----------

HashAggregateOp::HashAggregateOp(OpPtr child,
                                 std::vector<std::string> group_columns,
                                 std::vector<AggregateSpec> aggregates,
                                 AnnotationResolver resolver)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)),
      resolver_(std::move(resolver)) {
  for (const std::string& name : group_columns_) {
    auto idx = child_->schema().IndexOf(name);
    INSIGHT_CHECK(idx.ok()) << "group by unknown column " << name;
    schema_.AddColumn(child_->schema().column(*idx)).ok();
  }
  for (const AggregateSpec& agg : aggregates_) {
    const ValueType type = agg.kind == AggregateSpec::Kind::kAvg
                               ? ValueType::kDouble
                               : ValueType::kInt64;
    schema_.AddColumn({agg.output_name, type}).ok();
  }
}

Status HashAggregateOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  results_.clear();
  INSIGHT_RETURN_NOT_OK(child_->Open());

  std::vector<size_t> group_indices;
  for (const std::string& name : group_columns_) {
    INSIGHT_ASSIGN_OR_RETURN(size_t idx, child_->schema().IndexOf(name));
    group_indices.push_back(idx);
  }

  struct GroupState {
    Tuple key;
    SummarySet summaries;
    std::vector<double> sums;
    std::vector<Value> mins;
    std::vector<Value> maxs;
    std::vector<int64_t> counts;  // Per-aggregate non-null counts.
    int64_t rows = 0;
    size_t order;  // First-seen order for deterministic output.
  };
  std::unordered_map<std::string, GroupState> groups;
  std::vector<std::string> group_order;

  auto accumulate = [&](const Row& row) -> Status {
    Tuple key = row.data.Project(group_indices);
    std::string key_bytes;
    key.Serialize(&key_bytes);
    auto [it, inserted] = groups.try_emplace(key_bytes);
    GroupState& state = it->second;
    if (inserted) {
      state.key = key;
      state.sums.assign(aggregates_.size(), 0.0);
      state.mins.assign(aggregates_.size(), Value::Null());
      state.maxs.assign(aggregates_.size(), Value::Null());
      state.counts.assign(aggregates_.size(), 0);
      state.order = group_order.size();
      group_order.push_back(key_bytes);
    }
    ++state.rows;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateSpec& spec = aggregates_[a];
      if (spec.arg == nullptr) continue;  // COUNT(*) uses state.rows.
      INSIGHT_ASSIGN_OR_RETURN(Value v,
                               spec.arg->Eval(row, child_->schema()));
      if (v.is_null()) continue;
      ++state.counts[a];
      switch (spec.kind) {
        case AggregateSpec::Kind::kSum:
        case AggregateSpec::Kind::kAvg:
          state.sums[a] += v.AsDouble();
          break;
        case AggregateSpec::Kind::kMin:
          if (state.mins[a].is_null() || v.Compare(state.mins[a]) < 0) {
            state.mins[a] = v;
          }
          break;
        case AggregateSpec::Kind::kMax:
          if (state.maxs[a].is_null() || v.Compare(state.maxs[a]) > 0) {
            state.maxs[a] = v;
          }
          break;
        case AggregateSpec::Kind::kCount:
          break;
      }
    }
    // Summary propagation: project the member's set onto the grouping
    // columns, then merge into the group's set (project-before-merge).
    if (!row.summaries.empty()) {
      INSIGHT_ASSIGN_OR_RETURN(
          SummarySet projected,
          ProjectSummaries(row.summaries, group_indices, resolver_));
      INSIGHT_ASSIGN_OR_RETURN(
          state.summaries, MergeSummaries(state.summaries, projected, 0));
    }
    return Status::OK();
  };

  RowBatch input;
  input.set_capacity(batch_capacity());
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&input));
    if (!has) break;
    for (const Row& row : input) INSIGHT_RETURN_NOT_OK(accumulate(row));
  }
  child_->Close();

  for (const std::string& key_bytes : group_order) {
    GroupState& state = groups[key_bytes];
    Row out;
    out.data = state.key;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateSpec& spec = aggregates_[a];
      switch (spec.kind) {
        case AggregateSpec::Kind::kCount:
          out.data.Append(Value::Int(spec.arg == nullptr ? state.rows
                                                         : state.counts[a]));
          break;
        case AggregateSpec::Kind::kSum:
          out.data.Append(Value::Int(static_cast<int64_t>(state.sums[a])));
          break;
        case AggregateSpec::Kind::kAvg:
          out.data.Append(state.counts[a] == 0
                              ? Value::Null()
                              : Value::Double(state.sums[a] /
                                              state.counts[a]));
          break;
        case AggregateSpec::Kind::kMin:
          out.data.Append(state.mins[a]);
          break;
        case AggregateSpec::Kind::kMax:
          out.data.Append(state.maxs[a]);
          break;
      }
    }
    out.summaries = std::move(state.summaries);
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = results_[pos_++];
  ++rows_produced_;
  return true;
}

Result<bool> HashAggregateOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full() && pos_ < results_.size()) {
    batch->Push(results_[pos_++]);
    ++rows_produced_;
  }
  return !batch->empty();
}

std::string HashAggregateOp::Describe() const {
  std::string out = "HashAggregate(group by " + Join(group_columns_, ", ");
  out += "; " + std::to_string(aggregates_.size()) + " aggregates)";
  return out;
}

// ---------- DistinctOp ----------

DistinctOp::DistinctOp(OpPtr child) : child_(std::move(child)) {}

Status DistinctOp::OpenImpl() {
  ResetExec();
  pos_ = 0;
  results_.clear();
  INSIGHT_RETURN_NOT_OK(child_->Open());
  std::unordered_map<std::string, size_t> seen;
  Row row;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    std::string key;
    row.data.Serialize(&key);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(std::move(key), results_.size());
      results_.push_back(std::move(row));
    } else {
      // Duplicate elimination merges the collapsed rows' summaries.
      Row& kept = results_[it->second];
      INSIGHT_ASSIGN_OR_RETURN(
          kept.summaries,
          MergeSummaries(kept.summaries, row.summaries, 0));
    }
    row = Row();
  }
  child_->Close();
  return Status::OK();
}

Result<bool> DistinctOp::Next(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = results_[pos_++];
  ++rows_produced_;
  return true;
}

std::string DistinctOp::Describe() const { return "Distinct"; }

}  // namespace insight
