#include "engine/expression.h"

#include "common/string_util.h"

namespace insight {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Result<bool> Expression::EvalBool(const Row& row,
                                  const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value v, Eval(row, schema));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::TypeError("predicate evaluated to " +
                             std::string(ValueTypeToString(v.type())));
  }
  return v.AsBool();
}

Status Expression::EvalBatch(const RowBatch& batch, const Schema& schema,
                             std::vector<Value>* out) const {
  for (const Row& row : batch) {
    INSIGHT_ASSIGN_OR_RETURN(Value v, Eval(row, schema));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status Expression::EvalBoolBatch(const RowBatch& batch, const Schema& schema,
                                 std::vector<uint8_t>* out) const {
  std::vector<Value> values;
  values.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(EvalBatch(batch, schema, &values));
  out->reserve(out->size() + values.size());
  for (const Value& v : values) {
    if (v.is_null()) {
      out->push_back(0);
      continue;
    }
    if (v.type() != ValueType::kBool) {
      return Status::TypeError("predicate evaluated to " +
                               std::string(ValueTypeToString(v.type())));
    }
    out->push_back(v.AsBool() ? 1 : 0);
  }
  return Status::OK();
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.AsString() + "'";
  }
  return value_.ToString();
}

Result<Value> ColumnExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name_));
  if (idx >= row.data.size()) {
    return Status::Internal("column index out of row bounds: " + name_);
  }
  return row.data.at(idx);
}

Status ColumnExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                             std::vector<Value>* out) const {
  if (batch.empty()) return Status::OK();
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name_));
  out->reserve(out->size() + batch.size());
  for (const Row& row : batch) {
    if (idx >= row.data.size()) {
      return Status::Internal("column index out of row bounds: " + name_);
    }
    out->push_back(row.data.at(idx));
  }
  return Status::OK();
}

Result<Value> CompareExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value l, left_->Eval(row, schema));
  INSIGHT_ASSIGN_OR_RETURN(Value r, right_->Eval(row, schema));
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value::Bool(EvalCompare(op_, l.Compare(r)));
}

Status CompareExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                              std::vector<Value>* out) const {
  std::vector<Value> lhs;
  std::vector<Value> rhs;
  lhs.reserve(batch.size());
  rhs.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(left_->EvalBatch(batch, schema, &lhs));
  INSIGHT_RETURN_NOT_OK(right_->EvalBatch(batch, schema, &rhs));
  out->reserve(out->size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (lhs[i].is_null() || rhs[i].is_null()) {
      out->push_back(Value::Null());
    } else {
      out->push_back(Value::Bool(EvalCompare(op_, lhs[i].Compare(rhs[i]))));
    }
  }
  return Status::OK();
}

std::string CompareExpr::ToString() const {
  return left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString();
}

Result<Value> LogicalExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(bool l, left_->EvalBool(row, schema));
  if (kind_ == Kind::kAnd) {
    if (!l) return Value::Bool(false);
    INSIGHT_ASSIGN_OR_RETURN(bool r, right_->EvalBool(row, schema));
    return Value::Bool(r);
  }
  if (l) return Value::Bool(true);
  INSIGHT_ASSIGN_OR_RETURN(bool r, right_->EvalBool(row, schema));
  return Value::Bool(r);
}

Status LogicalExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                              std::vector<Value>* out) const {
  std::vector<uint8_t> lhs;
  lhs.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(left_->EvalBoolBatch(batch, schema, &lhs));
  out->reserve(out->size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const bool decided = kind_ == Kind::kAnd ? lhs[i] == 0 : lhs[i] != 0;
    if (decided) {
      out->push_back(Value::Bool(kind_ == Kind::kOr));
      continue;
    }
    INSIGHT_ASSIGN_OR_RETURN(bool r, right_->EvalBool(batch[i], schema));
    out->push_back(Value::Bool(r));
  }
  return Status::OK();
}

std::string LogicalExpr::ToString() const {
  const char* op = kind_ == Kind::kAnd ? " AND " : " OR ";
  return "(" + left_->ToString() + op + right_->ToString() + ")";
}

Result<Value> NotExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(bool v, operand_->EvalBool(row, schema));
  return Value::Bool(!v);
}

Status NotExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                          std::vector<Value>* out) const {
  std::vector<uint8_t> flags;
  flags.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(operand_->EvalBoolBatch(batch, schema, &flags));
  out->reserve(out->size() + batch.size());
  for (uint8_t f : flags) out->push_back(Value::Bool(f == 0));
  return Status::OK();
}

Result<Value> LikeExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kString) {
    return Status::TypeError("LIKE on non-string value");
  }
  return Value::Bool(LikeMatch(v.AsString(), pattern_));
}

Result<Value> SummaryFuncExpr::Eval(const Row& row, const Schema&) const {
  if (kind_ == SummaryFuncKind::kSetSize) {
    return Value::Int(row.summaries.GetSize());
  }
  const SummaryObject* obj = row.summaries.GetSummaryObject(instance_);
  switch (kind_) {
    case SummaryFuncKind::kHasObject:
      return Value::Bool(obj != nullptr);
    case SummaryFuncKind::kObjectSize:
      if (obj == nullptr) return Value::Null();
      return Value::Int(obj->GetSize());
    case SummaryFuncKind::kLabelValue: {
      if (obj == nullptr) return Value::Null();
      auto value = obj->GetLabelValue(label_);
      if (!value.ok()) return value.status();
      return Value::Int(*value);
    }
    case SummaryFuncKind::kContainsSingle:
      return Value::Bool(obj != nullptr && obj->ContainsSingle(keywords_));
    case SummaryFuncKind::kContainsUnion:
      return Value::Bool(obj != nullptr && obj->ContainsUnion(keywords_));
    case SummaryFuncKind::kLabelName: {
      if (obj == nullptr) return Value::Null();
      auto name = obj->GetLabelName(index_);
      if (!name.ok()) return name.status();
      return Value::String(*name);
    }
    case SummaryFuncKind::kLabelValueAt: {
      if (obj == nullptr) return Value::Null();
      auto value = obj->GetLabelValue(index_);
      if (!value.ok()) return value.status();
      return Value::Int(*value);
    }
    case SummaryFuncKind::kSnippetAt: {
      if (obj == nullptr) return Value::Null();
      // Out-of-range positions yield NULL (snippet counts vary per
      // tuple, unlike the fixed classifier label set).
      auto snippet = obj->GetSnippet(index_);
      if (snippet.ok()) return Value::String(*snippet);
      return snippet.status().IsOutOfRange()
                 ? Result<Value>(Value::Null())
                 : Result<Value>(snippet.status());
    }
    case SummaryFuncKind::kGroupSizeAt: {
      if (obj == nullptr) return Value::Null();
      auto size = obj->GetGroupSize(index_);
      if (size.ok()) return Value::Int(*size);
      return size.status().IsOutOfRange() ? Result<Value>(Value::Null())
                                          : Result<Value>(size.status());
    }
    case SummaryFuncKind::kRepresentative: {
      if (obj == nullptr) return Value::Null();
      auto rep = obj->GetRepresentative(index_);
      if (rep.ok()) return Value::String(*rep);
      return rep.status().IsOutOfRange() ? Result<Value>(Value::Null())
                                         : Result<Value>(rep.status());
    }
    case SummaryFuncKind::kSetSize:
      break;  // Handled above.
  }
  return Status::Internal("unreachable summary function");
}

std::string SummaryFuncExpr::ToString() const {
  switch (kind_) {
    case SummaryFuncKind::kSetSize:
      return "$.getSize()";
    case SummaryFuncKind::kObjectSize:
      return "$.getSummaryObject('" + instance_ + "').getSize()";
    case SummaryFuncKind::kHasObject:
      return "$.getSummaryObject('" + instance_ + "') IS NOT NULL";
    case SummaryFuncKind::kLabelValue:
      return "$.getSummaryObject('" + instance_ + "').getLabelValue('" +
             label_ + "')";
    case SummaryFuncKind::kContainsSingle:
    case SummaryFuncKind::kContainsUnion: {
      std::string out = "$.getSummaryObject('" + instance_ + "').";
      out += kind_ == SummaryFuncKind::kContainsSingle ? "containsSingle("
                                                       : "containsUnion(";
      for (size_t i = 0; i < keywords_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "'" + keywords_[i] + "'";
      }
      out += ")";
      return out;
    }
    case SummaryFuncKind::kLabelName:
    case SummaryFuncKind::kLabelValueAt:
    case SummaryFuncKind::kSnippetAt:
    case SummaryFuncKind::kGroupSizeAt:
    case SummaryFuncKind::kRepresentative: {
      const char* name = "?";
      switch (kind_) {
        case SummaryFuncKind::kLabelName:
          name = "getLabelName";
          break;
        case SummaryFuncKind::kLabelValueAt:
          name = "getLabelValue";
          break;
        case SummaryFuncKind::kSnippetAt:
          name = "getSnippet";
          break;
        case SummaryFuncKind::kGroupSizeAt:
          name = "getGroupSize";
          break;
        case SummaryFuncKind::kRepresentative:
          name = "getRepresentative";
          break;
        default:
          break;
      }
      return "$.getSummaryObject('" + instance_ + "')." + name + "(" +
             std::to_string(index_) + ")";
    }
  }
  return "?";
}

ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Col(std::string name) {
  return std::make_unique<ColumnExpr>(std::move(name));
}
ExprPtr Cmp(ExprPtr l, CompareOp op, ExprPtr r) {
  return std::make_unique<CompareExpr>(std::move(l), op, std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalExpr::Kind::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalExpr::Kind::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_unique<NotExpr>(std::move(e)); }
ExprPtr Like(ExprPtr operand, std::string pattern) {
  return std::make_unique<LikeExpr>(std::move(operand), std::move(pattern));
}
ExprPtr LabelValue(std::string instance, std::string label) {
  return std::make_unique<SummaryFuncExpr>(std::move(instance),
                                           std::move(label));
}
ExprPtr ContainsSingle(std::string instance,
                       std::vector<std::string> keywords) {
  return std::make_unique<SummaryFuncExpr>(SummaryFuncKind::kContainsSingle,
                                           std::move(instance),
                                           std::move(keywords));
}
ExprPtr ContainsUnion(std::string instance,
                      std::vector<std::string> keywords) {
  return std::make_unique<SummaryFuncExpr>(SummaryFuncKind::kContainsUnion,
                                           std::move(instance),
                                           std::move(keywords));
}

namespace {

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

}  // namespace

std::optional<IndexablePredicate> MatchIndexablePredicate(
    const Expression* expr) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(expr);
  if (cmp == nullptr || cmp->op() == CompareOp::kNe) return std::nullopt;

  const Expression* lhs = cmp->left();
  const Expression* rhs = cmp->right();
  CompareOp op = cmp->op();
  const auto* func = dynamic_cast<const SummaryFuncExpr*>(lhs);
  const auto* lit = dynamic_cast<const LiteralExpr*>(rhs);
  if (func == nullptr || lit == nullptr) {
    // Try the flipped form "constant <Op> labelValue".
    func = dynamic_cast<const SummaryFuncExpr*>(rhs);
    lit = dynamic_cast<const LiteralExpr*>(lhs);
    op = FlipOp(op);
  }
  if (func == nullptr || lit == nullptr) return std::nullopt;
  if (func->kind() != SummaryFuncKind::kLabelValue) return std::nullopt;
  if (lit->value().type() != ValueType::kInt64) return std::nullopt;
  return IndexablePredicate{func->instance(), func->label(), op,
                            lit->value().AsInt()};
}

}  // namespace insight
