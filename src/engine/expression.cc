#include "engine/expression.h"

#include <cmath>

#include "common/string_util.h"

namespace insight {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

namespace {

/// A predicate value reduced to three-valued logic. Non-boolean
/// non-NULL results are type errors, matching EvalBool.
Result<uint8_t> TriOf(const Value& v) {
  if (v.is_null()) return uint8_t{kTriNull};
  if (v.type() != ValueType::kBool) {
    return Status::TypeError("predicate evaluated to " +
                             std::string(ValueTypeToString(v.type())));
  }
  return v.AsBool() ? kTriTrue : kTriFalse;
}

Value TriToValue(uint8_t t) {
  if (t == kTriNull) return Value::Null();
  return Value::Bool(t == kTriTrue);
}

/// Kleene AND/OR: false dominates AND, true dominates OR, NULL
/// propagates otherwise.
uint8_t KleeneCombine(LogicalExpr::Kind kind, uint8_t l, uint8_t r) {
  if (kind == LogicalExpr::Kind::kAnd) {
    if (l == kTriFalse || r == kTriFalse) return kTriFalse;
    if (l == kTriNull || r == kTriNull) return kTriNull;
    return kTriTrue;
  }
  if (l == kTriTrue || r == kTriTrue) return kTriTrue;
  if (l == kTriNull || r == kTriNull) return kTriNull;
  return kTriFalse;
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

/// Mirrors Value::Compare for doubles: NaN orders above every real
/// number and equal to itself.
int CompareDoubles(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

}  // namespace

Result<bool> Expression::EvalBool(const Row& row,
                                  const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value v, Eval(row, schema));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::TypeError("predicate evaluated to " +
                             std::string(ValueTypeToString(v.type())));
  }
  return v.AsBool();
}

Status Expression::EvalBatch(const RowBatch& batch, const Schema& schema,
                             std::vector<Value>* out) const {
  for (const Row& row : batch) {
    INSIGHT_ASSIGN_OR_RETURN(Value v, Eval(row, schema));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status Expression::EvalBoolBatch(const RowBatch& batch, const Schema& schema,
                                 std::vector<uint8_t>* out) const {
  std::vector<Value> values;
  values.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(EvalBatch(batch, schema, &values));
  out->reserve(out->size() + values.size());
  for (const Value& v : values) {
    if (v.is_null()) {
      out->push_back(0);
      continue;
    }
    if (v.type() != ValueType::kBool) {
      return Status::TypeError("predicate evaluated to " +
                               std::string(ValueTypeToString(v.type())));
    }
    out->push_back(v.AsBool() ? 1 : 0);
  }
  return Status::OK();
}

Status Expression::EvalPredColumnar(const ColumnBatch& batch,
                                    const Schema& schema,
                                    TriVector* out) const {
  // Fallback for expressions without a columnar kernel: pivot each row
  // out and evaluate it the ordinary way.
  const size_t n = batch.size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    INSIGHT_ASSIGN_OR_RETURN(Value v, Eval(batch.GetRow(i), schema));
    INSIGHT_ASSIGN_OR_RETURN(uint8_t t, TriOf(v));
    out->push_back(t);
  }
  return Status::OK();
}

Status LiteralExpr::EvalPredColumnar(const ColumnBatch& batch, const Schema&,
                                     TriVector* out) const {
  INSIGHT_ASSIGN_OR_RETURN(uint8_t t, TriOf(value_));
  out->insert(out->end(), batch.size(), t);
  return Status::OK();
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.AsString() + "'";
  }
  return value_.ToString();
}

Result<Value> ColumnExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name_));
  if (idx >= row.data.size()) {
    return Status::Internal("column index out of row bounds: " + name_);
  }
  return row.data.at(idx);
}

Status ColumnExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                             std::vector<Value>* out) const {
  if (batch.empty()) return Status::OK();
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name_));
  out->reserve(out->size() + batch.size());
  for (const Row& row : batch) {
    if (idx >= row.data.size()) {
      return Status::Internal("column index out of row bounds: " + name_);
    }
    out->push_back(row.data.at(idx));
  }
  return Status::OK();
}

Result<Value> CompareExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value l, left_->Eval(row, schema));
  INSIGHT_ASSIGN_OR_RETURN(Value r, right_->Eval(row, schema));
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value::Bool(EvalCompare(op_, l.Compare(r)));
}

Status CompareExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                              std::vector<Value>* out) const {
  std::vector<Value> lhs;
  std::vector<Value> rhs;
  lhs.reserve(batch.size());
  rhs.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(left_->EvalBatch(batch, schema, &lhs));
  INSIGHT_RETURN_NOT_OK(right_->EvalBatch(batch, schema, &rhs));
  out->reserve(out->size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (lhs[i].is_null() || rhs[i].is_null()) {
      out->push_back(Value::Null());
    } else {
      out->push_back(Value::Bool(EvalCompare(op_, lhs[i].Compare(rhs[i]))));
    }
  }
  return Status::OK();
}

namespace {

/// Tight per-column loop for `column <op> literal`. Every branch must
/// agree with Value::Compare exactly — the columnar filter has to keep
/// the same rows the row filter keeps, NaN and all.
Status ColumnLiteralKernel(const ColumnBatch& batch, const Schema& schema,
                           const ColumnExpr& col, CompareOp op,
                           const Value& lit, TriVector* out) {
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col.name()));
  if (idx >= batch.num_columns()) {
    return Status::Internal("column index out of batch bounds: " +
                            col.name());
  }
  const ColumnVector& vec = batch.column(idx);
  const size_t n = batch.size();
  out->reserve(out->size() + n);
  if (lit.is_null()) {
    out->insert(out->end(), n, kTriNull);
    return Status::OK();
  }
  if (!vec.generic() && vec.type() != ValueType::kNull) {
    const ValueType ct = vec.type();
    const ValueType lt = lit.type();
    if (ct == ValueType::kInt64 && lt == ValueType::kInt64) {
      const int64_t c = lit.AsInt();
      const std::vector<int64_t>& data = vec.ints();
      for (size_t i = 0; i < n; ++i) {
        if (vec.IsNull(i)) {
          out->push_back(kTriNull);
          continue;
        }
        const int64_t a = data[i];
        const int cmp = a < c ? -1 : (a > c ? 1 : 0);
        out->push_back(EvalCompare(op, cmp) ? kTriTrue : kTriFalse);
      }
      return Status::OK();
    }
    if (IsNumericType(ct) && IsNumericType(lt)) {
      // Mixed int/double promotes through double, as Value::Compare does.
      const double c = lit.AsDouble();
      const std::vector<int64_t>& ints = vec.ints();
      const std::vector<double>& doubles = vec.doubles();
      for (size_t i = 0; i < n; ++i) {
        if (vec.IsNull(i)) {
          out->push_back(kTriNull);
          continue;
        }
        const double a = ct == ValueType::kInt64
                             ? static_cast<double>(ints[i])
                             : doubles[i];
        out->push_back(EvalCompare(op, CompareDoubles(a, c)) ? kTriTrue
                                                             : kTriFalse);
      }
      return Status::OK();
    }
    if (ct == ValueType::kString && lt == ValueType::kString) {
      const std::string& c = lit.AsString();
      const std::vector<std::string>& data = vec.strings();
      for (size_t i = 0; i < n; ++i) {
        if (vec.IsNull(i)) {
          out->push_back(kTriNull);
          continue;
        }
        const int raw = data[i].compare(c);
        const int cmp = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
        out->push_back(EvalCompare(op, cmp) ? kTriTrue : kTriFalse);
      }
      return Status::OK();
    }
    if (ct == ValueType::kBool && lt == ValueType::kBool) {
      const int c = lit.AsBool() ? 1 : 0;
      const std::vector<uint8_t>& data = vec.bools();
      for (size_t i = 0; i < n; ++i) {
        if (vec.IsNull(i)) {
          out->push_back(kTriNull);
          continue;
        }
        const int a = data[i] != 0 ? 1 : 0;
        out->push_back(EvalCompare(op, a - c) ? kTriTrue : kTriFalse);
      }
      return Status::OK();
    }
    // Mismatched non-numeric type pair: Value::Compare orders by type
    // tag, so every non-NULL row gets the same verdict.
    const int tag =
        static_cast<int>(ct) < static_cast<int>(lt) ? -1 : 1;
    const uint8_t flag = EvalCompare(op, tag) ? kTriTrue : kTriFalse;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(vec.IsNull(i) ? kTriNull : flag);
    }
    return Status::OK();
  }
  // Generic (mixed-type) or all-NULL column: per-value loop.
  for (size_t i = 0; i < n; ++i) {
    const Value v = vec.GetValue(i);
    if (v.is_null()) {
      out->push_back(kTriNull);
      continue;
    }
    out->push_back(EvalCompare(op, v.Compare(lit)) ? kTriTrue : kTriFalse);
  }
  return Status::OK();
}

}  // namespace

Status CompareExpr::EvalPredColumnar(const ColumnBatch& batch,
                                     const Schema& schema,
                                     TriVector* out) const {
  const auto* lcol = dynamic_cast<const ColumnExpr*>(left_.get());
  const auto* rcol = dynamic_cast<const ColumnExpr*>(right_.get());
  const auto* llit = dynamic_cast<const LiteralExpr*>(left_.get());
  const auto* rlit = dynamic_cast<const LiteralExpr*>(right_.get());
  if (lcol != nullptr && rlit != nullptr) {
    return ColumnLiteralKernel(batch, schema, *lcol, op_, rlit->value(),
                               out);
  }
  if (llit != nullptr && rcol != nullptr) {
    return ColumnLiteralKernel(batch, schema, *rcol, FlipOp(op_),
                               llit->value(), out);
  }
  if (lcol != nullptr && rcol != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(size_t li, schema.IndexOf(lcol->name()));
    INSIGHT_ASSIGN_OR_RETURN(size_t ri, schema.IndexOf(rcol->name()));
    if (li >= batch.num_columns() || ri >= batch.num_columns()) {
      return Status::Internal("column index out of batch bounds");
    }
    const ColumnVector& a = batch.column(li);
    const ColumnVector& b = batch.column(ri);
    const size_t n = batch.size();
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) {
      const Value l = a.GetValue(i);
      const Value r = b.GetValue(i);
      if (l.is_null() || r.is_null()) {
        out->push_back(kTriNull);
        continue;
      }
      out->push_back(EvalCompare(op_, l.Compare(r)) ? kTriTrue : kTriFalse);
    }
    return Status::OK();
  }
  return Expression::EvalPredColumnar(batch, schema, out);
}

std::string CompareExpr::ToString() const {
  return left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString();
}

Result<Value> LogicalExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value lv, left_->Eval(row, schema));
  INSIGHT_ASSIGN_OR_RETURN(uint8_t l, TriOf(lv));
  // Short-circuit only on a decisive left side. NULL is not decisive:
  // NULL AND false is false, NULL OR true is true (Kleene), so NULL
  // must flow into the combine below rather than collapse to false here.
  if (kind_ == Kind::kAnd ? l == kTriFalse : l == kTriTrue) {
    return Value::Bool(kind_ == Kind::kOr);
  }
  INSIGHT_ASSIGN_OR_RETURN(Value rv, right_->Eval(row, schema));
  INSIGHT_ASSIGN_OR_RETURN(uint8_t r, TriOf(rv));
  return TriToValue(KleeneCombine(kind_, l, r));
}

Status LogicalExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                              std::vector<Value>* out) const {
  std::vector<Value> lhs;
  lhs.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(left_->EvalBatch(batch, schema, &lhs));
  out->reserve(out->size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    INSIGHT_ASSIGN_OR_RETURN(uint8_t l, TriOf(lhs[i]));
    if (kind_ == Kind::kAnd ? l == kTriFalse : l == kTriTrue) {
      out->push_back(Value::Bool(kind_ == Kind::kOr));
      continue;
    }
    INSIGHT_ASSIGN_OR_RETURN(Value rv, right_->Eval(batch[i], schema));
    INSIGHT_ASSIGN_OR_RETURN(uint8_t r, TriOf(rv));
    out->push_back(TriToValue(KleeneCombine(kind_, l, r)));
  }
  return Status::OK();
}

Status LogicalExpr::EvalPredColumnar(const ColumnBatch& batch,
                                     const Schema& schema,
                                     TriVector* out) const {
  const size_t n = batch.size();
  TriVector lhs;
  lhs.reserve(n);
  INSIGHT_RETURN_NOT_OK(left_->EvalPredColumnar(batch, schema, &lhs));
  TriVector rhs;
  rhs.reserve(n);
  const Status right_status = right_->EvalPredColumnar(batch, schema, &rhs);
  out->reserve(out->size() + n);
  if (!right_status.ok()) {
    // The row path never evaluates the right side of a decided row, so a
    // batch-wide right-side failure must not surface when every undecided
    // row would have short-circuited. Re-run only the undecided rows one
    // at a time; the first that genuinely needs the right side reports
    // its error exactly as Eval would.
    for (size_t i = 0; i < n; ++i) {
      const uint8_t l = lhs[i];
      if (kind_ == Kind::kAnd ? l == kTriFalse : l == kTriTrue) {
        out->push_back(l);
        continue;
      }
      INSIGHT_ASSIGN_OR_RETURN(Value rv,
                               right_->Eval(batch.GetRow(i), schema));
      INSIGHT_ASSIGN_OR_RETURN(uint8_t r, TriOf(rv));
      out->push_back(KleeneCombine(kind_, l, r));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    out->push_back(KleeneCombine(kind_, lhs[i], rhs[i]));
  }
  return Status::OK();
}

std::string LogicalExpr::ToString() const {
  const char* op = kind_ == Kind::kAnd ? " AND " : " OR ";
  return "(" + left_->ToString() + op + right_->ToString() + ")";
}

Result<Value> NotExpr::Eval(const Row& row, const Schema& schema) const {
  // NOT NULL is NULL, not true: the operand must keep its three-valued
  // result here; collapsing NULL to false first would negate it to true.
  INSIGHT_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
  INSIGHT_ASSIGN_OR_RETURN(uint8_t t, TriOf(v));
  if (t == kTriNull) return Value::Null();
  return Value::Bool(t == kTriFalse);
}

Status NotExpr::EvalBatch(const RowBatch& batch, const Schema& schema,
                          std::vector<Value>* out) const {
  std::vector<Value> vals;
  vals.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(operand_->EvalBatch(batch, schema, &vals));
  out->reserve(out->size() + batch.size());
  for (const Value& v : vals) {
    INSIGHT_ASSIGN_OR_RETURN(uint8_t t, TriOf(v));
    out->push_back(t == kTriNull ? Value::Null()
                                 : Value::Bool(t == kTriFalse));
  }
  return Status::OK();
}

Status NotExpr::EvalPredColumnar(const ColumnBatch& batch,
                                 const Schema& schema, TriVector* out) const {
  TriVector flags;
  flags.reserve(batch.size());
  INSIGHT_RETURN_NOT_OK(operand_->EvalPredColumnar(batch, schema, &flags));
  out->reserve(out->size() + flags.size());
  for (uint8_t t : flags) {
    out->push_back(t == kTriNull ? kTriNull
                                 : (t == kTriTrue ? kTriFalse : kTriTrue));
  }
  return Status::OK();
}

Result<Value> LikeExpr::Eval(const Row& row, const Schema& schema) const {
  INSIGHT_ASSIGN_OR_RETURN(Value v, operand_->Eval(row, schema));
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kString) {
    return Status::TypeError("LIKE on non-string value");
  }
  return Value::Bool(LikeMatch(v.AsString(), pattern_));
}

Result<Value> SummaryFuncExpr::Eval(const Row& row, const Schema&) const {
  if (kind_ == SummaryFuncKind::kSetSize) {
    return Value::Int(row.summaries.GetSize());
  }
  const SummaryObject* obj = row.summaries.GetSummaryObject(instance_);
  switch (kind_) {
    case SummaryFuncKind::kHasObject:
      return Value::Bool(obj != nullptr);
    case SummaryFuncKind::kObjectSize:
      if (obj == nullptr) return Value::Null();
      return Value::Int(obj->GetSize());
    case SummaryFuncKind::kLabelValue: {
      if (obj == nullptr) return Value::Null();
      auto value = obj->GetLabelValue(label_);
      if (!value.ok()) return value.status();
      return Value::Int(*value);
    }
    case SummaryFuncKind::kContainsSingle:
      return Value::Bool(obj != nullptr && obj->ContainsSingle(keywords_));
    case SummaryFuncKind::kContainsUnion:
      return Value::Bool(obj != nullptr && obj->ContainsUnion(keywords_));
    case SummaryFuncKind::kLabelName: {
      if (obj == nullptr) return Value::Null();
      auto name = obj->GetLabelName(index_);
      if (!name.ok()) return name.status();
      return Value::String(*name);
    }
    case SummaryFuncKind::kLabelValueAt: {
      if (obj == nullptr) return Value::Null();
      auto value = obj->GetLabelValue(index_);
      if (!value.ok()) return value.status();
      return Value::Int(*value);
    }
    case SummaryFuncKind::kSnippetAt: {
      if (obj == nullptr) return Value::Null();
      // Out-of-range positions yield NULL (snippet counts vary per
      // tuple, unlike the fixed classifier label set).
      auto snippet = obj->GetSnippet(index_);
      if (snippet.ok()) return Value::String(*snippet);
      return snippet.status().IsOutOfRange()
                 ? Result<Value>(Value::Null())
                 : Result<Value>(snippet.status());
    }
    case SummaryFuncKind::kGroupSizeAt: {
      if (obj == nullptr) return Value::Null();
      auto size = obj->GetGroupSize(index_);
      if (size.ok()) return Value::Int(*size);
      return size.status().IsOutOfRange() ? Result<Value>(Value::Null())
                                          : Result<Value>(size.status());
    }
    case SummaryFuncKind::kRepresentative: {
      if (obj == nullptr) return Value::Null();
      auto rep = obj->GetRepresentative(index_);
      if (rep.ok()) return Value::String(*rep);
      return rep.status().IsOutOfRange() ? Result<Value>(Value::Null())
                                         : Result<Value>(rep.status());
    }
    case SummaryFuncKind::kSetSize:
      break;  // Handled above.
  }
  return Status::Internal("unreachable summary function");
}

std::string SummaryFuncExpr::ToString() const {
  switch (kind_) {
    case SummaryFuncKind::kSetSize:
      return "$.getSize()";
    case SummaryFuncKind::kObjectSize:
      return "$.getSummaryObject('" + instance_ + "').getSize()";
    case SummaryFuncKind::kHasObject:
      return "$.getSummaryObject('" + instance_ + "') IS NOT NULL";
    case SummaryFuncKind::kLabelValue:
      return "$.getSummaryObject('" + instance_ + "').getLabelValue('" +
             label_ + "')";
    case SummaryFuncKind::kContainsSingle:
    case SummaryFuncKind::kContainsUnion: {
      std::string out = "$.getSummaryObject('" + instance_ + "').";
      out += kind_ == SummaryFuncKind::kContainsSingle ? "containsSingle("
                                                       : "containsUnion(";
      for (size_t i = 0; i < keywords_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "'" + keywords_[i] + "'";
      }
      out += ")";
      return out;
    }
    case SummaryFuncKind::kLabelName:
    case SummaryFuncKind::kLabelValueAt:
    case SummaryFuncKind::kSnippetAt:
    case SummaryFuncKind::kGroupSizeAt:
    case SummaryFuncKind::kRepresentative: {
      const char* name = "?";
      switch (kind_) {
        case SummaryFuncKind::kLabelName:
          name = "getLabelName";
          break;
        case SummaryFuncKind::kLabelValueAt:
          name = "getLabelValue";
          break;
        case SummaryFuncKind::kSnippetAt:
          name = "getSnippet";
          break;
        case SummaryFuncKind::kGroupSizeAt:
          name = "getGroupSize";
          break;
        case SummaryFuncKind::kRepresentative:
          name = "getRepresentative";
          break;
        default:
          break;
      }
      return "$.getSummaryObject('" + instance_ + "')." + name + "(" +
             std::to_string(index_) + ")";
    }
  }
  return "?";
}

ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Col(std::string name) {
  return std::make_unique<ColumnExpr>(std::move(name));
}
ExprPtr Cmp(ExprPtr l, CompareOp op, ExprPtr r) {
  return std::make_unique<CompareExpr>(std::move(l), op, std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalExpr::Kind::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalExpr::Kind::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_unique<NotExpr>(std::move(e)); }
ExprPtr Like(ExprPtr operand, std::string pattern) {
  return std::make_unique<LikeExpr>(std::move(operand), std::move(pattern));
}
ExprPtr LabelValue(std::string instance, std::string label) {
  return std::make_unique<SummaryFuncExpr>(std::move(instance),
                                           std::move(label));
}
ExprPtr ContainsSingle(std::string instance,
                       std::vector<std::string> keywords) {
  return std::make_unique<SummaryFuncExpr>(SummaryFuncKind::kContainsSingle,
                                           std::move(instance),
                                           std::move(keywords));
}
ExprPtr ContainsUnion(std::string instance,
                      std::vector<std::string> keywords) {
  return std::make_unique<SummaryFuncExpr>(SummaryFuncKind::kContainsUnion,
                                           std::move(instance),
                                           std::move(keywords));
}

std::optional<IndexablePredicate> MatchIndexablePredicate(
    const Expression* expr) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(expr);
  if (cmp == nullptr || cmp->op() == CompareOp::kNe) return std::nullopt;

  const Expression* lhs = cmp->left();
  const Expression* rhs = cmp->right();
  CompareOp op = cmp->op();
  const auto* func = dynamic_cast<const SummaryFuncExpr*>(lhs);
  const auto* lit = dynamic_cast<const LiteralExpr*>(rhs);
  if (func == nullptr || lit == nullptr) {
    // Try the flipped form "constant <Op> labelValue".
    func = dynamic_cast<const SummaryFuncExpr*>(rhs);
    lit = dynamic_cast<const LiteralExpr*>(lhs);
    op = FlipOp(op);
  }
  if (func == nullptr || lit == nullptr) return std::nullopt;
  if (func->kind() != SummaryFuncKind::kLabelValue) return std::nullopt;
  if (lit->value().type() != ValueType::kInt64) return std::nullopt;
  return IndexablePredicate{func->instance(), func->label(), op,
                            lit->value().AsInt()};
}

}  // namespace insight
