#ifndef INSIGHTNOTES_ENGINE_ROW_BATCH_H_
#define INSIGHTNOTES_ENGINE_ROW_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "engine/row.h"
#include "types/schema.h"

namespace insight {

/// A schema-tagged batch of rows — the unit flowing between operators in
/// batch-at-a-time execution. Capacity is a soft bound the producer
/// honours (`full()` gates the fill loop); the vector itself never
/// reallocates past the reserved capacity during a fill.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// Does not reserve: buffers held as operator members stay empty until
  /// a batch execution actually fills them (set_capacity reserves).
  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? kDefaultCapacity : capacity) {}

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) {
    if (capacity == 0) capacity = kDefaultCapacity;
    capacity_ = capacity;
    rows_.reserve(capacity_);
  }

  /// The producing operator's output schema; tagged by
  /// PhysicalOperator::NextBatch so consumers never re-ask the operator.
  const Schema* schema() const { return schema_; }
  void set_schema(const Schema* schema) { schema_ = schema; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  bool full() const { return rows_.size() >= capacity_; }

  /// Drops the rows; keeps capacity and schema tag.
  void Clear() { rows_.clear(); }

  void Push(Row row) { rows_.push_back(std::move(row)); }

  /// Keeps only the first `n` rows (LIMIT).
  void Truncate(size_t n) {
    if (n < rows_.size()) rows_.resize(n);
  }

  Row& operator[](size_t i) { return rows_[i]; }
  const Row& operator[](size_t i) const { return rows_[i]; }

  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

  std::vector<Row>::iterator begin() { return rows_.begin(); }
  std::vector<Row>::iterator end() { return rows_.end(); }
  std::vector<Row>::const_iterator begin() const { return rows_.begin(); }
  std::vector<Row>::const_iterator end() const { return rows_.end(); }

 private:
  const Schema* schema_ = nullptr;
  size_t capacity_;
  std::vector<Row> rows_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_ENGINE_ROW_BATCH_H_
