#ifndef INSIGHTNOTES_TYPES_SCHEMA_H_
#define INSIGHTNOTES_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace insight {

/// A named, typed column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered set of columns describing a relation or an operator output.
/// Column names are unique case-insensitively within one schema; qualified
/// names ("r.a") are stored verbatim, and lookup falls back to matching the
/// unqualified suffix so both "a" and "r.a" resolve.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by (possibly qualified) name; NotFound if absent,
  /// InvalidArgument if an unqualified name is ambiguous.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return IndexOf(name).ok();
  }

  /// Appends a column; returns AlreadyExists on an exact duplicate name.
  Status AddColumn(Column col);

  /// Schema with only the listed columns (by position), in that order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// Concatenation for join outputs. Collisions are allowed because join
  /// outputs keep qualified names.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TYPES_SCHEMA_H_
