#include "types/schema.h"

#include "common/string_util.h"

namespace insight {

namespace {
// Unqualified trailing component of "r.a" -> "a".
std::string_view Unqualified(std::string_view name) {
  const size_t pos = name.rfind('.');
  return pos == std::string_view::npos ? name : name.substr(pos + 1);
}
}  // namespace

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Pass 1: exact (case-insensitive) match on the full name.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  // Pass 2: match the unqualified suffix; must be unambiguous.
  size_t found = columns_.size();
  int matches = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(Unqualified(columns_[i].name), Unqualified(name))) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::InvalidArgument("ambiguous column name: " + name);
  }
  return Status::NotFound("no column named " + name);
}

Status Schema::AddColumn(Column col) {
  for (const Column& c : columns_) {
    if (EqualsIgnoreCase(c.name, col.name)) {
      return Status::AlreadyExists("duplicate column " + col.name);
    }
  }
  columns_.push_back(std::move(col));
  return Status::OK();
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace insight
