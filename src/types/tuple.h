#ifndef INSIGHTNOTES_TYPES_TUPLE_H_
#define INSIGHTNOTES_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace insight {

/// Unique identifier of a data tuple within one relation (the paper's OID).
/// Assigned at insert time and never reused.
using Oid = uint64_t;
constexpr Oid kInvalidOid = 0;

/// A row of scalar values. Tuples are schema-agnostic at the value level;
/// the owning operator/relation carries the Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Tuple restricted to the given column positions, in order.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Row concatenation for join outputs.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Self-describing binary encoding (count + per-value encodings).
  void Serialize(std::string* dst) const;
  static Result<Tuple> Deserialize(SerdeReader* reader);
  static Result<Tuple> DeserializeFrom(std::string_view buf);

  std::string ToString() const;

  bool operator==(const Tuple& other) const;

 private:
  std::vector<Value> values_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TYPES_TUPLE_H_
