#include "types/value.h"

#include <cmath>
#include <functional>
#include <limits>

namespace insight {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

namespace {
bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == ValueType::kInt64 && b == ValueType::kInt64) {
      const int64_t x = AsInt();
      const int64_t y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = AsDouble();
    const double y = other.AsDouble();
    // IEEE comparisons are all-false on NaN, which would report NaN as
    // "equal" to every number and break the total order sorts and B-Tree
    // keys rely on. Order NaN above every real number, equal to itself
    // (mirrors the key codec's canonical NaN encoding).
    const bool x_nan = std::isnan(x);
    const bool y_nan = std::isnan(y);
    if (x_nan || y_nan) {
      if (x_nan && y_nan) return 0;
      return x_nan ? 1 : -1;
    }
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) {
    return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  }
  switch (a) {
    case ValueType::kBool: {
      const int x = AsBool() ? 1 : 0;
      const int y = other.AsBool() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
    default:
      return 0;  // Unreachable; numeric handled above.
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(std::get<double>(rep_));
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

void Value::Serialize(std::string* dst) const {
  PutU8(dst, static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(dst, AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      PutI64(dst, AsInt());
      break;
    case ValueType::kDouble:
      PutDouble(dst, std::get<double>(rep_));
      break;
    case ValueType::kString:
      PutString(dst, AsString());
      break;
  }
}

Result<Value> Value::Deserialize(SerdeReader* reader) {
  uint8_t tag;
  if (!reader->ReadU8(&tag)) {
    return Status::Corruption("value: missing type tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      uint8_t b;
      if (!reader->ReadU8(&b)) return Status::Corruption("value: bool");
      return Value::Bool(b != 0);
    }
    case ValueType::kInt64: {
      int64_t v;
      if (!reader->ReadI64(&v)) return Status::Corruption("value: int64");
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      double v;
      if (!reader->ReadDouble(&v)) return Status::Corruption("value: double");
      return Value::Double(v);
    }
    case ValueType::kString: {
      std::string s;
      if (!reader->ReadString(&s)) return Status::Corruption("value: string");
      return Value::String(std::move(s));
    }
  }
  return Status::Corruption("value: unknown type tag " +
                            std::to_string(static_cast<int>(tag)));
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return AsBool() ? 0x85EBCA6Bu : 0xC2B2AE35u;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash through the double image so cross-type-equal values collide.
      // NaNs compare equal to each other (see Compare), so they must also
      // hash alike — canonicalize the payload first.
      double d = AsDouble();
      if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

}  // namespace insight
