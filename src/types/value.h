#ifndef INSIGHTNOTES_TYPES_VALUE_H_
#define INSIGHTNOTES_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"
#include "common/serde.h"
#include "common/status.h"

namespace insight {

/// Scalar SQL types supported by the engine.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeToString(ValueType t);

/// A dynamically-typed scalar cell value. Values order NULL first, then by
/// type-specific comparison; int64 and double compare numerically with each
/// other so mixed arithmetic predicates behave as in SQL.
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt64;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const {
    if (type() == ValueType::kInt64) {
      return static_cast<double>(std::get<int64_t>(rep_));
    }
    return std::get<double>(rep_);
  }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Three-way comparison: <0, 0, >0. NULLs compare equal to each other and
  /// less than everything else. Numeric types compare cross-type.
  /// Comparing string with numeric is a defined total order (by type tag)
  /// so sorting mixed columns is stable, though queries should not rely
  /// on it.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering (NULL, true/false, numbers, raw string).
  std::string ToString() const;

  /// Appends a self-describing binary encoding (type tag + payload).
  void Serialize(std::string* dst) const;

  /// Reads one value produced by Serialize.
  static Result<Value> Deserialize(SerdeReader* reader);

  /// Stable hash for aggregation/join keys; equal values hash equally
  /// (int64/double that compare equal hash via their double image).
  size_t Hash() const;

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TYPES_VALUE_H_
