#include "types/tuple.h"

namespace insight {

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> vals;
  vals.reserve(indices.size());
  for (size_t i : indices) vals.push_back(values_[i]);
  return Tuple(std::move(vals));
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> vals = left.values_;
  vals.insert(vals.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(vals));
}

void Tuple::Serialize(std::string* dst) const {
  PutU32(dst, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) v.Serialize(dst);
}

Result<Tuple> Tuple::Deserialize(SerdeReader* reader) {
  uint32_t n;
  if (!reader->ReadU32(&n)) return Status::Corruption("tuple: missing arity");
  // Arity sanity bound: wildly large counts indicate a corrupt buffer, and
  // reserving them would throw before the per-value reads could fail.
  constexpr uint32_t kMaxArity = 1 << 16;
  if (n > kMaxArity) {
    return Status::Corruption("tuple: implausible arity " + std::to_string(n));
  }
  std::vector<Value> vals;
  vals.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    INSIGHT_ASSIGN_OR_RETURN(Value v, Value::Deserialize(reader));
    vals.push_back(std::move(v));
  }
  return Tuple(std::move(vals));
}

Result<Tuple> Tuple::DeserializeFrom(std::string_view buf) {
  SerdeReader reader(buf);
  return Deserialize(&reader);
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].Compare(other.values_[i]) != 0) return false;
  }
  return true;
}

}  // namespace insight
